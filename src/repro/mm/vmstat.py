"""Per-node memory statistics with Siloz's update-skipping (paper §5.3).

Linux periodically refreshes per-node vmstat counters — cheap with a few
nodes, but Siloz creates up to hundreds of logical nodes, and iterating
all of them (especially under locks) is the overhead risk §5.3 calls
out.  Siloz's observation: a guest-reserved node's free-memory statistics
do not change after its VM boots, so those nodes can be marked *static*
and skipped.  :class:`VmStatReporter` implements exactly that, counting
the per-refresh work so tests can verify the optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MmError
from repro.mm.numa import NumaTopology


@dataclass
class NodeStat:
    free_bytes: int
    total_bytes: int


@dataclass
class VmStatReporter:
    """Cached per-node stats with static-node skipping."""

    topology: NumaTopology
    _static: set[int] = field(default_factory=set)
    _cache: dict[int, NodeStat] = field(default_factory=dict)
    nodes_scanned: int = 0
    refreshes: int = 0

    def mark_static(self, node_id: int) -> None:
        """Declare a node's stats frozen (VM booted on it, §5.3)."""
        if node_id not in self.topology:
            raise MmError(f"no such node {node_id}")
        # Snapshot once so reads keep working without rescans.
        self._cache[node_id] = self._snapshot(node_id)
        self._static.add(node_id)

    def mark_dynamic(self, node_id: int) -> None:
        self._static.discard(node_id)

    @property
    def static_nodes(self) -> set[int]:
        return set(self._static)

    def _snapshot(self, node_id: int) -> NodeStat:
        node = self.topology.node(node_id)
        return NodeStat(free_bytes=node.free_bytes, total_bytes=node.total_bytes)

    def refresh(self) -> None:
        """The periodic vmstat update: rescan every non-static node."""
        self.refreshes += 1
        for node in self.topology.nodes:
            if node.node_id in self._static:
                continue
            self._cache[node.node_id] = self._snapshot(node.node_id)
            self.nodes_scanned += 1

    def stat(self, node_id: int) -> NodeStat:
        got = self._cache.get(node_id)
        if got is None:
            got = self._cache[node_id] = self._snapshot(node_id)
        return got
