"""Reserved huge-page pools (paper §5 "Deployment Environment").

Cloud providers back guest RAM with reserved, unswappable huge pages for
performance; Siloz's evaluation uses static 2 MiB host huge pages.  A
:class:`HugePagePool` carves such pages out of a logical node at
reservation time and hands them to VMs; because the node's ranges are
subarray-group ranges, every page the pool ever returns is
group-isolated by construction.
"""

from __future__ import annotations

from repro.dram.mapping import AddressRange
from repro.errors import MmError, OutOfMemoryError
from repro.mm.numa import NumaNode
from repro.units import PAGE_2M, is_power_of_two


class HugePagePool:
    """A fixed reservation of huge pages on one logical node."""

    def __init__(self, node: NumaNode, pages: int, page_size: int = PAGE_2M):
        if pages <= 0:
            raise MmError(f"pool needs at least one page, got {pages}")
        if not is_power_of_two(page_size):
            raise MmError(f"page size must be a power of two, got {page_size}")
        self.node = node
        self.page_size = page_size
        self._free: list[int] = []
        self._taken: set[int] = set()
        for _ in range(pages):
            try:
                self._free.append(node.alloc_bytes(page_size))
            except OutOfMemoryError:
                # Roll back the partial reservation.
                for addr in self._free:
                    node.free_addr(addr)
                raise
        self._free.sort(reverse=True)  # pop() returns lowest address

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def taken_pages(self) -> int:
        return len(self._taken)

    @property
    def capacity_bytes(self) -> int:
        return (len(self._free) + len(self._taken)) * self.page_size

    def take(self) -> int:
        """Hand one huge page to a VM; returns its base HPA."""
        if not self._free:
            raise OutOfMemoryError(
                f"huge-page pool on node {self.node.node_id} exhausted"
            )
        addr = self._free.pop()
        self._taken.add(addr)
        return addr

    def take_contiguous(self, pages: int) -> AddressRange:
        """Take *pages* physically-contiguous huge pages.

        Contiguous guest backing is what lets last-level EPTs map 512
        consecutive pages each (§5.4); the pool allocates lowest-address
        first, so contiguity is available until fragmentation sets in.
        """
        if pages <= 0:
            raise MmError("pages must be positive")
        if pages > len(self._free):
            raise OutOfMemoryError("not enough free huge pages")
        # Scan the sorted free list for a contiguous run.
        ordered = sorted(self._free)
        run_start = 0
        for i in range(1, len(ordered) + 1):
            if (
                i == len(ordered)
                or ordered[i] != ordered[i - 1] + self.page_size
            ):
                if i - run_start >= pages:
                    chosen = ordered[run_start : run_start + pages]
                    for addr in chosen:
                        self._free.remove(addr)
                        self._taken.add(addr)
                    return AddressRange(chosen[0], chosen[-1] + self.page_size)
                run_start = i
        raise OutOfMemoryError(
            f"no contiguous run of {pages} huge pages on node {self.node.node_id}"
        )

    def give_back(self, addr: int) -> None:
        """Return a page to the pool (VM shutdown, §5.3 — the node
        reservation itself stays in place)."""
        if addr not in self._taken:
            raise MmError(f"page {addr:#x} was not taken from this pool")
        self._taken.remove(addr)
        self._free.append(addr)
        self._free.sort(reverse=True)

    def release_all(self) -> None:
        """Destroy the pool, returning every page to the node allocator."""
        if self._taken:
            raise MmError("cannot release pool with pages still in use")
        for addr in self._free:
            self.node.free_addr(addr)
        self._free.clear()
