"""Physical and logical NUMA nodes (paper §2.2, §5.2).

A conventional ("physical") node is a socket plus its memory pool.
Siloz adds *logical* nodes: memory-only nodes whose pool is one or more
subarray groups, each remembering its parent physical node so NUMA
locality optimisations still work.  This module implements both as one
:class:`NumaNode` type plus a :class:`NumaTopology` registry with
Linux-flavoured allocation entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dram.mapping import AddressRange
from repro.errors import MmError, OutOfMemoryError
from repro.mm.buddy import BuddyAllocator


class NodeKind(Enum):
    """Reservation class of a logical node (paper §5.2)."""

    HOST_RESERVED = "host"
    GUEST_RESERVED = "guest"
    EPT_RESERVED = "ept"  # the protected EPT row-group block (§5.4)


@dataclass
class NumaNode:
    """One (logical) NUMA node.

    ``physical_node`` is the socket this node's memory lives on; host
    nodes also own that socket's cores (``cpus``), guest-reserved nodes
    are memory-only (§5.2).
    """

    node_id: int
    kind: NodeKind
    physical_node: int
    ranges: list[AddressRange]
    cpus: tuple[int, ...] = ()
    subarray_groups: tuple[int, ...] = ()
    allocator: BuddyAllocator = field(init=False)

    def __post_init__(self) -> None:
        self.allocator = BuddyAllocator(self.ranges)

    @property
    def total_bytes(self) -> int:
        return self.allocator.total_bytes

    @property
    def free_bytes(self) -> int:
        return self.allocator.free_bytes

    @property
    def is_memory_only(self) -> bool:
        return not self.cpus

    def alloc_bytes(self, size: int) -> int:
        return self.allocator.alloc_bytes(size)

    def free_addr(self, addr: int) -> None:
        self.allocator.free(addr)

    # -- runtime fault handling (soak / migrate / offline) --------------

    def quarantine_range(self, target: AddressRange) -> int:
        """Soak: stop new allocations landing in *target* (free pages are
        pulled from the pool; allocated pages stay for migration)."""
        return self.allocator.quarantine_range(target)

    def release_quarantine(self, target: AddressRange | None = None) -> int:
        """Undo a soak, returning quarantined pages to the free pool."""
        return self.allocator.release_quarantine(target)

    def allocated_blocks_within(self, target: AddressRange) -> list[tuple[int, int]]:
        """Allocated (addr, size) blocks overlapping *target* — what live
        migration must relocate before the range can be offlined."""
        return self.allocator.allocated_blocks_within(target)

    def __repr__(self) -> str:
        return (
            f"NumaNode(id={self.node_id}, {self.kind.value}, "
            f"phys={self.physical_node}, groups={self.subarray_groups}, "
            f"free={self.free_bytes:#x}/{self.total_bytes:#x})"
        )


class NumaTopology:
    """Registry of nodes with Linux-style allocation helpers."""

    def __init__(self) -> None:
        self._nodes: dict[int, NumaNode] = {}

    def add(self, node: NumaNode) -> NumaNode:
        if node.node_id in self._nodes:
            raise MmError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        return node

    def node(self, node_id: int) -> NumaNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MmError(f"no such NUMA node {node_id}") from None

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[NumaNode]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    def nodes_of_kind(self, kind: NodeKind) -> list[NumaNode]:
        return [n for n in self.nodes if n.kind is kind]

    def node_of_addr(self, hpa: int) -> NumaNode:
        for node in self.nodes:
            if any(hpa in r for r in node.ranges):
                return node
        raise MmError(f"address {hpa:#x} not on any node")

    def distance(self, node_a: int, node_b: int) -> int:
        """ACPI-SLIT-style distance: 10 local, 21 cross-socket.  Logical
        nodes inherit their physical node's position, so same-socket
        logical nodes are 'local' to each other (§5.2)."""
        a, b = self.node(node_a), self.node(node_b)
        return 10 if a.physical_node == b.physical_node else 21

    # ------------------------------------------------------------------
    # Allocation policies (kernel NUMA memory policy analogues)
    # ------------------------------------------------------------------

    def alloc_on_node(self, node_id: int, size: int) -> int:
        """MPOL_BIND to a single node: fail rather than fall back."""
        return self.node(node_id).alloc_bytes(size)

    def alloc_preferring(self, preferred: int, size: int, allowed: set[int]) -> tuple[int, int]:
        """MPOL_PREFERRED: try *preferred*, then other allowed nodes in
        distance order.  Returns (node_id, address)."""
        if preferred not in allowed:
            raise MmError(f"preferred node {preferred} not in allowed set {allowed}")
        candidates = sorted(
            allowed, key=lambda nid: (self.distance(preferred, nid), nid)
        )
        for nid in candidates:
            try:
                return nid, self._nodes[nid].alloc_bytes(size)
            except OutOfMemoryError:
                continue
        raise OutOfMemoryError(
            f"no node in {sorted(allowed)} can satisfy {size} bytes"
        )

    def free_addr(self, addr: int) -> None:
        """Free by address, routing to the owning node (§5.3: memory
        returns to the corresponding logical node's free pool)."""
        self.node_of_addr(addr).free_addr(addr)
