"""Host memory-management substrate (paper §2.2, §5.2, §5.3).

Siloz manages subarray groups with *existing and robust kernel NUMA
primitives*; this package implements those primitives so the Siloz layer
above is a port of the paper's design rather than a sketch:

- :mod:`repro.mm.buddy` — binary-buddy page allocator per memory range,
- :mod:`repro.mm.numa` — physical and logical NUMA nodes + topology,
- :mod:`repro.mm.cgroup` — cpuset-style control groups (mems + tasks),
- :mod:`repro.mm.offline` — page offlining (guard rows, repaired rows),
- :mod:`repro.mm.hugepages` — reserved 2 MiB huge-page pools backing
  guests.
"""

from repro.mm.buddy import BuddyAllocator
from repro.mm.numa import NodeKind, NumaNode, NumaTopology
from repro.mm.cgroup import Cgroup, CgroupManager, Process
from repro.mm.offline import OfflineRegistry
from repro.mm.hugepages import HugePagePool

__all__ = [
    "BuddyAllocator",
    "Cgroup",
    "CgroupManager",
    "HugePagePool",
    "NodeKind",
    "NumaNode",
    "NumaTopology",
    "OfflineRegistry",
    "Process",
]
