"""Cpuset-style control groups (paper §5.2, §5.3).

Siloz restricts which processes may allocate from guest-reserved nodes
using a Linux control group whose ``mems`` lists the permitted NUMA
nodes, combined with a KVM-privilege check on the requesting process.
This module models exactly that: processes belong to cgroups; a cgroup
grants (node) allocation rights; guest-reserved nodes additionally
require KVM privilege.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CgroupError


@dataclass
class Process:
    """A host process (e.g. a QEMU instance managing one VM)."""

    pid: int
    name: str
    kvm_privileged: bool = False
    cgroup: "Cgroup | None" = None

    def __hash__(self) -> int:
        return hash(self.pid)


@dataclass
class Cgroup:
    """A cpuset cgroup: shared mems plus exclusively-owned mems.

    ``exclusive_mems`` model cpuset's mem_exclusive for the guest-
    reserved nodes a VM owns; ``mems`` are shared nodes (the host pool
    QEMU also needs, for mediated pages)."""

    name: str
    mems: set[int] = field(default_factory=set)
    exclusive_mems: set[int] = field(default_factory=set)
    tasks: set[Process] = field(default_factory=set)

    def attach(self, process: Process) -> None:
        if process.cgroup is not None and process.cgroup is not self:
            process.cgroup.tasks.discard(process)
        process.cgroup = self
        self.tasks.add(process)

    def allows_node(self, node_id: int) -> bool:
        return node_id in self.mems or node_id in self.exclusive_mems


class CgroupManager:
    """The cgroup hierarchy (flat — one level is all Siloz needs)."""

    ROOT = "root"

    def __init__(self, default_mems: set[int] | None = None):
        self._groups: dict[str, Cgroup] = {}
        self.root = self.create(self.ROOT, mems=default_mems or set())

    def create(
        self,
        name: str,
        *,
        mems: set[int] | None = None,
        exclusive_mems: set[int] | None = None,
    ) -> Cgroup:
        """Create a cgroup; exclusive_mems may not overlap any existing
        group's exclusive ownership."""
        if name in self._groups:
            raise CgroupError(f"cgroup {name!r} already exists")
        mems = set(mems or ())
        exclusive_mems = set(exclusive_mems or ())
        for other in self._groups.values():
            taken = other.exclusive_mems & (exclusive_mems | mems)
            if taken:
                raise CgroupError(
                    f"mems {sorted(taken)} already exclusively owned by "
                    f"{other.name!r}"
                )
        group = Cgroup(name=name, mems=mems, exclusive_mems=exclusive_mems)
        self._groups[name] = group
        return group

    def destroy(self, name: str) -> None:
        """Destroying a cgroup releases its node reservation (§5.3)."""
        if name == self.ROOT:
            raise CgroupError("cannot destroy the root cgroup")
        group = self._groups.pop(name, None)
        if group is None:
            raise CgroupError(f"no such cgroup {name!r}")
        for task in group.tasks:
            task.cgroup = self.root
            self.root.tasks.add(task)

    def group(self, name: str) -> Cgroup:
        try:
            return self._groups[name]
        except KeyError:
            raise CgroupError(f"no such cgroup {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._groups

    def check_allocation(
        self, process: Process, node_id: int, *, node_is_guest_reserved: bool
    ) -> None:
        """Raise :class:`CgroupError` unless *process* may allocate on
        *node_id* (the §5.3 admission check).

        Guest-reserved nodes require both cgroup membership listing the
        node *and* KVM privilege; other nodes require only the cgroup's
        mems to include the node.
        """
        group = process.cgroup or self.root
        if not group.allows_node(node_id):
            raise CgroupError(
                f"process {process.pid} ({process.name}) in cgroup "
                f"{group.name!r} may not allocate on node {node_id}"
            )
        if node_is_guest_reserved and not process.kvm_privileged:
            raise CgroupError(
                f"process {process.pid} ({process.name}) lacks KVM privilege "
                f"for guest-reserved node {node_id}"
            )
