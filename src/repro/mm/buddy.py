"""Binary-buddy page allocator, Linux-style.

One allocator instance manages one or more host-physical address ranges
(a logical NUMA node's subarray group ranges, §5.2).  The allocator
hands out naturally-aligned power-of-two blocks from 4 KiB up to 1 GiB,
splitting and (on free) re-coalescing buddies.  ``reserve_range`` pulls
arbitrary sub-ranges out of the free pool — the primitive page offlining
(guard rows, §5.4; repaired rows, §6) is built on.
"""

from __future__ import annotations

from repro.dram.mapping import AddressRange
from repro.errors import MmError, OutOfMemoryError
from repro.units import GiB, PAGE_4K

#: Smallest allocatable block.
MIN_BLOCK: int = PAGE_4K
#: Largest buddy order block (1 GiB = order 18 above 4 KiB).
MAX_BLOCK: int = GiB
MAX_ORDER: int = (MAX_BLOCK // MIN_BLOCK).bit_length() - 1  # 18


def order_of(size: int) -> int:
    """Smallest buddy order whose block covers *size* bytes."""
    if size <= 0:
        raise MmError(f"size must be positive, got {size}")
    if size > MAX_BLOCK:
        raise MmError(f"size {size} exceeds max buddy block {MAX_BLOCK}")
    blocks = -(-size // MIN_BLOCK)
    return (blocks - 1).bit_length()


class BuddyAllocator:
    """Buddy allocator over a set of address ranges.

    Free blocks are tracked per order as sets of start addresses.  A
    block of order k starting at addr has its buddy at ``addr ^ (size)``;
    alignment is relative to address 0 (host physical), matching how
    Linux's zone allocator aligns to PFN 0.
    """

    def __init__(self, ranges: list[AddressRange]):
        if not ranges:
            raise MmError("allocator needs at least one range")
        self._free: list[set[int]] = [set() for _ in range(MAX_ORDER + 1)]
        self._allocated: dict[int, int] = {}  # start -> order
        self._quarantined: dict[int, int] = {}  # start -> order (soak, §health)
        self.retired_bytes = 0  # permanently removed (runtime offlining)
        self.ranges = list(ranges)
        for r in ranges:
            self._seed_range(r)
        self.total_bytes = sum(r.size for r in ranges)

    def _seed_range(self, r: AddressRange) -> None:
        if r.start % MIN_BLOCK or r.size % MIN_BLOCK:
            raise MmError(f"range {r} not page-aligned")
        addr = r.start
        while addr < r.end:
            # Largest naturally-aligned block that fits.
            order = MAX_ORDER
            while order > 0 and (
                addr % (MIN_BLOCK << order) != 0 or addr + (MIN_BLOCK << order) > r.end
            ):
                order -= 1
            self._free[order].add(addr)
            addr += MIN_BLOCK << order

    # ------------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(len(s) * (MIN_BLOCK << o) for o, s in enumerate(self._free))

    @property
    def allocated_bytes(self) -> int:
        return sum(MIN_BLOCK << o for o in self._allocated.values())

    def alloc(self, order: int) -> int:
        """Allocate a block of the given order; returns its address."""
        if not 0 <= order <= MAX_ORDER:
            raise MmError(f"order {order} out of range [0, {MAX_ORDER}]")
        current = order
        while current <= MAX_ORDER and not self._free[current]:
            current += 1
        if current > MAX_ORDER:
            raise OutOfMemoryError(
                f"no free block of order >= {order} "
                f"({self.free_bytes} bytes free but fragmented or exhausted)"
            )
        addr = min(self._free[current])  # deterministic: lowest address
        self._free[current].remove(addr)
        while current > order:  # split down
            current -= 1
            half = MIN_BLOCK << current
            self._free[current].add(addr + half)
        self._allocated[addr] = order
        return addr

    def alloc_bytes(self, size: int) -> int:
        """Allocate the smallest block covering *size* bytes."""
        return self.alloc(order_of(size))

    def free(self, addr: int) -> None:
        """Free a previously-allocated block, coalescing buddies."""
        order = self._allocated.pop(addr, None)
        if order is None:
            raise MmError(f"free of unallocated address {addr:#x}")
        while order < MAX_ORDER:
            size = MIN_BLOCK << order
            buddy = addr ^ size
            if buddy not in self._free[order]:
                break
            # Buddies must also be in the same managed range to merge.
            self._free[order].remove(buddy)
            addr = min(addr, buddy)
            order += 1
        self._free[order].add(addr)

    # ------------------------------------------------------------------

    def reserve_range(self, target: AddressRange) -> None:
        """Remove [target.start, target.end) from the free pool.

        Every page of the target must currently be free; blocks that
        partially overlap are split until the target is exactly covered.
        Used to offline guard rows and repair holes before any
        allocations happen (§5.4, §6).
        """
        if target.start % MIN_BLOCK or target.size % MIN_BLOCK:
            raise MmError(f"reserve target {target} not page-aligned")
        remaining = target.size
        guard = 0
        while remaining > 0:
            guard += 1
            if guard > target.size // MIN_BLOCK * (MAX_ORDER + 2):
                raise MmError(f"range {target} not fully free; cannot reserve")
            progressed = False
            for order in range(MAX_ORDER + 1):
                size = MIN_BLOCK << order
                for addr in list(self._free[order]):
                    block = AddressRange(addr, addr + size)
                    if not block.overlaps(target):
                        continue
                    self._free[order].remove(addr)
                    if order > 0 and (
                        block.start < target.start or block.end > target.end
                    ):
                        half = size // 2
                        self._free[order - 1].add(addr)
                        self._free[order - 1].add(addr + half)
                    elif block.start >= target.start and block.end <= target.end:
                        remaining -= size
                    else:  # order-0 page partially overlapping: impossible
                        raise MmError("page-aligned target cannot split a page")
                    progressed = True
            if not progressed:
                raise MmError(f"range {target} not fully free; cannot reserve")

    # ------------------------------------------------------------------
    # Runtime fault handling: quarantine, retirement, block queries
    # ------------------------------------------------------------------

    @property
    def quarantined_bytes(self) -> int:
        return sum(MIN_BLOCK << o for o in self._quarantined.values())

    def free_blocks_within(self, target: AddressRange) -> list[tuple[int, int]]:
        """(addr, size) of every free block overlapping *target*, sorted."""
        out = []
        for order, blocks in enumerate(self._free):
            size = MIN_BLOCK << order
            for addr in blocks:
                if AddressRange(addr, addr + size).overlaps(target):
                    out.append((addr, size))
        return sorted(out)

    def allocated_blocks_within(self, target: AddressRange) -> list[tuple[int, int]]:
        """(addr, size) of every allocated block overlapping *target*,
        sorted — the pages live migration must move before offlining."""
        out = []
        for addr, order in self._allocated.items():
            size = MIN_BLOCK << order
            if AddressRange(addr, addr + size).overlaps(target):
                out.append((addr, size))
        return sorted(out)

    def quarantine_range(self, target: AddressRange) -> int:
        """Pull every currently-free page inside *target* out of the free
        pool (splitting partially-overlapping blocks), without requiring
        the range to be fully free — unlike :meth:`reserve_range`, which
        is the boot-time primitive.  This is the *soak* step of runtime
        fault handling: already-allocated pages stay in place (they will
        be migrated), but no new allocation can land in the range.
        Returns the number of bytes quarantined; undo with
        :meth:`release_quarantine`, make permanent with
        :meth:`finalize_quarantine`."""
        if target.start % MIN_BLOCK or target.size % MIN_BLOCK:
            raise MmError(f"quarantine target {target} not page-aligned")
        moved = 0
        progressed = True
        while progressed:
            progressed = False
            for order in range(MAX_ORDER + 1):
                size = MIN_BLOCK << order
                for addr in list(self._free[order]):
                    block = AddressRange(addr, addr + size)
                    if not block.overlaps(target):
                        continue
                    self._free[order].remove(addr)
                    if block.start >= target.start and block.end <= target.end:
                        self._quarantined[addr] = order
                        moved += size
                    elif order > 0:
                        half = size // 2
                        self._free[order - 1].add(addr)
                        self._free[order - 1].add(addr + half)
                    else:  # aligned target cannot split an order-0 page
                        raise MmError("page-aligned target cannot split a page")
                    progressed = True
        return moved

    def release_quarantine(self, target: AddressRange | None = None) -> int:
        """Return quarantined blocks (all, or those inside *target*) to
        the free pool, re-coalescing buddies — the de-escalation path
        when a soaked row group recovers."""
        released = 0
        for addr, order in sorted(self._quarantined.items()):
            size = MIN_BLOCK << order
            if target is not None and not AddressRange(addr, addr + size).overlaps(
                target
            ):
                continue
            del self._quarantined[addr]
            self._allocated[addr] = order  # free() coalesces from here
            self.free(addr)
            released += size
        return released

    def finalize_quarantine(self, target: AddressRange) -> int:
        """Permanently retire the quarantined blocks inside *target*
        (runtime offlining: the frames leave circulation for good)."""
        done = 0
        for addr, order in sorted(self._quarantined.items()):
            size = MIN_BLOCK << order
            if AddressRange(addr, addr + size).overlaps(target):
                del self._quarantined[addr]
                self.retired_bytes += size
                done += size
        return done

    def retire(self, addr: int) -> int:
        """Permanently remove an *allocated* block from circulation
        (after its contents were migrated elsewhere); returns its size.
        Unlike :meth:`free`, the frames never return to the free pool."""
        order = self._allocated.pop(addr, None)
        if order is None:
            raise MmError(f"retire of unallocated address {addr:#x}")
        size = MIN_BLOCK << order
        self.retired_bytes += size
        return size

    def contains(self, addr: int) -> bool:
        return any(addr in r for r in self.ranges)

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator({len(self.ranges)} ranges, "
            f"{self.free_bytes:#x}/{self.total_bytes:#x} free)"
        )
