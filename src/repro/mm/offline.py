"""Page offlining (paper §5.4, §6) — boot-time and runtime.

Linux can remove faulty pages from allocatable memory; Siloz extends the
same mechanism to pull guard-row pages (protecting EPT rows) and
isolation-violating pages (inter-subarray repairs, scrambling boundary
rows) out of circulation during system initialisation.  The registry
records *why* each range was offlined so the overhead accounting benches
can attribute reserved DRAM to its cause.

Two offlining entry points exist:

- :meth:`OfflineRegistry.offline` — the boot path: the range must be
  entirely free (Siloz runs it before any allocations, §5.3);
- :meth:`OfflineRegistry.offline_retired` — the runtime path used by
  live migration: the caller has already quarantined the free pages and
  retired the allocated ones (copying their contents elsewhere), and
  the registry verifies nothing in the range remains in circulation.

Ranges that *cannot* be offlined yet (pages still allocated to an owner
migration couldn't move) are parked as :class:`DeferredOffline` records
— graceful degradation instead of a crash — and re-attempted via
:meth:`OfflineRegistry.retry_pending`.

Membership queries (:meth:`OfflineRegistry.is_offline`) are served from
a bisect-maintained sorted interval index rather than a linear scan:
the query sits on the MCE path and is issued per-event by the runtime
health monitor.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum

from repro.dram.mapping import AddressRange, merge_ranges
from repro.errors import OfflineError
from repro.log import get_logger
from repro.mm.numa import NumaNode

_log = get_logger("mm.offline")


class OfflineReason(Enum):
    """Why a range was removed from allocatable memory (accounting)."""
    GUARD_ROW = "guard-row"  # EPT protection barriers (§5.4)
    INTER_SUBARRAY_REPAIR = "inter-subarray-repair"  # §6
    SCRAMBLING_BOUNDARY = "scrambling-boundary"  # §6
    ARTIFICIAL_BOUNDARY = "artificial-subarray-guard"  # §6
    FAULTY = "faulty"  # classic bad-page offlining
    CE_STORM = "ce-storm"  # runtime health escalation (degrading DRAM)


@dataclass(frozen=True)
class OfflinedRange:
    range: AddressRange
    reason: OfflineReason
    node_id: int


@dataclass
class DeferredOffline:
    """A row group that *should* be offline but still has pages the
    migration path could not move (owner unknown, target frames scarce,
    or uncorrectable data).  It stays quarantined — no new allocations
    land there — until a retry completes the removal."""

    range: AddressRange
    reason: OfflineReason
    node_id: int
    why: str
    attempts: int = 1


class OfflineRegistry:
    """Tracks offlined ranges and executes the removal on node pools."""

    def __init__(self) -> None:
        self._entries: list[OfflinedRange] = []
        self._pending: list[DeferredOffline] = []
        # Sorted, merged interval index over every offlined range, kept
        # in lockstep with _entries; serves is_offline in O(log n).
        self._index_starts: list[int] = []
        self._index_ends: list[int] = []

    # ------------------------------------------------------------------
    # Interval index
    # ------------------------------------------------------------------

    def _index_add(self, target: AddressRange) -> None:
        start, end = target.start, target.end
        i = bisect.bisect_left(self._index_starts, start)
        if i > 0 and self._index_ends[i - 1] >= start:  # merge left
            i -= 1
            start = self._index_starts[i]
            end = max(end, self._index_ends[i])
            del self._index_starts[i], self._index_ends[i]
        while i < len(self._index_starts) and self._index_starts[i] <= end:
            end = max(end, self._index_ends[i])  # absorb right
            del self._index_starts[i], self._index_ends[i]
        self._index_starts.insert(i, start)
        self._index_ends.insert(i, end)

    def is_offline(self, hpa: int) -> bool:
        """O(log n) membership test over all offlined ranges (MCE path,
        per-event health-monitor queries)."""
        i = bisect.bisect_right(self._index_starts, hpa) - 1
        return i >= 0 and hpa < self._index_ends[i]

    # ------------------------------------------------------------------
    # Boot-time offlining
    # ------------------------------------------------------------------

    def offline(self, node: NumaNode, target: AddressRange, reason: OfflineReason) -> None:
        """Remove *target* from *node*'s free pool.

        Must run before the node serves allocations covering the range
        (Siloz does this during early boot, §5.3); a busy range raises.
        """
        if not any(
            target.start >= r.start and target.end <= r.end for r in node.ranges
        ):
            raise OfflineError(f"range {target} not within node {node.node_id}")
        try:
            node.allocator.reserve_range(target)
        except Exception as exc:
            raise OfflineError(f"cannot offline {target}: {exc}") from exc
        self._entries.append(OfflinedRange(target, reason, node.node_id))
        self._index_add(target)

    # ------------------------------------------------------------------
    # Runtime offlining (live migration path)
    # ------------------------------------------------------------------

    def offline_retired(
        self, node: NumaNode, target: AddressRange, reason: OfflineReason
    ) -> int:
        """Record *target* as offline after live migration emptied it.

        The caller must already have quarantined the range's free pages
        and retired (migrated away) its allocated blocks; any page still
        free or allocated within the range raises :class:`OfflineError`.
        Quarantined pages are finalized (permanently retired) here.
        Returns the number of bytes newly taken out of circulation.
        """
        if not any(
            target.start >= r.start and target.end <= r.end for r in node.ranges
        ):
            raise OfflineError(f"range {target} not within node {node.node_id}")
        finalized = node.allocator.finalize_quarantine(target)
        busy = node.allocator.allocated_blocks_within(target)
        if busy:
            raise OfflineError(
                f"range {target} still has allocated blocks "
                f"{[(hex(a), s) for a, s in busy]}; migrate them first"
            )
        stray = node.allocator.free_blocks_within(target)
        if stray:
            raise OfflineError(
                f"range {target} still has free blocks; quarantine them first"
            )
        self._entries.append(OfflinedRange(target, reason, node.node_id))
        self._index_add(target)
        _log.info(
            "runtime-offlined %s on node %d (%s): %d bytes finalized",
            target,
            node.node_id,
            reason.value,
            finalized,
        )
        return target.size

    def defer(
        self,
        node_id: int,
        target: AddressRange,
        reason: OfflineReason,
        why: str,
    ) -> DeferredOffline:
        """Park *target* as offline-pending (graceful degradation): the
        range stays quarantined but cannot be fully removed yet.  An
        existing pending record for the same range is re-used (attempt
        count incremented)."""
        for item in self._pending:
            if item.range == target:
                item.attempts += 1
                item.why = why
                return item
        item = DeferredOffline(range=target, reason=reason, node_id=node_id, why=why)
        self._pending.append(item)
        _log.warning("deferred offline of %s: %s", target, why)
        return item

    @property
    def pending(self) -> list[DeferredOffline]:
        return list(self._pending)

    def resolve_pending(self, target: AddressRange) -> bool:
        """Drop the pending record for *target* (after a retry offlined
        it); returns True when a record existed."""
        for item in self._pending:
            if item.range == target:
                self._pending.remove(item)
                return True
        return False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def entries(self) -> list[OfflinedRange]:
        return list(self._entries)

    def total_bytes(self, reason: OfflineReason | None = None) -> int:
        return sum(
            e.range.size
            for e in self._entries
            if reason is None or e.reason is reason
        )

    def ranges_for(self, reason: OfflineReason) -> list[AddressRange]:
        return merge_ranges([e.range for e in self._entries if e.reason is reason])

    def summary(self) -> dict[str, int]:
        """Bytes offlined per reason — feeds the O1/O2 overhead benches."""
        out: dict[str, int] = {}
        for e in self._entries:
            out[e.reason.value] = out.get(e.reason.value, 0) + e.range.size
        return out
