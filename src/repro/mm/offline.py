"""Page offlining (paper §5.4, §6).

Linux can remove faulty pages from allocatable memory; Siloz extends the
same mechanism to pull guard-row pages (protecting EPT rows) and
isolation-violating pages (inter-subarray repairs, scrambling boundary
rows) out of circulation during system initialisation.  The registry
records *why* each range was offlined so the overhead accounting benches
can attribute reserved DRAM to its cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dram.mapping import AddressRange, merge_ranges
from repro.errors import OfflineError
from repro.mm.numa import NumaNode


class OfflineReason(Enum):
    """Why a range was removed from allocatable memory (accounting)."""
    GUARD_ROW = "guard-row"  # EPT protection barriers (§5.4)
    INTER_SUBARRAY_REPAIR = "inter-subarray-repair"  # §6
    SCRAMBLING_BOUNDARY = "scrambling-boundary"  # §6
    ARTIFICIAL_BOUNDARY = "artificial-subarray-guard"  # §6
    FAULTY = "faulty"  # classic bad-page offlining


@dataclass(frozen=True)
class OfflinedRange:
    range: AddressRange
    reason: OfflineReason
    node_id: int


class OfflineRegistry:
    """Tracks offlined ranges and executes the removal on node pools."""

    def __init__(self) -> None:
        self._entries: list[OfflinedRange] = []

    def offline(self, node: NumaNode, target: AddressRange, reason: OfflineReason) -> None:
        """Remove *target* from *node*'s free pool.

        Must run before the node serves allocations covering the range
        (Siloz does this during early boot, §5.3); a busy range raises.
        """
        if not any(
            target.start >= r.start and target.end <= r.end for r in node.ranges
        ):
            raise OfflineError(f"range {target} not within node {node.node_id}")
        try:
            node.allocator.reserve_range(target)
        except Exception as exc:
            raise OfflineError(f"cannot offline {target}: {exc}") from exc
        self._entries.append(OfflinedRange(target, reason, node.node_id))

    @property
    def entries(self) -> list[OfflinedRange]:
        return list(self._entries)

    def total_bytes(self, reason: OfflineReason | None = None) -> int:
        return sum(
            e.range.size
            for e in self._entries
            if reason is None or e.reason is reason
        )

    def ranges_for(self, reason: OfflineReason) -> list[AddressRange]:
        return merge_ranges([e.range for e in self._entries if e.reason is reason])

    def is_offline(self, hpa: int) -> bool:
        return any(hpa in e.range for e in self._entries)

    def summary(self) -> dict[str, int]:
        """Bytes offlined per reason — feeds the O1/O2 overhead benches."""
        out: dict[str, int] = {}
        for e in self._entries:
            out[e.reason.value] = out.get(e.reason.value, 0) + e.range.size
        return out
