"""PARA-style probabilistic adjacent-row activation (Kim et al., ISCA '14).

On every row activation the memory controller refreshes the
``distance``-neighbourhood of the activated row with a small
probability *p*.  No placement changes, no capacity cost — containment
is purely probabilistic: an aggressor performing *N* activations slips
past PARA with probability roughly ``(1 - p)^N`` per victim, so escapes
*must* reproduce at high hammer counts.  The attack-matrix tests assert
exactly that, seed-swept.

Determinism contract: the hook consumes **exactly one** RNG draw per
activation regardless of outcome, so the refresh stream is a pure
function of ``(seed, activation stream)`` — identical across backends
(the vectorized engine routes hooked ACTs through the scalar-faithful
batched path) and worker counts.
"""

from __future__ import annotations

import random

from repro.dram.module import DramHook, SimulatedDram
from repro.errors import MitigationError


class ParaRefreshHook(DramHook):
    """The PARA controller: probabilistic neighbour refresh per ACT."""

    def __init__(
        self,
        *,
        probability: float = 0.002,
        distance: int = 1,
        seed: int = 0,
    ):
        if not 0.0 < probability <= 1.0:
            raise MitigationError("probability must be in (0, 1]")
        if distance < 1:
            raise MitigationError("distance must be at least 1")
        self.probability = probability
        self.distance = distance
        self.rng = random.Random(f"para:{seed}")
        #: Neighbour refreshes issued (the mitigation's bandwidth cost).
        self.refreshes = 0

    def on_activate(
        self, dram: SimulatedDram, socket: int, bank: int, row: int
    ) -> None:
        """Flip a p-biased coin on this ACT; on heads, refresh the
        ``distance``-neighbourhood of the activated row.

        One draw per ACT, taken before any branching, keeps the RNG
        stream aligned with the activation stream."""
        if self.rng.random() >= self.probability:
            return
        for d in range(1, self.distance + 1):
            for victim in (row - d, row + d):
                if not 0 <= victim < dram.geom.rows_per_bank:
                    continue
                dram.disturbance.on_refresh_row(socket, bank, victim)
                self.refreshes += 1
