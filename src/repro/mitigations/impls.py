"""The registered mitigations: Siloz and its bake-off rivals.

Each class wires one defence into the :class:`~repro.mitigations.base.
Mitigation` interface.  The registry name is what ``repro bakeoff
--mitigations`` and :class:`~repro.fleet.host.HostSpec` use:

========================  ==================================================
``none``                  shared guest pool, no defence (the overhead floor)
``siloz``                 the paper: subarray-group nodes + EPT guard rows
``para``                  PARA-style probabilistic neighbour refresh
``catt``                  CATT-style row-aligned physical partitions
``domain-buddy``          domain-aware allocator: Siloz placement, no EPT
                          protection machinery (zero capacity loss)
``guard-rows``            shared pool + periodic offlined guard stripes
========================  ==================================================
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.core.config import EptProtection, SilozConfig
from repro.core.siloz import SilozHypervisor
from repro.hv.hypervisor import Hypervisor
from repro.hv.machine import Machine
from repro.mitigations.base import Mitigation, register
from repro.mitigations.hypervisors import (
    CattHypervisor,
    GuardStripeHypervisor,
    SharedPoolHypervisor,
)
from repro.mitigations.para import ParaRefreshHook

#: Audit kinds enforceable without per-tenant subarray exclusivity.
#: "co-location" is deliberately absent: these mitigations accept (or
#: cannot see) tenants sharing subarray groups — the exposure the
#: attack matrix measures, not a malfunction.
_NON_EXCLUSIVE_KINDS: tuple[str, ...] = (
    "escape",
    "host-overlap",
    "mediated-misplaced",
)


@register
class NoMitigation(Mitigation):
    """No defence at all: the containment floor and overhead baseline."""

    name: ClassVar[str] = "none"
    summary: ClassVar[str] = "shared guest pool, no Rowhammer defence"
    shared_domains: ClassVar[bool] = True
    enforced_audit_kinds: ClassVar[tuple[str, ...]] = _NON_EXCLUSIVE_KINDS

    def boot(self, machine: Machine) -> Hypervisor:
        return SharedPoolHypervisor.boot(machine)


@register
class SilozMitigation(Mitigation):
    """The paper's design: one tenant per subarray group + EPT guards."""

    name: ClassVar[str] = "siloz"
    summary: ClassVar[str] = "subarray-group isolation domains (the paper)"

    def boot(self, machine: Machine) -> Hypervisor:
        return SilozHypervisor.boot(machine)


@register
class ParaMitigation(Mitigation):
    """Probabilistic adjacent-row refresh on the shared pool."""

    name: ClassVar[str] = "para"
    summary: ClassVar[str] = "PARA probabilistic neighbour refresh"
    shared_domains: ClassVar[bool] = True
    enforced_audit_kinds: ClassVar[tuple[str, ...]] = _NON_EXCLUSIVE_KINDS

    def __init__(self, *, probability: float = 0.002, distance: int = 1):
        # Fail on bad knobs at construction, not first attach: the
        # throwaway hook runs the validation the real one will.
        ParaRefreshHook(probability=probability, distance=distance)
        self.probability = probability
        self.distance = distance
        self._hook: Optional[ParaRefreshHook] = None

    def boot(self, machine: Machine) -> Hypervisor:
        return SharedPoolHypervisor.boot(machine)

    def attach(self, hv: Hypervisor, *, seed: int = 0) -> None:
        self._hook = ParaRefreshHook(
            probability=self.probability, distance=self.distance, seed=seed
        )
        hv.machine.dram.register_hook(self._hook)

    def refresh_ops(self, hv: Hypervisor) -> int:
        return 0 if self._hook is None else self._hook.refreshes


@register
class CattMitigation(Mitigation):
    """Row-aligned physical partitions with trailing guard rows."""

    name: ClassVar[str] = "catt"
    summary: ClassVar[str] = "CATT physical partitioning (row-aligned)"
    # Partitions are exclusive per tenant (domain check stays on), but
    # their edges are row- not subarray-aligned, so subarray co-location
    # is accepted exposure rather than an invariant.
    enforced_audit_kinds: ClassVar[tuple[str, ...]] = _NON_EXCLUSIVE_KINDS

    def __init__(self, *, partitions_per_socket: int = 8, guard_rows: int = 1):
        self.partitions_per_socket = partitions_per_socket
        self.guard_rows = guard_rows

    def boot(self, machine: Machine) -> Hypervisor:
        return CattHypervisor.boot(
            machine,
            partitions_per_socket=self.partitions_per_socket,
            guard_rows=self.guard_rows,
        )


@register
class DomainBuddyMitigation(Mitigation):
    """Domain-aware allocation alone: Siloz placement, no EPT machinery.

    The strongest low-cost rival (cf. Saxena et al.): tenants still get
    exclusive subarray groups, but nothing is offlined and EPT pages
    come from the host pool — zero capacity loss, EPT integrity
    unprotected.  ``rows_per_subarray`` overrides the presumed domain
    size; a wrong presumption (smaller than physical) is the documented
    hole the matrix tests reproduce."""

    name: ClassVar[str] = "domain-buddy"
    summary: ClassVar[str] = "domain-aware buddy allocator, no EPT guards"

    def __init__(self, *, rows_per_subarray: int | None = None):
        self.rows_per_subarray = rows_per_subarray

    def boot(self, machine: Machine) -> Hypervisor:
        """Siloz placement over *presumed* domains, EPT guards off."""
        geom = machine.geom
        config = SilozConfig.scaled_for(
            geom,
            ept_protection=EptProtection.NONE,
            rows_per_subarray=self.rows_per_subarray or geom.rows_per_subarray,
        )
        return SilozHypervisor.boot(machine, config)


@register
class GuardRowsMitigation(Mitigation):
    """Guard stripes only: offlined rows every ``stripe_rows`` rows."""

    name: ClassVar[str] = "guard-rows"
    summary: ClassVar[str] = "periodic offlined guard stripes, shared pool"
    shared_domains: ClassVar[bool] = True
    enforced_audit_kinds: ClassVar[tuple[str, ...]] = _NON_EXCLUSIVE_KINDS

    def __init__(self, *, stripe_rows: int = 32, guard_rows: int = 1):
        self.stripe_rows = stripe_rows
        self.guard_rows = guard_rows

    def boot(self, machine: Machine) -> Hypervisor:
        return GuardStripeHypervisor.boot(
            machine, stripe_rows=self.stripe_rows, guard_rows=self.guard_rows
        )
