"""Rival hypervisors for the bake-off: shared-pool, guard-stripe, CATT.

Three placement policies that bracket Siloz's design point:

* :class:`SharedPoolHypervisor` — one big guest pool per socket
  (group 0 stays host-reserved so host/EPT state is off the guest
  floor).  No placement isolation at all: the "none" baseline every
  other mitigation's overhead is measured against, and the substrate
  PARA-style refresh runs on.
* :class:`GuardStripeHypervisor` — the shared pool plus periodic
  offlined guard rows (every ``stripe_rows`` rows).  Guards absorb
  distance-1 disturbance at the stripe edge but tenants still share
  stripes, and a thin stripe leaks distance-2 pressure straight across
  a single guard row.
* :class:`CattHypervisor` — CATT-style physical partitioning (Brasser
  et al., USENIX Security '17): the guest area is cut into fixed
  per-socket partitions, each tenant gets whole partitions exclusively,
  and each partition ends in offlined guard rows.  Partition edges are
  *row*-aligned, not subarray-aligned — the gap between CATT and Siloz
  that the attack matrix demonstrates.
"""

from __future__ import annotations

from repro.dram.mapping import AddressRange, merge_ranges
from repro.errors import MitigationError, PlacementError
from repro.hv.hypervisor import Hypervisor, VmSpec
from repro.hv.machine import Machine
from repro.mm.numa import NodeKind, NumaNode
from repro.mm.offline import OfflineReason
from repro.units import PAGE_2M, PAGE_4K


def _infer_backing(geom) -> int:
    """Same heuristic as ``SilozHypervisor.boot``: page-granular backing
    on small machines so multi-MiB machines stay schedulable."""
    return PAGE_2M if geom.subarray_group_bytes >= 16 * PAGE_2M else 16 * PAGE_4K


class SharedPoolHypervisor(Hypervisor):
    """Per-socket shared guest pool; no placement isolation."""

    def _build_topology(self) -> None:
        geom = self.machine.geom
        mapping = self.machine.mapping
        for socket in range(geom.sockets):
            self.topology.add(
                NumaNode(
                    node_id=socket,
                    kind=NodeKind.HOST_RESERVED,
                    physical_node=socket,
                    ranges=mapping.subarray_group_ranges(socket, 0),
                    cpus=self.machine.socket_cores(socket),
                    subarray_groups=(0,),
                )
            )
        for socket in range(geom.sockets):
            ranges = [
                r
                for g in range(1, geom.groups_per_socket)
                for r in mapping.subarray_group_ranges(socket, g)
            ]
            self.topology.add(
                NumaNode(
                    node_id=geom.sockets + socket,
                    kind=NodeKind.GUEST_RESERVED,
                    physical_node=socket,
                    ranges=merge_ranges(ranges),
                    subarray_groups=tuple(range(1, geom.groups_per_socket)),
                )
            )

    def _nodes_unavailable_for_placement(self) -> set[int]:
        """Shared pool: tenants co-habit nodes, nothing is withheld."""
        return set()

    def _place_vm(self, spec: VmSpec) -> tuple[tuple[int, ...], frozenset]:
        """First-fit over the shared pools, preferred socket first.

        ``reserved_groups`` is empty: nothing is guaranteed to the
        tenant (the point of the "none" baseline)."""
        needed = spec.memory_bytes + 2 * self.backing_page_bytes  # + ROM slack
        pools = sorted(
            self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED),
            key=lambda n: (n.physical_node != spec.socket, n.node_id),
        )
        chosen: list[int] = []
        total = 0
        for node in pools:
            if node.free_bytes <= 0:
                continue
            chosen.append(node.node_id)
            total += node.free_bytes
            if total >= needed:
                break
        if total < needed:
            per_node = max(
                (n.total_bytes for n in pools),
                default=self.machine.geom.subarray_group_bytes,
            )
            raise PlacementError(
                f"shared guest pool cannot back {spec.memory_bytes:#x} bytes "
                f"for VM {spec.name!r}: {total:#x} bytes free",
                requested_groups=-(-needed // per_node),
                available_groups=len(chosen),
            )
        return tuple(chosen), frozenset()

    def _alloc_ept_page(self, socket: int) -> int:
        """EPT pages come from the host-reserved pool (kmalloc-ish but
        kept off tenant rows so the guest pool stays whole)."""
        return self.topology.alloc_on_node(socket, PAGE_4K)

    @classmethod
    def boot(cls, machine: Machine, **kwargs) -> "SharedPoolHypervisor":
        kwargs.setdefault("backing_page_bytes", _infer_backing(machine.geom))
        return cls(machine, **kwargs)


class GuardStripeHypervisor(SharedPoolHypervisor):
    """Shared pool plus periodic offlined guard rows (guards only)."""

    def __init__(
        self,
        machine: Machine,
        *,
        stripe_rows: int = 32,
        guard_rows: int = 1,
        **kwargs,
    ):
        if guard_rows < 1:
            raise MitigationError("guard_rows must be at least 1")
        if stripe_rows <= guard_rows:
            raise MitigationError(
                f"stripe_rows ({stripe_rows}) must exceed guard_rows "
                f"({guard_rows})"
            )
        # _build_topology (called by the base initializer) needs these.
        self.stripe_rows = stripe_rows
        self.guard_rows = guard_rows
        super().__init__(machine, **kwargs)

    def _build_topology(self) -> None:
        super()._build_topology()
        geom = self.machine.geom
        mapping = self.machine.mapping
        first_guest_row = geom.rows_per_subarray  # group 0 is the host's
        for socket in range(geom.sockets):
            node = self.topology.node(geom.sockets + socket)
            for row in range(first_guest_row, geom.rows_per_bank):
                offset = (row - first_guest_row) % self.stripe_rows
                if offset < self.stripe_rows - self.guard_rows:
                    continue
                for rg in mapping.row_group_ranges(socket, row):
                    self.offline.offline(node, rg, OfflineReason.GUARD_ROW)


class CattHypervisor(Hypervisor):
    """CATT-style fixed physical partitions with trailing guard rows."""

    def __init__(
        self,
        machine: Machine,
        *,
        partitions_per_socket: int = 8,
        guard_rows: int = 1,
        **kwargs,
    ):
        geom = machine.geom
        guest_rows = geom.rows_per_bank - geom.rows_per_subarray
        if partitions_per_socket < 1:
            raise MitigationError("partitions_per_socket must be at least 1")
        if guest_rows // partitions_per_socket <= guard_rows:
            raise MitigationError(
                f"{partitions_per_socket} partitions over {guest_rows} guest "
                f"rows leave no allocatable rows after {guard_rows} guard "
                f"row(s) each"
            )
        self.partitions_per_socket = partitions_per_socket
        self.guard_rows = guard_rows
        super().__init__(machine, **kwargs)

    def _build_topology(self) -> None:
        geom = self.machine.geom
        mapping = self.machine.mapping
        for socket in range(geom.sockets):
            self.topology.add(
                NumaNode(
                    node_id=socket,
                    kind=NodeKind.HOST_RESERVED,
                    physical_node=socket,
                    ranges=mapping.subarray_group_ranges(socket, 0),
                    cpus=self.machine.socket_cores(socket),
                    subarray_groups=(0,),
                )
            )
        first_guest_row = geom.rows_per_subarray
        guest_rows = geom.rows_per_bank - first_guest_row
        stride = guest_rows // self.partitions_per_socket
        next_id = geom.sockets
        for socket in range(geom.sockets):
            for p in range(self.partitions_per_socket):
                start = first_guest_row + p * stride
                end = (
                    geom.rows_per_bank
                    if p == self.partitions_per_socket - 1
                    else start + stride
                )
                ranges: list[AddressRange] = []
                for row in range(start, end):
                    ranges.extend(mapping.row_group_ranges(socket, row))
                node = NumaNode(
                    node_id=next_id,
                    kind=NodeKind.GUEST_RESERVED,
                    physical_node=socket,
                    ranges=merge_ranges(ranges),
                    # Row-aligned, not subarray-aligned: deliberately no
                    # subarray-group claim.
                    subarray_groups=(),
                )
                self.topology.add(node)
                for row in range(end - self.guard_rows, end):
                    for rg in mapping.row_group_ranges(socket, row):
                        self.offline.offline(node, rg, OfflineReason.GUARD_ROW)
                next_id += 1

    def _guest_nodes_exclusive(self) -> bool:
        return True

    def _place_vm(self, spec: VmSpec) -> tuple[tuple[int, ...], frozenset]:
        """Whole partitions, exclusively, preferred socket first."""
        needed = spec.memory_bytes + 2 * self.backing_page_bytes  # + ROM slack
        reserved = self._nodes_unavailable_for_placement()
        free_nodes = [
            n
            for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
            if n.node_id not in reserved
        ]
        candidates = sorted(
            free_nodes,
            key=lambda n: (n.physical_node != spec.socket, n.node_id),
        )
        chosen: list[int] = []
        total = 0
        for node in candidates:
            chosen.append(node.node_id)
            total += node.free_bytes
            if total >= needed:
                break
        if total < needed:
            per_node = max(
                (n.total_bytes for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)),
                default=self.machine.geom.subarray_group_bytes,
            )
            raise PlacementError(
                f"cannot reserve {spec.memory_bytes:#x} bytes of CATT "
                f"partitions for VM {spec.name!r}: {len(free_nodes)} free "
                f"partition(s) hold {total:#x} bytes",
                requested_groups=-(-needed // per_node),
                available_groups=len(free_nodes),
            )
        # Partitions are row-aligned; no subarray-group claim is made.
        return tuple(chosen), frozenset()

    def _alloc_ept_page(self, socket: int) -> int:
        return self.topology.alloc_on_node(socket, PAGE_4K)

    @classmethod
    def boot(cls, machine: Machine, **kwargs) -> "CattHypervisor":
        kwargs.setdefault("backing_page_bytes", _infer_backing(machine.geom))
        return cls(machine, **kwargs)
