"""The mitigation bake-off: identical seeded fleets, rival defences.

:func:`run_bakeoff` executes one :class:`~repro.fleet.driver.
FleetCampaign` per mitigation — same seed, same arrival trace, same
scenario, only ``CampaignConfig.mitigation`` varies — and condenses
each into a comparable entry: containment rate (hosts whose attacker
neither escaped its domains nor corrupted another tenant), blast radius
on containment failure (victim VMs on the worst host), capacity loss,
and activation/refresh overhead relative to the ``none`` baseline when
it is part of the sweep.

Determinism contract: a :class:`BakeoffReport`'s :meth:`digest` is a
pure function of ``(seed, scenario, mitigation set, fleet shape)`` —
identical across backends (the differential-engine bit-identity
contract) and worker counts (per-host seeds derive from host ids).  The
CI ``bakeoff-smoke`` job and the golden fixtures under ``tests/golden/``
hold exactly this line.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro import obs
from repro.errors import MitigationError
from repro.fleet.driver import CampaignConfig, FleetCampaign
from repro.fleet.report import FleetReport
from repro.mitigations.base import make_mitigation, mitigation_names

#: Fuzzer pattern budget where the unmitigated baseline reliably leaks
#: on a small machine (cumulative edge pressure needs ~1500 ACTs/row).
DEFAULT_BUDGET = 150


@dataclass(frozen=True)
class BakeoffConfig:
    """One bake-off, fully described (and picklable)."""

    #: Mitigations to compare; () runs every registered one.
    mitigations: tuple[str, ...] = ()
    hosts: int = 4
    vms: int = 8
    seed: int = 0
    backend: str = "scalar"
    workers: int = 1
    budget: int = DEFAULT_BUDGET
    policy: str = "best-fit"
    scenario: str = "attack"
    storm_errors: int = 20
    sockets: int = 1

    def resolved_mitigations(self) -> tuple[str, ...]:
        """The sweep, in deterministic order; validates names."""
        names = self.mitigations or mitigation_names()
        known = set(mitigation_names())
        unknown = [n for n in names if n not in known]
        if unknown:
            raise MitigationError(
                f"unknown mitigation(s) {unknown}; know {sorted(known)}"
            )
        if len(set(names)) != len(names):
            raise MitigationError(f"duplicate mitigation in sweep: {names}")
        return tuple(names)

    def campaign_config(self, mitigation: str) -> CampaignConfig:
        """The per-mitigation fleet campaign: identical except for the
        defence under test."""
        return CampaignConfig(
            hosts=self.hosts,
            vms=self.vms,
            policy=self.policy,
            scenario=self.scenario,
            backend=self.backend,
            seed=self.seed,
            workers=self.workers,
            budget=self.budget,
            storm_errors=self.storm_errors,
            sockets=self.sockets,
            mitigation=mitigation,
        )

    def to_dict(self) -> dict:
        from dataclasses import asdict

        out = asdict(self)
        out["mitigations"] = list(self.resolved_mitigations())
        return out


def _containment(host_results: list[dict]) -> dict:
    """Condense the attack outcomes of one campaign."""
    attacked = [
        r
        for r in host_results
        if r.get("ok") and r.get("scenario") == "attack" and not r.get("idle")
    ]
    contained = [
        r
        for r in attacked
        if r.get("contained") and r.get("victim_flips", 0) == 0
    ]
    return {
        "attacked_hosts": len(attacked),
        "contained_hosts": len(contained),
        "containment_rate": (
            round(len(contained) / len(attacked), 6) if attacked else 1.0
        ),
        "escaped_flips": sum(r.get("escaped", 0) for r in attacked),
        "victim_flips": sum(r.get("victim_flips", 0) for r in attacked),
        "victim_vms": sum(r.get("victims", 0) for r in attacked),
        # Worst single-host fan-out when containment failed.
        "blast_radius": max(
            (r.get("victims", 0) for r in attacked), default=0
        ),
    }


def _overhead(host_results: list[dict]) -> dict:
    """Activation/refresh totals from the per-host mitigation sections."""
    sections = [
        r["mitigation"] for r in host_results if r.get("ok") and "mitigation" in r
    ]
    acts = sum(s.get("activations", 0) for s in sections)
    refreshes = sum(s.get("refresh_ops", 0) for s in sections)
    return {
        "activations": acts,
        "refresh_ops": refreshes,
        "refreshes_per_kact": round(1000.0 * refreshes / acts, 6) if acts else 0.0,
    }


def _capacity(host_results: list[dict]) -> dict:
    """Capacity accounting (identical on every host: same machine)."""
    for r in host_results:
        if r.get("ok") and "mitigation" in r:
            return dict(r["mitigation"]["capacity"])
    return {}


def _entry(name: str, report: FleetReport) -> dict:
    sections = [
        r["mitigation"] for r in report.host_results if r.get("ok") and "mitigation" in r
    ]
    shared = bool(sections[0].get("shared_domains")) if sections else False
    return {
        "mitigation": name,
        "shared_domains": shared,
        "fleet": {
            "digest": report.digest(),
            "hosts": len(report.host_results),
            "hosts_ok": report.hosts_ok,
            "unplanned_failures": report.hosts_failed - report.hosts_crashed,
            "audit_clean": report.audit_clean,
            "acceptance_rate": round(report.acceptance_rate, 6),
            "utilization": round(report.utilization, 6),
        },
        "containment": _containment(report.host_results),
        "capacity": _capacity(report.host_results),
        "overhead": _overhead(report.host_results),
    }


@dataclass
class BakeoffReport:
    """One bake-off's comparable per-mitigation entries."""

    config: dict
    entries: list[dict] = field(default_factory=list)

    def entry(self, name: str) -> dict:
        for e in self.entries:
            if e["mitigation"] == name:
                return e
        raise MitigationError(f"no bake-off entry for {name!r}")

    @property
    def clean(self) -> bool:
        """True when every campaign ran without unplanned failures and
        with clean (mitigation-aware) audits."""
        return all(
            e["fleet"]["unplanned_failures"] == 0 and e["fleet"]["audit_clean"]
            for e in self.entries
        )

    # -- determinism contract -------------------------------------------

    def to_json(self) -> dict:
        return {"config": self.config, "entries": self.entries}

    def _scrubbed(self) -> dict:
        """Canonical form minus execution details (same rule as
        :meth:`FleetReport.digest`: workers and backend are *how* the
        campaign ran, never *what* it computed)."""
        doc = self.to_json()
        doc["config"] = {
            k: v
            for k, v in doc["config"].items()
            if k not in ("workers", "backend")
        }
        return doc

    def digest(self) -> str:
        """sha256 over the scrubbed canonical form — identical across
        backends and worker counts for the same seed and sweep."""
        blob = json.dumps(self._scrubbed(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def mitigation_digest(self, name: str) -> str:
        """Per-mitigation digest (what ``tests/golden/`` pins): hashes
        one entry plus the scrubbed config minus the sweep list, so a
        golden only moves when that mitigation's behaviour (or the
        shared scenario) moves — never when a rival joins the sweep."""
        config = {
            k: v
            for k, v in self._scrubbed()["config"].items()
            if k != "mitigations"
        }
        doc = {"config": config, "entry": self.entry(name)}
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- presentation ----------------------------------------------------

    def render_table(self) -> str:
        """The CLI's per-mitigation comparison table."""
        header = (
            f"{'mitigation':<14}{'contained':>10}{'escaped':>9}"
            f"{'victims':>9}{'blast':>7}{'loss %':>8}{'ref/kACT':>10}"
            f"{'ACT ovh':>9}"
        )
        lines = [
            "mitigation bake-off "
            f"(hosts={self.config['hosts']} vms={self.config['vms']} "
            f"seed={self.config['seed']} budget={self.config['budget']} "
            f"scenario={self.config['scenario']})",
            header,
            "-" * len(header),
        ]
        base_acts = None
        for e in self.entries:
            if e["mitigation"] == "none":
                base_acts = e["overhead"]["activations"] or None
        for e in self.entries:
            c = e["containment"]
            cap = e["capacity"]
            ovh = e["overhead"]
            acts = ovh["activations"]
            rel = (
                f"{acts / base_acts:>8.3f}x"
                if base_acts and e["mitigation"] != "none"
                else f"{'-':>9}"
            )
            lines.append(
                f"{e['mitigation']:<14}"
                f"{c['contained_hosts']:>5}/{c['attacked_hosts']:<4}"
                f"{c['escaped_flips']:>9}"
                f"{c['victim_flips']:>9}"
                f"{c['blast_radius']:>7}"
                f"{100 * cap.get('loss_fraction', 0.0):>8.3f}"
                f"{ovh['refreshes_per_kact']:>10.3f}"
                f"{rel}"
            )
        if not self.clean:
            lines.append("WARNING: a campaign had unplanned failures or a "
                         "dirty audit; entries above are suspect")
        return "\n".join(lines)


def run_bakeoff(config: BakeoffConfig) -> BakeoffReport:
    """Run one campaign per mitigation and merge the comparison."""
    names = config.resolved_mitigations()
    report = BakeoffReport(config=config.to_dict())
    for name in names:
        make_mitigation(name)  # fail fast on bad knobs before the fleet boots
        campaign = FleetCampaign(config.campaign_config(name))
        fleet_report = campaign.run()
        entry = _entry(name, fleet_report)
        report.entries.append(entry)
        if obs.ENABLED:
            obs.emit(
                obs.BakeoffEvent(
                    mitigation=name,
                    containment_rate=entry["containment"]["containment_rate"],
                    escaped_flips=entry["containment"]["escaped_flips"],
                    victim_flips=entry["containment"]["victim_flips"],
                    loss_fraction=entry["capacity"].get("loss_fraction", 0.0),
                    refreshes_per_kact=entry["overhead"]["refreshes_per_kact"],
                )
            )
    return report


__all__ = ["BakeoffConfig", "BakeoffReport", "run_bakeoff", "DEFAULT_BUDGET"]
