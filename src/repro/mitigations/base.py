"""The pluggable mitigation interface behind the bake-off harness.

A :class:`Mitigation` bundles everything the fleet needs to run one
Rowhammer defence as a drop-in: how to boot its hypervisor (placement
policy + topology), which runtime knobs to attach to the DRAM
(probabilistic refresh hooks), what its *protection domains* are, and
how to account the capacity it sacrifices.  The Siloz reproduction
itself is just one registered mitigation; the bake-off runs it against
rivals under byte-identical seeded fleet scenarios.

**The interface contract** (locked down by
``tests/test_mitigation_properties.py``):

* ``boot`` is a pure function of the machine — booting twice from
  equal machines yields identical topology and placement behaviour.
* A mitigation may never place two tenants in one protection domain
  (:meth:`domains_of`) unless it declares ``shared_domains = True``.
* :meth:`capacity` numbers are never negative and ``loss_fraction``
  stays within [0, 1].

**Audit semantics.**  :func:`repro.core.policy.audit_hypervisor` checks
Siloz's invariants in *subarray* terms; its "co-location" finding flags
any two VMs whose backing shares a subarray group.  That is exactly the
exposure some rivals accept by design — a shared guest pool co-locates
tenants, and CATT partitions straddle subarray boundaries — so each
mitigation declares which audit kinds are *enforced invariants* for it
(:attr:`Mitigation.enforced_audit_kinds`).  Unenforced findings are the
documented containment holes the attack matrix tests reproduce; they
are not bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, Type

from repro.core.policy import Violation, audit_hypervisor
from repro.errors import IsolationViolation, MitigationError
from repro.mm.numa import NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hv.hypervisor import Hypervisor
    from repro.hv.machine import Machine
    from repro.hv.vm import VirtualMachine


#: Every kind :func:`audit_hypervisor` can report.
ALL_AUDIT_KINDS: tuple[str, ...] = (
    "escape",
    "host-overlap",
    "mediated-misplaced",
    "co-location",
)


@dataclass(frozen=True)
class MitigationCapacity:
    """Capacity accounting for one booted mitigation on one host."""

    #: Physical DRAM on the machine.
    total_bytes: int
    #: Bytes provisioned as guest-placeable (guest-reserved nodes).
    guest_bytes: int
    #: Bytes a new tenant could still be backed by right now.
    free_guest_bytes: int
    #: Bytes the mitigation itself consumes: offlined guard rows,
    #: remediation retirements, and dedicated EPT row groups.
    reserved_bytes: int

    def __post_init__(self) -> None:
        for name in ("total_bytes", "guest_bytes", "free_guest_bytes", "reserved_bytes"):
            if getattr(self, name) < 0:
                raise MitigationError(f"{name} may not be negative")

    @property
    def loss_fraction(self) -> float:
        """Fraction of physical DRAM the mitigation sacrifices."""
        return self.reserved_bytes / self.total_bytes if self.total_bytes else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form; ``loss_fraction`` rounded for stable digests."""
        return {
            "total_bytes": self.total_bytes,
            "guest_bytes": self.guest_bytes,
            "free_guest_bytes": self.free_guest_bytes,
            "reserved_bytes": self.reserved_bytes,
            "loss_fraction": round(self.loss_fraction, 6),
        }


class Mitigation:
    """One pluggable Rowhammer defence; subclass and :func:`register`."""

    #: Registry key (``repro bakeoff --mitigations``).
    name: ClassVar[str] = ""
    #: One-line description for tables and ``--help``.
    summary: ClassVar[str] = ""
    #: True when tenants intentionally share protection domains (no
    #: per-tenant exclusivity is claimed; e.g. PARA protects rows, not
    #: placement).
    shared_domains: ClassVar[bool] = False
    #: Audit kinds that are hard invariants for this mitigation; the
    #: rest are accepted exposure (see module docstring).
    enforced_audit_kinds: ClassVar[tuple[str, ...]] = ALL_AUDIT_KINDS

    # -- lifecycle -----------------------------------------------------

    def boot(self, machine: "Machine") -> "Hypervisor":
        """Boot this mitigation's hypervisor on *machine*."""
        raise NotImplementedError

    def attach(self, hv: "Hypervisor", *, seed: int = 0) -> None:
        """Attach runtime machinery (DRAM hooks, refresh knobs).

        Called once right after :meth:`boot`; the default is a no-op
        (placement-only mitigations need nothing at runtime)."""

    # -- protection domains --------------------------------------------

    def domains_of(self, hv: "Hypervisor", vm: "VirtualMachine") -> frozenset:
        """The protection domains *vm* occupies.

        Defaults to the VM's reserved subarray groups when it has any
        (Siloz-style), else its logical NUMA nodes — partition-style
        mitigations protect at node granularity."""
        if vm.reserved_groups:
            return frozenset(vm.reserved_groups)
        return frozenset(("node", nid) for nid in vm.node_ids)

    # -- accounting ----------------------------------------------------

    def capacity(self, hv: "Hypervisor") -> MitigationCapacity:
        """Capacity accounting on *hv* right now."""
        snap = hv.capacity()
        guest = sum(
            n.total_bytes for n in hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
        )
        ept = sum(
            n.total_bytes for n in hv.topology.nodes_of_kind(NodeKind.EPT_RESERVED)
        )
        return MitigationCapacity(
            total_bytes=hv.machine.geom.total_bytes,
            guest_bytes=guest,
            free_guest_bytes=snap.free_guest_bytes,
            reserved_bytes=snap.offlined_bytes + ept,
        )

    def refresh_ops(self, hv: "Hypervisor") -> int:
        """Extra row refreshes this mitigation issued (its perf cost);
        0 for placement-only mitigations."""
        return 0

    # -- invariants ----------------------------------------------------

    def audit(self, hv: "Hypervisor") -> tuple[Violation, ...]:
        """Enforced-invariant violations on *hv* (filtered audit)."""
        enforced = set(self.enforced_audit_kinds)
        return tuple(v for v in audit_hypervisor(hv) if v.kind in enforced)

    def assert_isolation(self, host) -> None:
        """Raise :class:`IsolationViolation` when this mitigation's own
        invariants are broken on *host* (a :class:`repro.fleet.host.Host`).

        Checks domain exclusivity (skipped for ``shared_domains``) and
        the enforced subset of the placement audit."""
        if not self.shared_domains:
            claimed: dict = {}
            for name in sorted(host.hv.vms):
                vm = host.hv.vms[name]
                for domain in sorted(self.domains_of(host.hv, vm)):
                    other = claimed.get(domain)
                    if other is not None and other != vm.name:
                        raise IsolationViolation(
                            f"host {host.host_id} ({self.name}): protection "
                            f"domain {domain} holds both {other!r} and "
                            f"{vm.name!r}"
                        )
                    claimed[domain] = vm.name
        violations = self.audit(host.hv)
        if violations:
            raise IsolationViolation(
                f"host {host.host_id} ({self.name}): isolation audit found "
                f"{len(violations)} violation(s): {violations[0]}"
            )

    # -- reporting -----------------------------------------------------

    def host_report(self, host) -> dict:
        """Deterministic per-host section merged into the fleet report."""
        dram = host.hv.machine.dram
        return {
            "name": self.name,
            "shared_domains": self.shared_domains,
            "capacity": self.capacity(host.hv).to_dict(),
            "activations": dram.counters.activations,
            "refresh_ops": self.refresh_ops(host.hv),
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

MITIGATIONS: Dict[str, Type[Mitigation]] = {}


def register(cls: Type[Mitigation]) -> Type[Mitigation]:
    """Class decorator: add *cls* to the mitigation registry."""
    if not cls.name:
        raise MitigationError(f"{cls.__name__} must set a non-empty name")
    existing = MITIGATIONS.get(cls.name)
    if existing is not None and existing is not cls:
        raise MitigationError(f"mitigation {cls.name!r} already registered")
    unknown = set(cls.enforced_audit_kinds) - set(ALL_AUDIT_KINDS)
    if unknown:
        raise MitigationError(
            f"{cls.__name__}.enforced_audit_kinds has unknown kinds {sorted(unknown)}"
        )
    MITIGATIONS[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    from repro.mitigations import impls  # noqa: F401  (registers on import)


def mitigation_names() -> tuple[str, ...]:
    """All registered mitigation names, sorted."""
    _ensure_registered()
    return tuple(sorted(MITIGATIONS))


def make_mitigation(name: str, **knobs) -> Mitigation:
    """A fresh instance of the registered mitigation *name*."""
    _ensure_registered()
    cls = MITIGATIONS.get(name)
    if cls is None:
        raise MitigationError(
            f"unknown mitigation {name!r}; know {', '.join(sorted(MITIGATIONS))}"
        )
    return cls(**knobs)
