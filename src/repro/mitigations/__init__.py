"""Pluggable Rowhammer mitigations and the bake-off harness.

- :mod:`repro.mitigations.base` — the :class:`Mitigation` interface,
  capacity accounting, and the registry.
- :mod:`repro.mitigations.hypervisors` — the rival placement policies
  (shared pool, guard stripes, CATT partitions).
- :mod:`repro.mitigations.para` — the PARA probabilistic-refresh DRAM
  hook.
- :mod:`repro.mitigations.impls` — the registered mitigations
  (``none``, ``siloz``, ``para``, ``catt``, ``domain-buddy``,
  ``guard-rows``).
- :mod:`repro.mitigations.bakeoff` — the fleet-driven bake-off
  campaign runner and :class:`BakeoffReport` (import it explicitly; it
  pulls in :mod:`repro.fleet`).
"""

from repro.mitigations.base import (
    ALL_AUDIT_KINDS,
    MITIGATIONS,
    Mitigation,
    MitigationCapacity,
    make_mitigation,
    mitigation_names,
    register,
)
from repro.mitigations.hypervisors import (
    CattHypervisor,
    GuardStripeHypervisor,
    SharedPoolHypervisor,
)
from repro.mitigations.para import ParaRefreshHook
from repro.mitigations import impls as _impls  # noqa: F401  (registers)

__all__ = [
    "ALL_AUDIT_KINDS",
    "MITIGATIONS",
    "Mitigation",
    "MitigationCapacity",
    "CattHypervisor",
    "GuardStripeHypervisor",
    "SharedPoolHypervisor",
    "ParaRefreshHook",
    "make_mitigation",
    "mitigation_names",
    "register",
]
