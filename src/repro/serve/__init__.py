"""``repro.serve`` — the fleet model as a long-running service.

Everything else in this repo drives the Siloz fleet model as a batch
campaign; this package makes it *serve traffic*: a typed, versioned
JSON-line protocol (:mod:`repro.serve.protocol`), an asyncio service
core that routes requests through the bounded admission queue so
backpressure is a real 429-style response (:mod:`repro.serve.core`), a
TCP / UNIX-socket daemon and client library (:mod:`repro.serve.server`,
:mod:`repro.serve.client`), and an open-loop load generator that
verifies the async run replays bit-identically through the synchronous
fleet path (:mod:`repro.serve.loadgen`).
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeFailure
from repro.serve.core import (
    FleetStateMachine,
    ServeCore,
    ServiceConfig,
    replay_request_log,
)
from repro.serve.loadgen import (
    LoadMix,
    LoadgenConfig,
    LoadgenReport,
    run_loadgen,
    serve_and_load,
)
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    ServeFault,
)
from repro.serve.server import ServeServer, main_serve, run_server

__all__ = [
    "AsyncServeClient",
    "ErrorCode",
    "FleetStateMachine",
    "LoadMix",
    "LoadgenConfig",
    "LoadgenReport",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "ServeCore",
    "ServeClient",
    "ServeFailure",
    "ServeFault",
    "ServeServer",
    "ServiceConfig",
    "main_serve",
    "replay_request_log",
    "run_loadgen",
    "run_server",
    "serve_and_load",
]
