"""Wire protocol for the ``repro serve`` daemon: typed, versioned
JSON-line request/response schemas.

One request per line, one response per line, both UTF-8 JSON objects
terminated by ``\\n``::

    {"v": 1, "id": 7, "op": "place_vm", "params": {"name": "a", "memory_bytes": 2097152}}
    {"v": 1, "id": 7, "ok": true, "result": {"host": 0, "attempts": 1}}

Responses carry the request's ``id`` so clients may pipeline requests
and match replies out of order.  Failures are **typed error payloads**
(:class:`ServeFault`), never tracebacks across the socket: a full
admission queue maps to :attr:`ErrorCode.BUSY` (the cloud front door's
429), an exhausted-capacity eviction to :attr:`ErrorCode.CAPACITY`
(carrying the :class:`~repro.fleet.admission.RejectReason` tag and the
group-shortfall counts from the typed
:class:`~repro.errors.PlacementError`), and anything unexpected to
:attr:`ErrorCode.INTERNAL` with only the exception's type and message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Union

from repro.errors import ServeError
from repro.fleet.admission import AdmissionDecision, RejectReason

#: Wire schema version; bump on any incompatible field change.
PROTOCOL_VERSION = 1

#: Every operation the service routes (see ``repro.serve.core``).
OPS = (
    "place_vm",
    "evict_vm",
    "run_attack",
    "health",
    "capacity",
    "metrics",
    "info",
    "log",
    "digest",
    "shutdown",
)


class ProtocolError(ServeError):
    """A frame could not be parsed as a well-formed request/response."""


class ErrorCode(Enum):
    """Typed failure classes a response can carry (stable wire tags)."""

    #: The line was not a well-formed request object.
    BAD_REQUEST = "bad-request"
    #: The request's ``v`` is not :data:`PROTOCOL_VERSION`.
    UNSUPPORTED_VERSION = "unsupported-version"
    #: ``op`` is not one of :data:`OPS`.
    UNKNOWN_OP = "unknown-op"
    #: Parameters are malformed or violate a static constraint.
    INVALID = "invalid"
    #: The named VM / host does not exist on the fleet.
    NOT_FOUND = "not-found"
    #: Backpressure: the bounded admission queue was full (429-style).
    BUSY = "busy"
    #: Transient capacity shortfall persisted through every retry.
    CAPACITY = "capacity"
    #: The daemon is draining; no new mutations are accepted.
    SHUTTING_DOWN = "shutting-down"
    #: An unexpected server-side error (type + message only, no trace).
    INTERNAL = "internal"


@dataclass(frozen=True)
class Request:
    """One client request: an operation, its parameters, and an id."""

    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    id: int = 0
    v: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class ServeFault:
    """A typed error payload (the ``error`` half of a response)."""

    code: ErrorCode
    #: Machine-readable reason tag (e.g. a ``RejectReason`` value).
    reason: str = ""
    #: Human-readable detail; never a traceback.
    detail: str = ""
    #: Structured extras (shortfall counts, queue depths, attempts).
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        """Wire form of the error object."""
        out: Dict[str, Any] = {"code": self.code.value}
        if self.reason:
            out["reason"] = self.reason
        if self.detail:
            out["detail"] = self.detail
        out.update(self.extra)
        return out


@dataclass(frozen=True)
class Response:
    """One service response, matched to its request by ``id``."""

    id: int
    ok: bool
    result: Dict[str, Any] = field(default_factory=dict)
    error: Optional[ServeFault] = None
    v: int = PROTOCOL_VERSION


def ok_response(request_id: int, **result: Any) -> Response:
    """A success response carrying *result* fields."""
    return Response(id=request_id, ok=True, result=dict(result))


def error_response(request_id: int, fault: ServeFault) -> Response:
    """A typed failure response carrying *fault*."""
    return Response(id=request_id, ok=False, error=fault)


#: RejectReason -> wire error code for rejected admission decisions.
_REJECT_CODES: Dict[RejectReason, ErrorCode] = {
    RejectReason.QUEUE_FULL: ErrorCode.BUSY,
    RejectReason.RETRIES_EXHAUSTED: ErrorCode.CAPACITY,
    RejectReason.INVALID_SPEC: ErrorCode.INVALID,
}


def fault_from_decision(decision: AdmissionDecision) -> ServeFault:
    """Map a rejected admission decision to its typed wire fault.

    The :class:`~repro.fleet.admission.RejectReason` tag travels as the
    fault's ``reason`` and the capacity shortfall (when the typed
    ``PlacementError`` carried one) as structured extras, so a client
    can distinguish "resubmit later" (busy), "shrink the request"
    (capacity), and "fix the request" (invalid) without string-matching.
    """
    if decision.admitted or decision.reason is None:
        raise ServeError("fault_from_decision needs a rejected decision")
    extra: Dict[str, Any] = {"attempts": decision.attempts}
    if decision.requested_groups is not None:
        extra["requested_groups"] = decision.requested_groups
    if decision.available_groups is not None:
        extra["available_groups"] = decision.available_groups
    return ServeFault(
        code=_REJECT_CODES[decision.reason],
        reason=decision.reason.value,
        detail=f"admission rejected VM {decision.vm!r}",
        extra=extra,
    )


def encode_request(request: Request) -> bytes:
    """One request as a JSON line (the client's wire form)."""
    doc = {
        "v": request.v,
        "id": request.id,
        "op": request.op,
        "params": request.params,
    }
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode()


def decode_request(line: Union[bytes, str]) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on junk.

    Version and op validity are *not* checked here — the server answers
    those with typed :attr:`ErrorCode.UNSUPPORTED_VERSION` /
    :attr:`ErrorCode.UNKNOWN_OP` responses (see :func:`validate_request`)
    so the client learns what went wrong instead of losing the frame.
    """
    doc = _parse_object(line, "request")
    op = doc.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request needs a non-empty string 'op'")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be an object")
    return Request(
        op=op,
        params=params,
        id=_int_field(doc, "id", 0),
        v=_int_field(doc, "v", PROTOCOL_VERSION),
    )


def validate_request(request: Request) -> Optional[ServeFault]:
    """Version / op checks the server runs before dispatch."""
    if request.v != PROTOCOL_VERSION:
        return ServeFault(
            code=ErrorCode.UNSUPPORTED_VERSION,
            reason=f"v{request.v}",
            detail=f"server speaks protocol v{PROTOCOL_VERSION}",
            extra={"supported": PROTOCOL_VERSION},
        )
    if request.op not in OPS:
        return ServeFault(
            code=ErrorCode.UNKNOWN_OP,
            reason=request.op,
            detail=f"known ops: {', '.join(OPS)}",
        )
    return None


def encode_response(response: Response) -> bytes:
    """One response as a JSON line (the server's wire form)."""
    doc: Dict[str, Any] = {"v": response.v, "id": response.id, "ok": response.ok}
    if response.ok:
        doc["result"] = response.result
    else:
        assert response.error is not None
        doc["error"] = response.error.to_payload()
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode()


def decode_response(line: Union[bytes, str]) -> Response:
    """Parse one response line; raises :class:`ProtocolError` on junk."""
    doc = _parse_object(line, "response")
    ok = doc.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError("response needs a boolean 'ok'")
    rid = _int_field(doc, "id", 0)
    version = _int_field(doc, "v", PROTOCOL_VERSION)
    if ok:
        result = doc.get("result", {})
        if not isinstance(result, dict):
            raise ProtocolError("response 'result' must be an object")
        return Response(id=rid, ok=True, result=result, v=version)
    error = doc.get("error")
    if not isinstance(error, dict) or "code" not in error:
        raise ProtocolError("failed response needs an 'error' object with 'code'")
    try:
        code = ErrorCode(error["code"])
    except ValueError as exc:
        raise ProtocolError(f"unknown error code {error['code']!r}") from exc
    extra = {
        k: v for k, v in error.items() if k not in ("code", "reason", "detail")
    }
    fault = ServeFault(
        code=code,
        reason=str(error.get("reason", "")),
        detail=str(error.get("detail", "")),
        extra=extra,
    )
    return Response(id=rid, ok=False, error=fault, v=version)


def request_id_of(line: Union[bytes, str]) -> int:
    """Best-effort id extraction from a possibly-malformed line, so a
    ``bad-request`` response can still be matched by the client."""
    try:
        doc = _parse_object(line, "request")
        return _int_field(doc, "id", 0)
    except ProtocolError:
        return 0


def _parse_object(line: Union[bytes, str], what: str) -> Dict[str, Any]:
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"{what} line is not UTF-8: {exc}") from exc
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"{what} line is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(f"{what} must be a JSON object")
    return doc


def _int_field(doc: Dict[str, Any], name: str, default: int) -> int:
    value = doc.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {name!r} must be an integer")
    return value


__all__ = [
    "ErrorCode",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "ServeFault",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_response",
    "fault_from_decision",
    "ok_response",
    "request_id_of",
    "validate_request",
]
