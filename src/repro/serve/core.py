"""The async request/response core behind ``repro serve``.

Two layers, deliberately split so the determinism contract is
structural rather than hoped-for:

- :class:`FleetStateMachine` — the **synchronous** request path: a live
  :class:`~repro.fleet.host.Fleet` plus the bounded
  :class:`~repro.fleet.admission.AdmissionController`, driven by four
  primitive operations (``place``, ``drain``, ``evict``, ``attack``)
  that are each appended to an ordered **request log** as they are
  applied.  :func:`replay_request_log` re-runs a log through a fresh
  state machine; :meth:`FleetStateMachine.state_digest` hashes the
  resulting fleet state, so *async run digest == replay digest* is the
  bit-identity check the load generator and CI enforce.

- :class:`ServeCore` — the **asyncio** service loop: routes protocol
  requests onto the state machine.  ``place_vm`` submits into the
  bounded admission queue immediately (a full queue is a typed 429-style
  ``BUSY`` response, never a block) and parks the caller on a future;
  one drain pass per event-loop tick batch-processes whatever
  accumulated, so concurrent clients genuinely share drains and
  backpressure is real.  Every request is accounted into
  ``repro.obs`` (``serve.requests`` / ``serve.rejections`` counters and
  a wall-clock latency histogram) via
  :class:`~repro.obs.events.ServeRequestEvent`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import FleetError, ReproError, ServeError
from repro.fleet.admission import AdmissionController, AdmissionDecision
from repro.fleet.host import Fleet
from repro.fleet.report import _decision_dict
from repro.fleet.scheduler import SCHEDULERS, make_scheduler
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger
from repro.serve.protocol import (
    ErrorCode,
    Request,
    Response,
    ServeFault,
    error_response,
    fault_from_decision,
    ok_response,
    validate_request,
)
from repro.units import MiB

_log = get_logger("serve.core")


@dataclass(frozen=True)
class ServiceConfig:
    """One serve daemon, fully described (mirrors ``CampaignConfig``)."""

    hosts: int = 2
    policy: str = "best-fit"
    backend: str = "scalar"
    seed: int = 0
    sockets: int = 1
    queue_depth: int = 32
    max_retries: int = 2
    mitigation: str = "siloz"
    #: Default fuzzer pattern budget for ``run_attack`` requests.
    attack_budget: int = 4

    def __post_init__(self) -> None:
        if self.hosts <= 0:
            raise ServeError("a service needs at least one host")
        if self.policy not in SCHEDULERS:
            raise ServeError(
                f"unknown placement policy {self.policy!r}; "
                f"know {sorted(SCHEDULERS)}"
            )
        if self.attack_budget <= 0:
            raise ServeError("attack_budget must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (the ``info`` op ships this to clients)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ServiceConfig":
        """Rebuild a config from an ``info`` payload, ignoring unknown
        keys so newer servers stay readable by older clients."""
        fields = {
            "hosts", "policy", "backend", "seed", "sockets",
            "queue_depth", "max_retries", "mitigation", "attack_budget",
        }
        return cls(**{k: v for k, v in doc.items() if k in fields})


class FleetStateMachine:
    """The synchronous fleet request path, with an ordered request log.

    Every mutating operation appends its wire-form entry to
    :attr:`log` *before* touching the fleet, so the log is a complete,
    replayable linearization of everything that happened.  The async
    service applies operations through exactly these methods (asyncio
    callbacks are atomic between awaits), and
    :func:`replay_request_log` applies the same methods in the same
    order — which is why the two digests can be compared bit for bit.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.fleet = Fleet.boot(
            config.hosts,
            seed=config.seed,
            sockets=config.sockets,
            backend=config.backend,
            mitigation=config.mitigation,
        )
        self.admission = AdmissionController(
            self.fleet,
            make_scheduler(config.policy),
            queue_depth=config.queue_depth,
            max_retries=config.max_retries,
        )
        #: VM name -> placing host id, for evict routing.
        self.owner: Dict[str, int] = {}
        #: Attack outcomes in execution order (part of the digest).
        self.attacks: List[Dict[str, Any]] = []
        #: Ordered, replayable log of every applied operation.
        self.log: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Primitive operations (the service's only mutation paths)
    # ------------------------------------------------------------------

    def apply_place(self, name: str, memory_bytes: int, socket: int = 0) -> bool:
        """Submit one placement request into the bounded admission
        queue; ``False`` means the queue was full (typed QUEUE_FULL
        decision recorded — the caller turns it into a BUSY response)."""
        self.log.append(
            {
                "op": "place",
                "name": name,
                "memory_bytes": memory_bytes,
                "socket": socket,
            }
        )
        return self.admission.submit(
            VmSpec(name=name, memory_bytes=memory_bytes, socket=socket)
        )

    def apply_drain(self) -> List[AdmissionDecision]:
        """Drain the admission queue to empty; records placements."""
        self.log.append({"op": "drain"})
        decisions = self.admission.drain()
        for decision in decisions:
            if decision.admitted:
                self.owner[decision.vm] = decision.host_id
        return decisions

    def apply_evict(self, name: str) -> int:
        """Tear one placed VM down (§5.3 privileged path) and release
        its subarray-group reservation; returns the host it left."""
        host_id = self.owner.pop(name, None)
        if host_id is None:
            raise ServeError(f"no placed VM named {name!r}")
        self.log.append({"op": "evict", "name": name})
        self.fleet.host(host_id).remove_vm(name)
        return host_id

    def apply_attack(self, host_id: int, budget: int) -> Dict[str, Any]:
        """Run a containment campaign from *host_id*'s first tenant
        (idle hosts report so); the outcome joins the state digest."""
        from repro.attack import attack_from_vm

        host = self.fleet.host(host_id)  # raises FleetError if unknown
        self.log.append({"op": "attack", "host": host_id, "budget": budget})
        vms = list(host.hv.vms.values())
        if not vms:
            result: Dict[str, Any] = {
                "host": host_id, "idle": True, "flips": 0, "contained": True,
            }
        else:
            outcome = attack_from_vm(
                host.hv, vms[0],
                seed=self.config.seed, pattern_budget=budget,
            )
            result = {
                "host": host_id,
                "idle": False,
                "attacker": vms[0].name,
                "flips": len(outcome.flips_inside) + len(outcome.flips_escaped),
                "escaped": len(outcome.flips_escaped),
                "victim_flips": sum(outcome.victim_flips.values()),
                "contained": outcome.contained,
            }
        self.attacks.append(result)
        return result

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------

    def state_snapshot(self) -> Dict[str, Any]:
        """Canonical plain-data fleet state (what the digest hashes).

        The backend is scrubbed like ``FleetReport.digest`` scrubs it:
        the differential engine guarantees bit-identical simulation
        results, so the digest may be compared across backends too.
        """
        hosts = []
        for host in self.fleet.hosts:
            cap = host.capacity()
            hosts.append(
                {
                    "host": host.host_id,
                    "vms": [
                        [s.name, s.memory_bytes, s.socket]
                        for s in host.vm_specs.values()
                    ],
                    "free_guest_nodes": list(cap.free_guest_node_ids),
                    "offlined_bytes": cap.offlined_bytes,
                    "clock": host.hv.machine.dram.clock,
                }
            )
        config = self.config.to_dict()
        config.pop("backend", None)
        return {
            "config": config,
            "hosts": hosts,
            "decisions": [_decision_dict(d) for d in self.admission.decisions],
            "attacks": self.attacks,
            "requests_applied": len(self.log),
        }

    def state_digest(self) -> str:
        """sha256 over the canonical state — the replay-equality check."""
        blob = json.dumps(
            self.state_snapshot(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()


def replay_request_log(
    config: ServiceConfig, log: List[Dict[str, Any]]
) -> FleetStateMachine:
    """Re-run a request log through the synchronous path, in order.

    This is the verification half of the serve contract: the load
    generator fetches the daemon's log and digest, replays the log here,
    and asserts :meth:`FleetStateMachine.state_digest` matches bit for
    bit — proving the async layer applied exactly the operations it
    says it did, in a serializable order.
    """
    sm = FleetStateMachine(config)
    for entry in log:
        op = entry.get("op")
        if op == "place":
            sm.apply_place(
                str(entry["name"]),
                int(entry["memory_bytes"]),
                int(entry.get("socket", 0)),
            )
        elif op == "drain":
            sm.apply_drain()
        elif op == "evict":
            sm.apply_evict(str(entry["name"]))
        elif op == "attack":
            sm.apply_attack(int(entry["host"]), int(entry["budget"]))
        else:
            raise ServeError(f"unknown request-log op {op!r}")
    return sm


class ServeCore:
    """Asyncio service loop: protocol requests onto the state machine.

    All fleet mutation happens synchronously inside event-loop
    callbacks (atomic between awaits), so the request log is a true
    linearization.  Draining is batched: submits schedule a single
    ``call_soon`` drain per tick, so a burst of concurrent ``place_vm``
    requests shares one drain pass — and can genuinely overflow the
    bounded queue into BUSY responses, which is the backpressure story
    the load generator measures.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.sm = FleetStateMachine(config)
        self._pending: Dict[str, "asyncio.Future[AdmissionDecision]"] = {}
        self._drain_scheduled = False
        #: Set by the ``shutdown`` op / SIGTERM: mutations are refused.
        self.draining = False
        #: Local request accounting (always on, independent of obs).
        self.counters: Dict[str, int] = {}
        #: Hook the server installs so the ``shutdown`` op stops it.
        self.shutdown_callback: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """Route one request; always returns a typed response.

        Library errors (:class:`~repro.errors.ReproError`) and anything
        unexpected become :attr:`ErrorCode.INTERNAL` faults carrying
        only the exception type and message — tracebacks stay in the
        server log, never on the socket.
        """
        started = time.perf_counter_ns()
        fault = validate_request(request)
        if fault is not None:
            response = error_response(request.id, fault)
        else:
            try:
                response = await self._dispatch(request)
            except ReproError as exc:
                response = error_response(
                    request.id,
                    ServeFault(
                        code=ErrorCode.INTERNAL,
                        reason=type(exc).__name__,
                        detail=str(exc),
                    ),
                )
            except Exception as exc:  # noqa: BLE001 — daemon must not die
                _log.exception("serve: internal error handling %s", request.op)
                response = error_response(
                    request.id,
                    ServeFault(
                        code=ErrorCode.INTERNAL,
                        reason=type(exc).__name__,
                        detail=str(exc),
                    ),
                )
        self._account(request, response, time.perf_counter_ns() - started)
        return response

    async def _dispatch(self, request: Request) -> Response:
        if request.op == "place_vm":
            return await self._op_place(request)
        if request.op == "evict_vm":
            return self._op_evict(request)
        if request.op == "run_attack":
            return self._op_attack(request)
        if request.op == "health":
            return self._op_health(request)
        if request.op == "capacity":
            return self._op_capacity(request)
        if request.op == "metrics":
            return self._op_metrics(request)
        if request.op == "info":
            return self._op_info(request)
        if request.op == "log":
            return ok_response(
                request.id, log=list(self.sm.log), digest=self.sm.state_digest()
            )
        if request.op == "digest":
            return ok_response(
                request.id,
                digest=self.sm.state_digest(),
                requests_applied=len(self.sm.log),
            )
        if request.op == "shutdown":
            return self._op_shutdown(request)
        raise ServeError(f"unroutable op {request.op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Mutating ops
    # ------------------------------------------------------------------

    async def _op_place(self, request: Request) -> Response:
        """Admit one VM: bounded-queue submit, batched drain, typed
        rejection.  BUSY (queue full) responds immediately; everything
        else parks on a future the next drain pass resolves."""
        if self.draining:
            return error_response(request.id, _draining_fault())
        parsed = self._place_params(request)
        if isinstance(parsed, ServeFault):
            return error_response(request.id, parsed)
        name, memory_bytes, socket = parsed
        if name in self._pending or name in self.sm.owner:
            return error_response(
                request.id,
                ServeFault(
                    code=ErrorCode.INVALID,
                    reason="duplicate-name",
                    detail=f"VM {name!r} is already placed or pending",
                ),
            )
        if not self.sm.apply_place(name, memory_bytes, socket):
            return error_response(
                request.id,
                ServeFault(
                    code=ErrorCode.BUSY,
                    reason="queue-full",
                    detail="admission queue is full; back off and resubmit",
                    extra={
                        "queued": self.sm.admission.queued,
                        "queue_depth": self.config.queue_depth,
                    },
                ),
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[AdmissionDecision]" = loop.create_future()
        self._pending[name] = future
        self._schedule_drain()
        decision = await future
        if decision.admitted:
            return ok_response(
                request.id, host=decision.host_id, attempts=decision.attempts
            )
        return error_response(request.id, fault_from_decision(decision))

    def _place_params(
        self, request: Request
    ) -> "Tuple[str, int, int] | ServeFault":
        params = request.params
        name = params.get("name")
        if not isinstance(name, str) or not name:
            return _bad_params("'name' must be a non-empty string")
        memory = params.get("memory_bytes")
        if memory is None and "memory_mib" in params:
            mib = params["memory_mib"]
            if isinstance(mib, bool) or not isinstance(mib, int) or mib <= 0:
                return _bad_params("'memory_mib' must be a positive integer")
            memory = mib * MiB
        if isinstance(memory, bool) or not isinstance(memory, int) or memory <= 0:
            return _bad_params(
                "'memory_bytes' (or 'memory_mib') must be a positive integer"
            )
        socket = params.get("socket", 0)
        if isinstance(socket, bool) or not isinstance(socket, int) or socket < 0:
            return _bad_params("'socket' must be a non-negative integer")
        return name, memory, socket

    def _schedule_drain(self) -> None:
        if not self._drain_scheduled:
            self._drain_scheduled = True
            asyncio.get_running_loop().call_soon(self._drain_now)

    def _drain_now(self) -> None:
        """One batched drain pass; resolves every parked placement."""
        self._drain_scheduled = False
        if not self.sm.admission.queued:
            return
        for decision in self.sm.apply_drain():
            future = self._pending.pop(decision.vm, None)
            if future is not None and not future.done():
                future.set_result(decision)

    def _op_evict(self, request: Request) -> Response:
        if self.draining:
            return error_response(request.id, _draining_fault())
        name = request.params.get("name")
        if not isinstance(name, str) or not name:
            return error_response(
                request.id, _bad_params("'name' must be a non-empty string")
            )
        if name in self._pending:
            self._drain_now()  # settle the queue so the placement lands
        if name not in self.sm.owner:
            return error_response(
                request.id,
                ServeFault(
                    code=ErrorCode.NOT_FOUND,
                    reason="no-such-vm",
                    detail=f"no placed VM named {name!r}",
                ),
            )
        host_id = self.sm.apply_evict(name)
        return ok_response(request.id, host=host_id)

    def _op_attack(self, request: Request) -> Response:
        if self.draining:
            return error_response(request.id, _draining_fault())
        host_id = request.params.get("host", 0)
        if isinstance(host_id, bool) or not isinstance(host_id, int):
            return error_response(
                request.id, _bad_params("'host' must be an integer")
            )
        budget = request.params.get("budget", self.config.attack_budget)
        if isinstance(budget, bool) or not isinstance(budget, int) or budget <= 0:
            return error_response(
                request.id, _bad_params("'budget' must be a positive integer")
            )
        self._drain_now()  # settle pending placements before hammering
        try:
            result = self.sm.apply_attack(host_id, budget)
        except FleetError as exc:
            return error_response(
                request.id,
                ServeFault(
                    code=ErrorCode.NOT_FOUND,
                    reason="no-such-host",
                    detail=str(exc),
                ),
            )
        return ok_response(request.id, **result)

    def _op_shutdown(self, request: Request) -> Response:
        """Begin draining: settle the queue, refuse new mutations, and
        (via the server's callback) stop accepting connections."""
        self.draining = True
        self._drain_now()
        if self.shutdown_callback is not None:
            asyncio.get_running_loop().call_soon(self.shutdown_callback)
        return ok_response(
            request.id,
            digest=self.sm.state_digest(),
            requests_applied=len(self.sm.log),
        )

    # ------------------------------------------------------------------
    # Read-only ops
    # ------------------------------------------------------------------

    def _op_health(self, request: Request) -> Response:
        hosts = [
            {
                "host": h.host_id,
                "degraded": h.degraded,
                "vms": len(h.vm_specs),
                "clock": h.hv.machine.dram.clock,
            }
            for h in self.sm.fleet.hosts
        ]
        return ok_response(
            request.id,
            hosts=hosts,
            queued=self.sm.admission.queued,
            pending=len(self._pending),
            draining=self.draining,
        )

    def _op_capacity(self, request: Request) -> Response:
        per_host = {
            str(h.host_id): h.capacity().to_dict() for h in self.sm.fleet.hosts
        }
        return ok_response(
            request.id,
            hosts=per_host,
            total_free_guest_bytes=self.sm.fleet.total_guest_capacity(),
            placed_vms=len(self.sm.owner),
        )

    def _op_metrics(self, request: Request) -> Response:
        return ok_response(
            request.id,
            serve=dict(sorted(self.counters.items())),
            obs_enabled=obs.ENABLED,
            obs=obs.metrics_snapshot() if obs.ENABLED else {},
        )

    def _op_info(self, request: Request) -> Response:
        from repro.serve.protocol import OPS, PROTOCOL_VERSION

        return ok_response(
            request.id,
            protocol=PROTOCOL_VERSION,
            ops=list(OPS),
            config=self.config.to_dict(),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(
        self, request: Request, response: Response, wall_ns: int
    ) -> None:
        outcome = "ok" if response.ok else _fault_code(response)
        reason = "" if response.ok or response.error is None else (
            response.error.reason
        )
        self._bump("requests")
        self._bump(f"ops.{request.op}")
        if outcome != "ok":
            self._bump(f"errors.{outcome}")
        if outcome in (ErrorCode.BUSY.value, ErrorCode.CAPACITY.value):
            self._bump("rejections")
        if obs.ENABLED:
            obs.emit(
                obs.ServeRequestEvent(
                    op=request.op,
                    outcome=outcome,
                    reason=reason,
                    wall_ns=wall_ns,
                )
            )

    def _bump(self, name: str) -> None:
        self.counters[name] = self.counters.get(name, 0) + 1

    def summary_lines(self) -> List[str]:
        """The final metrics summary a draining daemon prints."""
        total = self.counters.get("requests", 0)
        rejected = self.counters.get("rejections", 0)
        ops = ", ".join(
            f"{k.split('.', 1)[1]}={v}"
            for k, v in sorted(self.counters.items())
            if k.startswith("ops.")
        )
        lines = [
            f"serve: final summary — {total} request(s), "
            f"{rejected} rejection(s), {len(self.sm.owner)} VM(s) placed",
        ]
        if ops:
            lines.append(f"serve: ops: {ops}")
        lines.append(f"serve: final state digest {self.sm.state_digest()}")
        return lines


def _bad_params(detail: str) -> ServeFault:
    return ServeFault(code=ErrorCode.INVALID, reason="bad-params", detail=detail)


def _draining_fault() -> ServeFault:
    return ServeFault(
        code=ErrorCode.SHUTTING_DOWN,
        reason="draining",
        detail="daemon is draining; no new mutations accepted",
    )


def _fault_code(response: Response) -> str:
    assert response.error is not None
    return response.error.code.value


__all__ = [
    "FleetStateMachine",
    "ServeCore",
    "ServiceConfig",
    "replay_request_log",
]
