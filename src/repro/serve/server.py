"""The ``repro serve`` daemon: a TCP / UNIX-socket JSON-line server.

One asyncio server wraps a :class:`~repro.serve.core.ServeCore`.  Each
connection reads newline-delimited requests and may pipeline them: every
request is handled in its own task and responses are written as they
complete, matched by ``id``.  Malformed lines get a typed
``bad-request`` response instead of dropping the connection.

Graceful shutdown (SIGTERM / SIGINT / the ``shutdown`` op) follows the
drain contract the load tests assert: stop accepting new connections,
let every in-flight request finish and flush its response, close the
sockets, print a final metrics summary, exit 0.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from pathlib import Path
from typing import Optional, Set

from repro.errors import ServeError
from repro.log import get_logger
from repro.serve.core import ServeCore, ServiceConfig
from repro.serve.protocol import (
    ErrorCode,
    ProtocolError,
    ServeFault,
    decode_request,
    encode_response,
    error_response,
    request_id_of,
)

_log = get_logger("serve.server")

#: Longest time wait_closed() lets in-flight requests drain before
#: cancelling them (generous: a single attack op is well under this).
DRAIN_TIMEOUT_S = 30.0

#: StreamReader line limit for incoming requests (requests are small;
#: the limit just needs to beat asyncio's 64 KiB default comfortably).
REQUEST_LINE_LIMIT = 1024 * 1024


class _Conn:
    """Per-connection state: a write lock (responses must not interleave
    mid-line) and the set of in-flight request tasks."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight: Set["asyncio.Task[None]"] = set()
        #: Set when the server wants this connection gone once idle.
        self.closing = False

    async def send(self, payload: bytes) -> None:
        """Write one response line under the lock; ignores a peer that
        vanished mid-write (the request itself still completed)."""
        async with self.write_lock:
            if self.writer.is_closing():
                return
            self.writer.write(payload)
            try:
                await self.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def close(self) -> None:
        """Close the transport (EOF unblocks a reader mid-``readline``)."""
        if not self.writer.is_closing():
            self.writer.close()


class ServeServer:
    """Bind a :class:`ServeCore` to a TCP port or UNIX socket."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ):
        self.core = ServeCore(config)
        self.core.shutdown_callback = self.request_shutdown
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[_Conn] = set()
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> str:
        """Bind and start accepting; returns the printable address."""
        if self.socket_path is not None:
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=str(path), limit=REQUEST_LINE_LIMIT
            )
            return f"unix:{path}"
        self._server = await asyncio.start_server(
            self._on_connect,
            host=self.host,
            port=self.port,
            limit=REQUEST_LINE_LIMIT,
        )
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        self.port = bound_port
        return f"tcp:{bound_host}:{bound_port}"

    def request_shutdown(self) -> None:
        """Begin the drain: stop accepting, nudge idle connections.

        Safe to call repeatedly and from signal handlers.  Busy
        connections keep their sockets until their in-flight requests
        have responded (their handler closes them, see ``_serve_conn``).
        Requests already received — including ones whose handler task
        has not started yet — still complete normally: the drain cuts
        off *new* work by closing the listener and the read loops, not
        by refusing work in flight (``core.draining`` stays False here;
        only the explicit ``shutdown`` op sets it).
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._server is not None:
            self._server.close()
        for conn in list(self._conns):
            conn.closing = True
            if not conn.inflight:
                conn.close()

    async def wait_closed(self) -> None:
        """Block until the drain completes: server closed, every
        in-flight request finished (or timed out), sockets gone."""
        await self._stopping.wait()
        if self._server is not None:
            await self._server.wait_closed()
        pending = [t for c in list(self._conns) for t in c.inflight]
        if pending:
            done, late = await asyncio.wait(
                pending, timeout=DRAIN_TIMEOUT_S
            )
            for task in late:
                task.cancel()
            if late:
                _log.warning(
                    "serve: cancelled %d request(s) after %.0fs drain timeout",
                    len(late),
                    DRAIN_TIMEOUT_S,
                )
        for conn in list(self._conns):
            conn.close()
        if self.socket_path is not None:
            Path(self.socket_path).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(reader, writer)
        self._conns.add(conn)
        try:
            await self._serve_conn(conn)
        finally:
            self._conns.discard(conn)
            # No ``await writer.wait_closed()`` here: every response was
            # drained in send(), close() flushes the rest, and awaiting
            # would race asyncio.run's task-cancellation at exit.
            conn.close()

    async def _serve_conn(self, conn: _Conn) -> None:
        """Read request lines until EOF; each line becomes a task so
        clients can pipeline.  When the server is draining, the final
        in-flight response closes the connection."""
        while True:
            try:
                line = await conn.reader.readline()
            except (ConnectionResetError, BrokenPipeError):
                break
            except ValueError:
                # Oversized request line: nothing sane to answer (we
                # cannot even find its id) — drop the connection.
                break
            if not line:
                break
            stripped = line.strip()
            if not stripped:
                continue
            task = asyncio.get_running_loop().create_task(
                self._handle_line(conn, stripped)
            )
            conn.inflight.add(task)
            task.add_done_callback(conn.inflight.discard)
            if conn.closing:
                break
        if conn.inflight:
            await asyncio.gather(*conn.inflight, return_exceptions=True)

    async def _handle_line(self, conn: _Conn, line: bytes) -> None:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            response = error_response(
                request_id_of(line),
                ServeFault(
                    code=ErrorCode.BAD_REQUEST,
                    reason="malformed",
                    detail=str(exc),
                ),
            )
        else:
            response = await self.core.handle(request)
        await conn.send(encode_response(response))
        if conn.closing and len(conn.inflight) <= 1:
            conn.close()


async def run_server(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
    ready_line: bool = True,
    install_signals: bool = True,
) -> int:
    """Run one daemon to completion; returns the process exit code (0).

    Prints ``serve: listening on <addr>`` once bound (the CLI and CI
    smoke jobs wait on this line), installs SIGTERM/SIGINT handlers
    that trigger the graceful drain, and prints the final metrics
    summary after the drain completes.
    """
    server = ServeServer(
        config, host=host, port=port, socket_path=socket_path
    )
    addr = await server.start()
    if ready_line:
        print(f"serve: listening on {addr}", flush=True)
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.wait_closed()
    for line in server.core.summary_lines():
        print(line, flush=True)
    return 0


def main_serve(
    config: ServiceConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
) -> int:
    """Blocking entry point for the ``repro serve`` subcommand."""
    if port == 0 and socket_path is None:
        raise ServeError("repro serve needs --port or --socket")
    try:
        return asyncio.run(
            run_server(
                config, host=host, port=port, socket_path=socket_path
            )
        )
    except KeyboardInterrupt:  # pragma: no cover — signal handler races
        print("serve: interrupted", file=sys.stderr)
        return 0


__all__ = ["DRAIN_TIMEOUT_S", "ServeServer", "main_serve", "run_server"]
