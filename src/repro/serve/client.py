"""Client library for the ``repro serve`` daemon.

Two flavours over the same JSON-line protocol:

- :class:`ServeClient` — synchronous, blocking-socket client for
  scripts, tests, and the CLI.  One request at a time; responses are
  matched by id (and must match, since requests are serial).
- :class:`AsyncServeClient` — asyncio client used by the load
  generator; supports pipelining many in-flight requests over one
  connection, matching responses by id.

Both raise :class:`~repro.serve.protocol.ProtocolError` on junk frames
and surface typed failures as :class:`ServeFailure` (carrying the
:class:`~repro.serve.protocol.ServeFault`) rather than pretending the
call succeeded.
"""

from __future__ import annotations

import asyncio
import socket as socketlib
from typing import Any, Dict, Optional

from repro.errors import ServeError
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    ServeFault,
    decode_response,
    encode_request,
)

#: StreamReader line limit for responses.  The ``log`` op returns the
#: daemon's entire request log on one line, which grows far past
#: asyncio's 64 KiB default on sustained runs — a short limit kills the
#: reader with ``LimitOverrunError`` mid-run.
RESPONSE_LINE_LIMIT = 64 * 1024 * 1024


class ServeFailure(ServeError):
    """A request completed with a typed error response."""

    def __init__(self, fault: ServeFault):
        super().__init__(
            f"{fault.code.value}: {fault.reason or fault.detail or 'failed'}"
        )
        self.fault = fault


class ServeClient:
    """Synchronous client: connect, request/response, close."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        timeout_s: float = 30.0,
    ):
        if socket_path is not None:
            self._sock = socketlib.socket(
                socketlib.AF_UNIX, socketlib.SOCK_STREAM
            )
            self._sock.settimeout(timeout_s)
            self._sock.connect(socket_path)
        else:
            if port == 0:
                raise ServeError("ServeClient needs a port or a socket path")
            self._sock = socketlib.create_connection(
                (host, port), timeout=timeout_s
            )
        self._file = self._sock.makefile("rb")
        self._next_id = 1

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Send one request; returns the result dict or raises
        :class:`ServeFailure` with the typed fault."""
        response = self.request_raw(op, **params)
        if not response.ok:
            assert response.error is not None
            raise ServeFailure(response.error)
        return response.result

    def request_raw(self, op: str, **params: Any) -> Response:
        """Send one request and return the full typed response,
        success or failure, without raising on typed faults."""
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(
            encode_request(Request(op=op, params=params, id=request_id))
        )
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection mid-request")
        response = decode_response(line)
        if response.id != request_id:
            raise ProtocolError(
                f"response id {response.id} != request id {request_id}"
            )
        return response

    # Convenience wrappers (thin; the op names are the API).

    def place_vm(
        self, name: str, memory_bytes: int, socket: int = 0
    ) -> Dict[str, Any]:
        """Admit one VM; returns ``{"host": ..., "attempts": ...}``."""
        return self.request(
            "place_vm", name=name, memory_bytes=memory_bytes, socket=socket
        )

    def evict_vm(self, name: str) -> Dict[str, Any]:
        """Tear one placed VM down; returns ``{"host": ...}``."""
        return self.request("evict_vm", name=name)

    def run_attack(
        self, host: int = 0, budget: Optional[int] = None
    ) -> Dict[str, Any]:
        """Run one containment campaign from *host*'s first tenant."""
        params: Dict[str, Any] = {"host": host}
        if budget is not None:
            params["budget"] = budget
        return self.request("run_attack", **params)

    def health(self) -> Dict[str, Any]:
        """Liveness + per-host degradation snapshot."""
        return self.request("health")

    def capacity(self) -> Dict[str, Any]:
        """Per-host free subarray-group capacity snapshots."""
        return self.request("capacity")

    def metrics(self) -> Dict[str, Any]:
        """Service counters (and obs metrics when enabled)."""
        return self.request("metrics")

    def info(self) -> Dict[str, Any]:
        """Protocol version, op list, and the daemon's ServiceConfig."""
        return self.request("info")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit; returns its final digest."""
        return self.request("shutdown")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class AsyncServeClient:
    """Asyncio client with pipelining: many in-flight requests on one
    connection, responses matched to futures by request id."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[Response]"] = {}
        self._next_id = 1
        self._reader_task: Optional["asyncio.Task[None]"] = None

    async def connect(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> "AsyncServeClient":
        """Open the connection and start the response-matching loop."""
        if socket_path is not None:
            self._reader, self._writer = await asyncio.open_unix_connection(
                socket_path, limit=RESPONSE_LINE_LIMIT
            )
        else:
            if port == 0:
                raise ServeError(
                    "AsyncServeClient needs a port or a socket path"
                )
            self._reader, self._writer = await asyncio.open_connection(
                host, port, limit=RESPONSE_LINE_LIMIT
            )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def _read_loop(self) -> None:
        """Match every incoming response line to its pending future.

        MUST fail every pending future on the way out, whatever the
        exit path — a silently dead reader would leave callers awaiting
        forever (an idle-loop deadlock, not an error).
        """
        assert self._reader is not None
        error: Optional[BaseException] = None
        try:
            while True:
                try:
                    line = await self._reader.readline()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                try:
                    response = decode_response(line)
                except ProtocolError:
                    continue
                future = self._pending.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except BaseException as exc:  # noqa: BLE001 — refanned to callers
            error = exc
        failure = (
            ServeError(f"client reader failed: {error!r}")
            if error is not None
            else ServeError("server closed the connection")
        )
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failure)
        self._pending.clear()

    async def request_raw(self, op: str, **params: Any) -> Response:
        """Send one request; awaits and returns its typed response."""
        if self._writer is None or self._writer.is_closing():
            raise ServeError("client is not connected")
        if self._reader_task is not None and self._reader_task.done():
            # The response loop is gone (EOF / reader failure): a new
            # future would never resolve — fail fast instead.
            raise ServeError("server closed the connection")
        request_id = self._next_id
        self._next_id += 1
        future: "asyncio.Future[Response]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        self._writer.write(
            encode_request(Request(op=op, params=params, id=request_id))
        )
        await self._writer.drain()
        return await future

    async def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Like :meth:`request_raw` but raises :class:`ServeFailure`
        on typed error responses and returns just the result dict."""
        response = await self.request_raw(op, **params)
        if not response.ok:
            assert response.error is not None
            raise ServeFailure(response.error)
        return response.result

    async def close(self) -> None:
        """Close the connection and stop the response loop."""
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if self._reader_task is not None:
            try:
                await asyncio.wait_for(self._reader_task, timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover
                self._reader_task.cancel()


__all__ = ["AsyncServeClient", "ServeClient", "ServeFailure"]
