"""``repro loadgen``: an open-loop concurrent load generator for the
serve daemon, with replay-digest verification.

The generator opens N pipelined connections, each driving a bounded
window of in-flight requests drawn from a seeded mix (place / evict /
attack / reads).  Request latency is wall-clock from write to matched
response; the report carries sustained req/s, p50/p99 latency, and the
rejection rate (BUSY + CAPACITY responses over total).

After the run it fetches the daemon's ordered request log and state
digest, replays the log through the synchronous
:class:`~repro.serve.core.FleetStateMachine`, and asserts the two
digests are **bit-identical** — the proof that the async service is a
faithful linearization of the one fleet model everything else in this
repo simulates.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.serve.client import AsyncServeClient
from repro.serve.core import ServiceConfig, replay_request_log
from repro.serve.protocol import ErrorCode, Response
from repro.units import MiB

#: Outcomes counted as rejections (the backpressure the bench measures).
_REJECT_CODES = (ErrorCode.BUSY.value, ErrorCode.CAPACITY.value)


@dataclass(frozen=True)
class LoadMix:
    """Relative weights of each request kind in the generated stream."""

    place: int = 55
    evict: int = 25
    attack: int = 2
    health: int = 8
    capacity: int = 5
    metrics: int = 5

    @classmethod
    def parse(cls, text: str) -> "LoadMix":
        """Parse ``place=55,evict=25,attack=2,...`` (missing keys keep
        their defaults; unknown keys are a :class:`ServeError`)."""
        if not text:
            return cls()
        weights: Dict[str, int] = {}
        for part in text.split(","):
            if "=" not in part:
                raise ServeError(f"bad mix component {part!r} (want k=v)")
            key, _, value = part.partition("=")
            key = key.strip()
            if key not in cls.__dataclass_fields__:
                raise ServeError(
                    f"unknown mix key {key!r}; "
                    f"know {sorted(cls.__dataclass_fields__)}"
                )
            try:
                weights[key] = int(value)
            except ValueError as exc:
                raise ServeError(f"bad mix weight {value!r}") from exc
        return cls(**weights)

    def table(self) -> List[Tuple[str, int]]:
        """(kind, weight) pairs with zero-weight kinds dropped."""
        pairs = [
            ("place", self.place),
            ("evict", self.evict),
            ("attack", self.attack),
            ("health", self.health),
            ("capacity", self.capacity),
            ("metrics", self.metrics),
        ]
        out = [(k, w) for k, w in pairs if w > 0]
        if not out:
            raise ServeError("load mix has no positive weights")
        return out


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run, fully described."""

    requests: int = 10_000
    connections: int = 8
    window: int = 32
    seed: int = 0
    mix: LoadMix = field(default_factory=LoadMix)
    #: VM sizes drawn uniformly per place request (MiB).
    sizes_mib: Tuple[int, ...] = (1, 2, 2, 3, 4)
    #: Fuzzer budget for attack requests (kept small: attacks are the
    #: heavyweight op and the mix keeps them rare).
    attack_budget: int = 2
    verify_replay: bool = True

    def __post_init__(self) -> None:
        if self.requests <= 0:
            raise ServeError("loadgen needs a positive request count")
        if self.connections <= 0 or self.window <= 0:
            raise ServeError("connections and window must be positive")


@dataclass
class LoadgenReport:
    """What one run measured (the ``BENCH_serve.json`` payload)."""

    requests: int
    duration_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    ok: int
    rejected: int
    errors: int
    rejection_rate: float
    outcomes: Dict[str, int]
    server_digest: str = ""
    replay_digest: str = ""
    replay_verified: bool = False
    requests_applied: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for benchmark JSON."""
        return {
            "requests": self.requests,
            "duration_s": round(self.duration_s, 4),
            "rps": round(self.rps, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "ok": self.ok,
            "rejected": self.rejected,
            "errors": self.errors,
            "rejection_rate": round(self.rejection_rate, 5),
            "outcomes": dict(sorted(self.outcomes.items())),
            "server_digest": self.server_digest,
            "replay_digest": self.replay_digest,
            "replay_verified": self.replay_verified,
            "requests_applied": self.requests_applied,
        }

    def render_text(self) -> str:
        """Human-readable run summary (the CLI's output)."""
        lines = [
            f"loadgen: {self.requests} requests in {self.duration_s:.2f}s "
            f"-> {self.rps:,.0f} req/s",
            f"loadgen: latency p50={self.p50_ms:.3f}ms "
            f"p99={self.p99_ms:.3f}ms",
            f"loadgen: ok={self.ok} rejected={self.rejected} "
            f"errors={self.errors} "
            f"(rejection rate {100 * self.rejection_rate:.2f}%)",
        ]
        if self.server_digest:
            verdict = "MATCH" if self.replay_verified else "MISMATCH"
            lines.append(
                f"loadgen: replay digest: {verdict} "
                f"({self.requests_applied} ops, {self.server_digest[:16]}…)"
            )
        return "\n".join(lines)


class _Stream:
    """Seeded request stream shared by every connection worker.

    Names are globally unique (a monotone counter) and eviction targets
    are drawn from the set of names whose placements succeeded, so the
    stream exercises real evictions under load without coordinating
    with the server.
    """

    def __init__(self, config: LoadgenConfig, service: ServiceConfig):
        self.config = config
        self.service = service
        self.rng = random.Random(config.seed)
        self.kinds = [k for k, _ in config.mix.table()]
        self.weights = [w for _, w in config.mix.table()]
        self.issued = 0
        self.next_vm = 0
        self.placed: List[str] = []

    def take(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        """The next (op, params) pair, or ``None`` when exhausted."""
        if self.issued >= self.config.requests:
            return None
        self.issued += 1
        kind = self.rng.choices(self.kinds, weights=self.weights)[0]
        if kind == "place":
            name = f"vm{self.next_vm}"
            self.next_vm += 1
            size = self.rng.choice(self.config.sizes_mib) * MiB
            socket = self.rng.randrange(self.service.sockets)
            return "place_vm", {
                "name": name,
                "memory_bytes": size,
                "socket": socket,
            }
        if kind == "evict":
            if not self.placed:
                return "health", {}
            name = self.placed.pop(
                self.rng.randrange(len(self.placed))
            )
            return "evict_vm", {"name": name}
        if kind == "attack":
            host = self.rng.randrange(self.service.hosts)
            return "run_attack", {
                "host": host,
                "budget": self.config.attack_budget,
            }
        return kind, {}

    def settle(self, op: str, params: Dict[str, Any], ok: bool) -> None:
        """Feed placement outcomes back so evictions target live VMs."""
        if op == "place_vm" and ok:
            self.placed.append(params["name"])


async def run_loadgen(
    config: LoadgenConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    socket_path: Optional[str] = None,
) -> LoadgenReport:
    """Drive a running daemon with *config*'s request stream.

    Opens ``config.connections`` pipelined connections, each holding a
    ``config.window``-deep in-flight window, and runs the stream dry.
    When ``config.verify_replay`` is set, afterwards fetches the
    daemon's request log + digest and replays the log synchronously.
    """
    stream: Optional[_Stream] = None
    clients: List[AsyncServeClient] = []
    for _ in range(config.connections):
        client = AsyncServeClient()
        await client.connect(
            host=host, port=port, socket_path=socket_path
        )
        clients.append(client)
    try:
        info = await clients[0].request("info")
        service = ServiceConfig.from_dict(info["config"])
        stream = _Stream(config, service)
        outcomes: Dict[str, int] = {}
        latencies_ns: List[int] = []
        lock = asyncio.Lock()

        async def issue(client: AsyncServeClient) -> None:
            """One in-flight slot: pull, send, classify, repeat."""
            assert stream is not None
            while True:
                async with lock:
                    item = stream.take()
                if item is None:
                    return
                op, params = item
                started = time.perf_counter_ns()
                response: Response = await client.request_raw(op, **params)
                latency = time.perf_counter_ns() - started
                tag = (
                    "ok"
                    if response.ok
                    else response.error.code.value  # type: ignore[union-attr]
                )
                async with lock:
                    latencies_ns.append(latency)
                    outcomes[tag] = outcomes.get(tag, 0) + 1
                    stream.settle(op, params, response.ok)

        started_s = time.perf_counter()
        await asyncio.gather(
            *(
                issue(client)
                for client in clients
                for _ in range(config.window)
            )
        )
        duration_s = max(time.perf_counter() - started_s, 1e-9)

        server_digest = ""
        replay_digest = ""
        applied = 0
        if config.verify_replay:
            log_doc = await clients[0].request("log")
            server_digest = log_doc["digest"]
            applied = len(log_doc["log"])
            replayed = replay_request_log(service, log_doc["log"])
            replay_digest = replayed.state_digest()
    finally:
        for client in clients:
            await client.close()

    latencies_ns.sort()
    ok = outcomes.get("ok", 0)
    rejected = sum(outcomes.get(code, 0) for code in _REJECT_CODES)
    total = sum(outcomes.values())
    errors = total - ok - rejected
    return LoadgenReport(
        requests=total,
        duration_s=duration_s,
        rps=total / duration_s,
        p50_ms=_percentile_ms(latencies_ns, 0.50),
        p99_ms=_percentile_ms(latencies_ns, 0.99),
        ok=ok,
        rejected=rejected,
        errors=errors,
        rejection_rate=rejected / total if total else 0.0,
        outcomes=outcomes,
        server_digest=server_digest,
        replay_digest=replay_digest,
        replay_verified=bool(server_digest)
        and server_digest == replay_digest,
        requests_applied=applied,
    )


async def serve_and_load(
    service: ServiceConfig, config: LoadgenConfig
) -> LoadgenReport:
    """Spawn an in-process daemon on an ephemeral port, load it, drain
    it, and return the report (the ``--spawn`` / bench path)."""
    from repro.serve.server import ServeServer

    server = ServeServer(service, port=0)
    await server.start()
    try:
        report = await run_loadgen(config, port=server.port)
    finally:
        server.request_shutdown()
        await server.wait_closed()
    return report


def _percentile_ms(sorted_ns: List[int], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted ns list, in ms."""
    if not sorted_ns:
        return 0.0
    rank = min(len(sorted_ns) - 1, int(q * len(sorted_ns)))
    return sorted_ns[rank] / 1e6


__all__ = [
    "LoadMix",
    "LoadgenConfig",
    "LoadgenReport",
    "run_loadgen",
    "serve_and_load",
]
