"""Boot-time subarray-group provisioning (paper §5.2, §5.3).

During early boot Siloz (1) computes every subarray group's host-physical
address ranges from the BIOS-fixed mapping, (2) provisions one logical
NUMA node per group — host-reserved for one group per socket (keeping the
socket's cores), guest-reserved (memory-only) for the rest, (3) carves
the EPT row group out of the host group as its own EPT-reserved node,
and (4) offlines the surrounding guard row groups (§5.4).

Node numbering: host nodes take ids ``0..sockets-1`` (mirroring the
baseline so host software is unaffected), guest nodes follow, EPT nodes
come last.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import EptProtection, SilozConfig
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressRange, SkylakeMapping, merge_ranges, subtract_ranges
from repro.mm.numa import NodeKind, NumaNode, NumaTopology
from repro.mm.offline import OfflineReason, OfflineRegistry


@dataclass
class ProvisionResult:
    """Everything the boot path computed, for the hypervisor to keep."""

    topology: NumaTopology
    #: (socket, group) -> node id
    node_of_group: dict[tuple[int, int], int] = field(default_factory=dict)
    #: socket -> EPT node id
    ept_node_of_socket: dict[int, int] = field(default_factory=dict)
    #: socket -> guard row-group HPA ranges (offlined)
    guard_ranges: dict[int, list[AddressRange]] = field(default_factory=dict)
    #: socket -> EPT row-group HPA ranges
    ept_ranges: dict[int, list[AddressRange]] = field(default_factory=dict)

    def guest_node_ids(self, socket: int | None = None) -> list[int]:
        return [
            n.node_id
            for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
            if socket is None or n.physical_node == socket
        ]


def ept_block_rows(config: SilozConfig, geom: DRAMGeometry) -> range:
    """Bank-local rows of the reserved EPT block: the first ``b`` rows of
    the host group's first subarray."""
    rows = config.effective_rows_per_subarray(geom)
    start = config.host_group_index * rows
    return range(start, start + config.ept_block_row_groups)


def ept_rows(config: SilozConfig, geom: DRAMGeometry) -> range:
    """The bank-local rows whose row groups hold the EPTs (offset o,
    count k, spread ``stride`` apart; the paper uses k=1)."""
    start = ept_block_rows(config, geom).start + config.ept_row_group_offset
    stride = config.ept_row_group_stride
    return range(start, start + config.ept_row_group_count * stride, stride)


def ept_row(config: SilozConfig, geom: DRAMGeometry) -> int:
    """The first EPT row (the paper's single row group at offset o)."""
    return ept_rows(config, geom).start


def provision(
    machine_geom: DRAMGeometry,
    mapping: SkylakeMapping,
    config: SilozConfig,
    socket_cores: dict[int, tuple[int, ...]],
    offline: OfflineRegistry,
) -> ProvisionResult:
    """Build the full logical-node topology for one host (§5.3).

    ``socket_cores`` maps socket -> its core ids (host nodes own them).
    Guard row groups are offlined through *offline* so the reservation is
    visible in the accounting benches.
    """
    config.validate_against(machine_geom)
    geom = config.effective_geometry(machine_geom)
    result = ProvisionResult(topology=NumaTopology())
    guest_nodes_needed = geom.sockets * (geom.groups_per_socket - 1)
    next_guest_id = geom.sockets
    next_ept_id = geom.sockets + guest_nodes_needed

    managed_mapping = SkylakeMapping(
        geom, mapping.chunk_row_groups, mapping.chunks_per_range
    )

    guard_protected = config.ept_protection is EptProtection.GUARD_ROWS
    for socket in range(geom.sockets):
        ept_ranges: list[AddressRange] = []
        guard_ranges: list[AddressRange] = []
        if guard_protected:
            block = ept_block_rows(config, geom)
            ept_rgs = ept_rows(config, geom)
            ept_ranges = merge_ranges(
                [
                    r
                    for row in ept_rgs
                    for r in managed_mapping.row_group_ranges(socket, row)
                ]
            )
            guard_ranges = merge_ranges(
                [
                    r
                    for row in block
                    if row not in ept_rgs
                    for r in managed_mapping.row_group_ranges(socket, row)
                ]
            )
        result.ept_ranges[socket] = ept_ranges
        result.guard_ranges[socket] = guard_ranges

        for group in range(geom.groups_per_socket):
            ranges = managed_mapping.subarray_group_ranges(socket, group)
            if group == config.host_group_index:
                node = NumaNode(
                    node_id=socket,
                    kind=NodeKind.HOST_RESERVED,
                    physical_node=socket,
                    ranges=subtract_ranges(ranges, ept_ranges),
                    cpus=socket_cores.get(socket, ()),
                    subarray_groups=(group,),
                )
                result.topology.add(node)
                # Offline the guard row groups out of the host node's pool.
                for guard in guard_ranges:
                    offline.offline(node, guard, OfflineReason.GUARD_ROW)
            else:
                node = NumaNode(
                    node_id=next_guest_id,
                    kind=NodeKind.GUEST_RESERVED,
                    physical_node=socket,
                    ranges=ranges,
                    cpus=(),
                    subarray_groups=(group,),
                )
                result.topology.add(node)
                next_guest_id += 1
            result.node_of_group[(socket, group)] = node.node_id

        if guard_protected:
            # The EPT row group becomes its own logical node; GFP_EPT
            # allocations (§5.4) are routed here.
            ept_node = NumaNode(
                node_id=next_ept_id,
                kind=NodeKind.EPT_RESERVED,
                physical_node=socket,
                ranges=ept_ranges,
                cpus=(),
                subarray_groups=(config.host_group_index,),
            )
            result.topology.add(ept_node)
            result.ept_node_of_socket[socket] = ept_node.node_id
            next_ept_id += 1
        # SECURE_EPT / NONE: EPT pages come from the host pool — the
        # hardware checker (or nothing) protects them.

    return result
