"""The Siloz hypervisor (paper §5).

Siloz extends the baseline hypervisor with the paper's three mechanisms:

1. **Subarray groups as logical NUMA nodes** (§5.2): at boot, every
   subarray group becomes a node; one group per socket stays
   host-reserved (with the socket's cores), the rest are memory-only
   guest-reserved nodes.
2. **Placement policy** (§5.1): a VM's unmediated pages are backed only
   by its private guest-reserved node(s), enforced through an exclusive
   control group plus the KVM-privilege check; mediated and host pages
   stay on host-reserved nodes.
3. **EPT integrity** (§5.4): EPT table pages are allocated with GFP_EPT
   from the per-socket EPT row group, whose neighbouring row groups are
   offlined as guard rows (b=32, o=12 at paper scale) — or, with
   ``EptProtection.SECURE_EPT``, integrity-checked on use by the
   TDX/SNP-style checker.
"""

from __future__ import annotations

from repro.core.config import EptProtection, SilozConfig
from repro.log import get_logger
from repro.core.groups import ProvisionResult, provision
from repro.ept.integrity import SecureEptChecker
from repro.ept.table import ExtendedPageTable
from repro.errors import OutOfMemoryError, PlacementError
from repro.hv.hypervisor import Hypervisor, VmSpec
from repro.hv.machine import Machine
from repro.hv.vm import VirtualMachine
from repro.mm.numa import NodeKind
from repro.units import PAGE_2M, PAGE_4K


_log = get_logger("core.siloz")


class SilozHypervisor(Hypervisor):
    """Linux/KVM with subarray-group isolation."""

    #: Placement policies: "pack" fills the preferred socket's lowest
    #: nodes first (maximises contiguous free groups for big VMs);
    #: "spread" balances VMs across sockets (evens memory traffic).
    PLACEMENT_POLICIES = ("pack", "spread")

    def __init__(
        self,
        machine: Machine,
        config: SilozConfig | None = None,
        *,
        backing_page_bytes: int = PAGE_2M,
        placement_policy: str = "pack",
    ):
        if placement_policy not in self.PLACEMENT_POLICIES:
            raise PlacementError(
                f"unknown placement policy {placement_policy!r}; "
                f"know {self.PLACEMENT_POLICIES}"
            )
        # _build_topology (called by the base initializer) needs the
        # config, so stash it first.
        self.config = config or SilozConfig.paper_default()
        self.placement_policy = placement_policy
        self._provision: ProvisionResult | None = None
        super().__init__(machine, backing_page_bytes=backing_page_bytes)

    @classmethod
    def boot(
        cls,
        machine: Machine,
        config: SilozConfig | None = None,
        *,
        backing_page_bytes: int | None = None,
        infer_subarray_size: bool = False,
        measure_blast_radius: bool = False,
        repairs=None,
        dimm_transforms=None,
    ) -> "SilozHypervisor":
        """Boot Siloz on *machine*; small machines automatically get a
        scaled guard block and page-granular backing.

        ``infer_subarray_size`` runs the mFIT-style calibration (§4.1)
        instead of trusting the geometry's subarray parameter, and
        ``measure_blast_radius`` runs the BLASTER-style sweep to derive
        the guard blast radius — the paths for servers whose DRAM vendor
        shares nothing.  Both probes run on a scratch copy of the DRAM
        (a pre-production calibration pass), leaving the real module's
        flip log clean."""
        geom = machine.geom
        if (infer_subarray_size or measure_blast_radius) and config is None:
            from repro.dram.module import SimulatedDram

            probe = SimulatedDram(
                geom,
                profile=machine.dram.disturbance.profile,
                trr_config=None,
                seed=1,
            )
            rows = geom.rows_per_subarray
            if infer_subarray_size:
                from repro.attack.mfit import infer_subarray_rows, verify_inference

                rows = infer_subarray_rows(probe)
                if not verify_inference(probe, rows):
                    raise PlacementError(
                        f"inferred subarray size {rows} failed sanity checks"
                    )
            radius = None
            if measure_blast_radius:
                from repro.attack.blaster import measure_blast_radius as _measure

                radius = _measure(probe).radius()
            if rows >= 512 and (radius is None or radius <= 4):
                config = SilozConfig(rows_per_subarray=rows)
            else:
                config = SilozConfig.scaled_for(
                    geom,
                    rows_per_subarray=rows,
                    blast_radius=radius if radius is not None else 2,
                )
        if config is None:
            if geom.rows_per_subarray >= 512:
                config = SilozConfig.paper_default()
            else:
                config = SilozConfig.scaled_for(geom)
        if backing_page_bytes is None:
            backing_page_bytes = (
                PAGE_2M if geom.subarray_group_bytes >= 16 * PAGE_2M else 16 * PAGE_4K
            )
        hv = cls(machine, config, backing_page_bytes=backing_page_bytes)
        if repairs or (dimm_transforms is not None and dimm_transforms.scrambling):
            # §6: remove isolation-violating rows from allocatable
            # memory (inter-subarray repairs, scrambling boundaries).
            from repro.core.remediation import apply_remediation, plan_remediation

            plan = plan_remediation(
                hv.managed_geom, repairs=repairs, transforms=dimm_transforms
            )
            apply_remediation(hv, plan)
        return hv

    # ------------------------------------------------------------------
    # Topology (§5.2, §5.3)
    # ------------------------------------------------------------------

    def _build_topology(self) -> None:
        from repro.mm.vmstat import VmStatReporter

        cores = {
            s: self.machine.socket_cores(s) for s in range(self.machine.geom.sockets)
        }
        self._provision = provision(
            self.machine.geom,
            self.machine.mapping,
            self.config,
            cores,
            self.offline,
        )
        self.topology = self._provision.topology
        # §5.3: skip periodic stat updates for booted guests' nodes.
        self.vmstat = VmStatReporter(self.topology)
        _log.info(
            "provisioned %d logical nodes (%d guest-reserved), EPT protection=%s",
            len(self.topology),
            len(self._provision.guest_node_ids()),
            self.config.ept_protection.value,
        )

    @property
    def provision_result(self) -> ProvisionResult:
        assert self._provision is not None
        return self._provision

    @property
    def managed_geom(self):
        """Geometry with the *presumed* subarray size (§7.4 variants)."""
        return self.config.effective_geometry(self.machine.geom)

    def _guest_nodes_exclusive(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Placement (§5.1)
    # ------------------------------------------------------------------

    def _reserved_node_ids(self) -> set[int]:
        return self._nodes_unavailable_for_placement()

    def _socket_preference(self, spec: VmSpec, free_nodes) -> dict[int, int]:
        """Rank sockets for this VM.  "pack" honours spec.socket then
        socket order; "spread" prefers the socket with the most free
        guest nodes (ties to spec.socket)."""
        if self.placement_policy == "pack":
            return {
                s: (0 if s == spec.socket else 1 + s)
                for s in range(self.machine.geom.sockets)
            }
        free_per_socket: dict[int, int] = {}
        for node in free_nodes:
            free_per_socket[node.physical_node] = (
                free_per_socket.get(node.physical_node, 0) + 1
            )
        return {
            s: (-free_per_socket.get(s, 0), s != spec.socket)
            for s in range(self.machine.geom.sockets)
        }

    def _place_vm(self, spec: VmSpec) -> tuple[tuple[int, ...], frozenset]:
        """Pick enough free guest-reserved nodes, preferring the VM's
        socket (physical-NUMA locality, §5.2), falling back remote."""
        needed = spec.memory_bytes + 2 * self.backing_page_bytes  # + ROM slack
        chosen: list[int] = []
        total = 0
        reserved = self._reserved_node_ids()
        free_nodes = [
            n
            for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
            if n.node_id not in reserved
        ]
        rank = self._socket_preference(spec, free_nodes)
        candidates = sorted(
            free_nodes,
            key=lambda n: (rank[n.physical_node], n.node_id),
        )
        for node in candidates:
            chosen.append(node.node_id)
            total += node.free_bytes
            if total >= needed:
                break
        if total < needed:
            # Typed capacity error: how many guest nodes the request
            # would have needed (at this host's provisioning granularity)
            # vs how many were actually free — the fleet scheduler keys
            # "host full" off these fields (``PlacementError.is_capacity``).
            per_node = max(
                (n.total_bytes for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)),
                default=self.managed_geom.subarray_group_bytes,
            )
            raise PlacementError(
                f"cannot reserve {spec.memory_bytes:#x} bytes of guest-"
                f"reserved subarray groups for VM {spec.name!r}: "
                f"{len(free_nodes)} free group node(s) hold {total:#x} bytes",
                requested_groups=-(-needed // per_node),
                available_groups=len(free_nodes),
            )
        groups = frozenset(
            (self.topology.node(nid).physical_node, g)
            for nid in chosen
            for g in self.topology.node(nid).subarray_groups
        )
        return tuple(chosen), groups

    # ------------------------------------------------------------------
    # EPT placement and protection (§5.4)
    # ------------------------------------------------------------------

    def _alloc_ept_page(self, socket: int) -> int:
        """GFP_EPT: table pages come from the socket's protected EPT row
        group (guard-row mode) or the host pool (secure-EPT mode)."""
        if self.config.ept_protection is EptProtection.GUARD_ROWS:
            node_id = self.provision_result.ept_node_of_socket[socket]
            try:
                return self.topology.alloc_on_node(node_id, PAGE_4K)
            except OutOfMemoryError:
                # Same-socket row group full: use the other socket's
                # (still guard-protected, just remote).
                for other, nid in self.provision_result.ept_node_of_socket.items():
                    if other != socket:
                        return self.topology.alloc_on_node(nid, PAGE_4K)
                raise
        return self.topology.alloc_on_node(socket, PAGE_4K)

    def destroy_vm(self, name: str) -> None:
        """Shut the VM down and unfreeze its nodes' vmstat entries."""
        vm = self.vm(name)
        super().destroy_vm(name)
        # Freed memory changes the nodes' stats again (§5.3: static only
        # while the VM runs).
        for node_id in vm.node_ids:
            self.vmstat.mark_dynamic(node_id)

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Place and boot a VM on private guest-reserved nodes (§5.1)."""
        vm = super().create_vm(spec)
        _log.info(
            "VM %s placed on nodes %s (groups %s)",
            spec.name,
            vm.node_ids,
            sorted(vm.reserved_groups),
        )
        for node_id in vm.node_ids:
            self.vmstat.mark_static(node_id)
        if self.config.ept_protection is EptProtection.SECURE_EPT:
            # Rebuild the EPT with integrity checking.  (The base class
            # built it unchecked; re-recording is equivalent to the TDX
            # module owning the pages from the start.)
            checker = SecureEptChecker()
            vm.ept.checker = checker
            self._re_record_ept(vm.ept, checker)
        return vm

    def _re_record_ept(self, ept: ExtendedPageTable, checker: SecureEptChecker) -> None:
        from repro.ept.entry import ENTRIES_PER_PAGE, ENTRY_BYTES, EptEntry

        for table in ept.table_pages:
            for i in range(ENTRIES_PER_PAGE):
                addr = table + i * ENTRY_BYTES
                raw = self.machine.dram.read(addr, ENTRY_BYTES)
                if EptEntry.unpack(raw).present:
                    checker.record(addr, raw)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """One-paragraph topology/protection summary for logs and docs."""
        geom = self.managed_geom
        guests = self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
        epts = self.topology.nodes_of_kind(NodeKind.EPT_RESERVED)
        return (
            f"Siloz: {len(self.topology)} logical nodes "
            f"({geom.sockets} host, {len(guests)} guest-reserved, "
            f"{len(epts)} EPT) over {geom.groups_per_socket} groups/socket "
            f"of {geom.subarray_group_bytes} bytes; "
            f"EPT protection: {self.config.ept_protection.value}; "
            f"reserved for EPT+guards: "
            f"{self.config.reserved_fraction(geom) * 100:.3f}% of DRAM"
        )
