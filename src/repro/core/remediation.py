"""Boot-time remediation of isolation-violating rows (paper §6).

Two DIMM-internal effects can silently move cells across subarray
boundaries: vendor *row repairs* whose spare row lives in a different
subarray, and vendor *row-address scrambling* when the subarray size is
not a multiple of 8.  The paper's mitigation is the same one Linux uses
for failing pages: identify the affected rows via the address-
translation drivers and remove their pages from allocatable memory.

Because pages interleave across every bank of a socket, "the pages
mapping to a row" of any single bank are exactly the pages of that row's
*row group* — so remediation offlines whole row groups.  The cost
matches the paper's accounting: repairs affect ~0.15 % of rows; the
scrambling workaround costs ``8 / rows_per_subarray`` of memory.

``plan_remediation`` computes what to offline;
``SilozHypervisor.boot(..., repairs=..., dimm_transforms=...)`` applies
it during provisioning, before any allocations exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressRange, SkylakeMapping
from repro.dram.transforms import RepairMap, TransformConfig
from repro.errors import MmError, OutOfMemoryError, UncorrectableError
from repro.log import get_logger
from repro.mm.offline import OfflineReason

_log = get_logger("core.remediation")


@dataclass(frozen=True)
class RemediationItem:
    """One row group to offline, with its cause."""

    socket: int
    row: int
    reason: OfflineReason


def scrambling_boundary_rows(geom: DRAMGeometry) -> list[int]:
    """Bank-local rows inside the aligned 8-row block straddling each
    subarray boundary — the §6 scrambling hazard.  Empty when the
    subarray size is a multiple of 8 (scrambling is then harmless)."""
    size = geom.rows_per_subarray
    if size % 8 == 0:
        return []
    rows: set[int] = set()
    for boundary in range(size, geom.rows_per_bank, size):
        block_start = (boundary // 8) * 8
        rows.update(
            r for r in range(block_start, block_start + 8) if r < geom.rows_per_bank
        )
    return sorted(rows)


def plan_remediation(
    geom: DRAMGeometry,
    *,
    repairs: dict[tuple[int, int], RepairMap] | None = None,
    transforms: TransformConfig | None = None,
) -> list[RemediationItem]:
    """Everything §6 says to offline for this DIMM population.

    ``repairs`` maps (socket, socket-flat bank) to that bank's repair
    map; only *inter-subarray* repairs matter.  ``transforms`` triggers
    the scrambling analysis when it scrambles and the subarray size is
    not a multiple of 8."""
    items: list[RemediationItem] = []
    seen: set[tuple[int, int]] = set()
    for (socket, _bank), repair_map in sorted((repairs or {}).items()):
        for row in repair_map.rows_to_offline():
            if (socket, row) in seen:
                continue
            seen.add((socket, row))
            items.append(
                RemediationItem(socket, row, OfflineReason.INTER_SUBARRAY_REPAIR)
            )
    if transforms is not None and transforms.scrambling:
        for socket in range(geom.sockets):
            for row in scrambling_boundary_rows(geom):
                if (socket, row) in seen:
                    continue
                seen.add((socket, row))
                items.append(
                    RemediationItem(socket, row, OfflineReason.SCRAMBLING_BOUNDARY)
                )
    return items


def remediation_ranges(
    mapping: SkylakeMapping, items: list[RemediationItem]
) -> list[tuple[AddressRange, OfflineReason, int]]:
    """(HPA range, reason, socket) per offlined row group.

    Ranges are kept one-per-row-group (not merged): scrambling-boundary
    blocks straddle subarray-group boundaries, and each side belongs to
    a different logical node, which offlines its part separately."""
    out: list[tuple[AddressRange, OfflineReason, int]] = []
    for item in items:
        for r in mapping.row_group_ranges(item.socket, item.row):
            out.append((r, item.reason, item.socket))
    return out


@dataclass(frozen=True)
class MigrationPolicy:
    """Knobs for the runtime migrate-and-offline path."""

    #: Allocation attempts per block before deferring (each retry waits
    #: ``backoff_s`` of simulated time, doubling, modelling reclaim).
    max_retries: int = 3
    backoff_s: float = 0.001
    #: Whether an unmediated block may land on the VM's *other* logical
    #: nodes when its home node is full.  Always restricted to the VM's
    #: own reservation, so the isolation invariant holds either way.
    allow_cross_node: bool = True


@dataclass(frozen=True)
class MigratedBlock:
    """One backing block successfully moved (old frames retired)."""

    vm: str
    old: int
    new: int
    size: int


@dataclass(frozen=True)
class DeferredBlock:
    """One backing block migration could not move (and why)."""

    addr: int
    size: int
    why: str


@dataclass
class MigrationReport:
    """Outcome of one runtime row-group offlining."""

    socket: int
    row: int
    migrated: list[MigratedBlock] = field(default_factory=list)
    deferred: list[DeferredBlock] = field(default_factory=list)
    offlined_bytes: int = 0
    already_offline: bool = False
    violations: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when the row group is fully out of circulation (nothing
        deferred) and migration introduced no isolation violations."""
        return not self.deferred and not self.violations

    def summary(self) -> str:
        """One-line transcript form."""
        state = "offlined" if self.complete else "deferred"
        return (
            f"row group (s{self.socket} r{self.row}) {state}: "
            f"{len(self.migrated)} migrated, {len(self.deferred)} deferred, "
            f"{self.offlined_bytes} bytes retired, "
            f"{len(self.violations)} violation(s)"
        )


def _alloc_replacement(hv, vm, home_node, size: int, mediated: bool, policy: MigrationPolicy):
    """Pick fresh frames for a migrating block, preserving placement:
    unmediated blocks stay within the VM's own reserved nodes (same
    subarray groups — the Siloz invariant), mediated blocks stay on
    host-reserved nodes.  Returns the new address or None after all
    retries."""
    from repro.mm.numa import NodeKind

    if mediated:
        candidates = [
            n.node_id for n in hv.topology.nodes_of_kind(NodeKind.HOST_RESERVED)
        ]
    else:
        candidates = [home_node.node_id] + (
            [nid for nid in vm.node_ids if nid != home_node.node_id]
            if policy.allow_cross_node
            else []
        )
    backoff = policy.backoff_s
    for attempt in range(policy.max_retries + 1):
        for nid in candidates:
            try:
                return hv.topology.node(nid).alloc_bytes(size)
            except OutOfMemoryError:
                continue
        if attempt < policy.max_retries:
            # Model waiting for reclaim: let simulated time pass, then
            # retry (another tenant may have freed frames meanwhile).
            hv.machine.dram.advance_time(backoff)
            backoff *= 2
    return None


def offline_row_group_live(
    hv,
    socket: int,
    row: int,
    *,
    reason: OfflineReason = OfflineReason.CE_STORM,
    policy: MigrationPolicy | None = None,
) -> MigrationReport:
    """Runtime counterpart of :func:`apply_remediation`: take a row
    group out of service *while VMs are running on it*.

    Free pages are quarantined; still-allocated backing blocks are
    copied to fresh frames inside the owning VM's own reservation (same
    subarray groups — migration must not break the isolation the system
    exists to provide), their EPT/IOMMU leaves are retargeted, and the
    emptied frames are retired.  Blocks that cannot move — EPT table
    pages, unknown owners, frames whose data machine-checks on read, or
    no free frames after retries — leave the row group *deferred*: still
    quarantined, re-attempted later via
    :meth:`~repro.hv.health.HealthMonitor.retry_deferred`.

    Always finishes with a full isolation audit; the findings ride on
    the report and gate :attr:`MigrationReport.complete`.
    """
    from repro.core.policy import audit_hypervisor

    policy = policy or MigrationPolicy()
    dram = hv.machine.dram
    report = MigrationReport(socket=socket, row=row)
    with obs.span("remediation.offline_row_group_live", sim_when=dram.clock):
        _offline_row_group_live(hv, report, dram, socket, row, reason, policy)
    report.violations = audit_hypervisor(hv)
    if obs.ENABLED:
        obs.emit(
            obs.RemediationEvent(
                socket=socket,
                row=row,
                migrated=len(report.migrated),
                deferred=len(report.deferred),
                offlined_bytes=report.offlined_bytes,
                when=dram.clock,
            )
        )
    _log.info("%s", report.summary())
    return report


def _offline_row_group_live(
    hv, report: MigrationReport, dram, socket: int, row: int,
    reason: OfflineReason, policy: MigrationPolicy,
) -> None:
    for rg in hv.machine.mapping.row_group_ranges(socket, row):
        if hv.offline.is_offline(rg.start) and hv.offline.is_offline(rg.end - 1):
            report.already_offline = True
            continue
        try:
            node = hv.topology.node_of_addr(rg.start)
        except MmError:
            continue  # not under any node (e.g. carved out at boot)
        node.quarantine_range(rg)
        deferred_here: list[DeferredBlock] = []
        for addr, size in node.allocated_blocks_within(rg):
            table_owner = hv.table_page_owner(addr)
            if table_owner is not None:
                deferred_here.append(
                    DeferredBlock(addr, size, f"ept-table page of {table_owner!r}")
                )
                continue
            owned = hv.vm_block_owner(addr)
            if owned is None:
                deferred_here.append(DeferredBlock(addr, size, "unknown owner"))
                continue
            vm, mediated = owned
            new = _alloc_replacement(hv, vm, node, size, mediated, policy)
            if new is None:
                deferred_here.append(
                    DeferredBlock(addr, size, "no replacement frames")
                )
                continue
            try:
                data = dram.read_region(addr, size)  # ECC heals CEs into the copy
            except UncorrectableError as exc:
                hv.topology.free_addr(new)
                deferred_here.append(
                    DeferredBlock(addr, size, f"uncorrectable data: {exc}")
                )
                continue
            dram.write(new, data)
            hv.relocate_block(vm, addr, size, new)
            node.allocator.retire(addr)
            report.migrated.append(MigratedBlock(vm.name, addr, new, size))
        if deferred_here:
            report.deferred.extend(deferred_here)
            hv.offline.defer(
                node.node_id, rg, reason, "; ".join(d.why for d in deferred_here)
            )
        else:
            report.offlined_bytes += hv.offline.offline_retired(node, rg, reason)


def apply_remediation(hv, items: list[RemediationItem]) -> int:
    """Offline every planned row group from its owning node; returns the
    number of bytes removed.  Must run before allocations (boot)."""
    total = 0
    for merged, reason, _socket in remediation_ranges(hv.machine.mapping, items):
        if hv.offline.is_offline(merged.start) and hv.offline.is_offline(
            merged.end - 1
        ):
            continue  # already unallocatable (e.g. inside the guard block)
        node = hv.topology.node_of_addr(merged.start)
        hv.offline.offline(node, merged, reason)
        total += merged.size
    if total:
        _log.info(
            "remediated %d row group(s): %d bytes offlined", len(items), total
        )
    return total
