"""Boot-time remediation of isolation-violating rows (paper §6).

Two DIMM-internal effects can silently move cells across subarray
boundaries: vendor *row repairs* whose spare row lives in a different
subarray, and vendor *row-address scrambling* when the subarray size is
not a multiple of 8.  The paper's mitigation is the same one Linux uses
for failing pages: identify the affected rows via the address-
translation drivers and remove their pages from allocatable memory.

Because pages interleave across every bank of a socket, "the pages
mapping to a row" of any single bank are exactly the pages of that row's
*row group* — so remediation offlines whole row groups.  The cost
matches the paper's accounting: repairs affect ~0.15 % of rows; the
scrambling workaround costs ``8 / rows_per_subarray`` of memory.

``plan_remediation`` computes what to offline;
``SilozHypervisor.boot(..., repairs=..., dimm_transforms=...)`` applies
it during provisioning, before any allocations exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import AddressRange, SkylakeMapping
from repro.dram.transforms import RepairMap, TransformConfig
from repro.log import get_logger
from repro.mm.offline import OfflineReason

_log = get_logger("core.remediation")


@dataclass(frozen=True)
class RemediationItem:
    """One row group to offline, with its cause."""

    socket: int
    row: int
    reason: OfflineReason


def scrambling_boundary_rows(geom: DRAMGeometry) -> list[int]:
    """Bank-local rows inside the aligned 8-row block straddling each
    subarray boundary — the §6 scrambling hazard.  Empty when the
    subarray size is a multiple of 8 (scrambling is then harmless)."""
    size = geom.rows_per_subarray
    if size % 8 == 0:
        return []
    rows: set[int] = set()
    for boundary in range(size, geom.rows_per_bank, size):
        block_start = (boundary // 8) * 8
        rows.update(
            r for r in range(block_start, block_start + 8) if r < geom.rows_per_bank
        )
    return sorted(rows)


def plan_remediation(
    geom: DRAMGeometry,
    *,
    repairs: dict[tuple[int, int], RepairMap] | None = None,
    transforms: TransformConfig | None = None,
) -> list[RemediationItem]:
    """Everything §6 says to offline for this DIMM population.

    ``repairs`` maps (socket, socket-flat bank) to that bank's repair
    map; only *inter-subarray* repairs matter.  ``transforms`` triggers
    the scrambling analysis when it scrambles and the subarray size is
    not a multiple of 8."""
    items: list[RemediationItem] = []
    seen: set[tuple[int, int]] = set()
    for (socket, _bank), repair_map in sorted((repairs or {}).items()):
        for row in repair_map.rows_to_offline():
            if (socket, row) in seen:
                continue
            seen.add((socket, row))
            items.append(
                RemediationItem(socket, row, OfflineReason.INTER_SUBARRAY_REPAIR)
            )
    if transforms is not None and transforms.scrambling:
        for socket in range(geom.sockets):
            for row in scrambling_boundary_rows(geom):
                if (socket, row) in seen:
                    continue
                seen.add((socket, row))
                items.append(
                    RemediationItem(socket, row, OfflineReason.SCRAMBLING_BOUNDARY)
                )
    return items


def remediation_ranges(
    mapping: SkylakeMapping, items: list[RemediationItem]
) -> list[tuple[AddressRange, OfflineReason, int]]:
    """(HPA range, reason, socket) per offlined row group.

    Ranges are kept one-per-row-group (not merged): scrambling-boundary
    blocks straddle subarray-group boundaries, and each side belongs to
    a different logical node, which offlines its part separately."""
    out: list[tuple[AddressRange, OfflineReason, int]] = []
    for item in items:
        for r in mapping.row_group_ranges(item.socket, item.row):
            out.append((r, item.reason, item.socket))
    return out


def apply_remediation(hv, items: list[RemediationItem]) -> int:
    """Offline every planned row group from its owning node; returns the
    number of bytes removed.  Must run before allocations (boot)."""
    total = 0
    for merged, reason, _socket in remediation_ranges(hv.machine.mapping, items):
        if hv.offline.is_offline(merged.start) and hv.offline.is_offline(
            merged.end - 1
        ):
            continue  # already unallocatable (e.g. inside the guard block)
        node = hv.topology.node_of_addr(merged.start)
        hv.offline.offline(node, merged, reason)
        total += merged.size
    if total:
        _log.info(
            "remediated %d row group(s): %d bytes offlined", len(items), total
        )
    return total
