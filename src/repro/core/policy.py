"""Isolation audits: the invariants Siloz promises (paper §5.1, §7.1).

These checks never mutate anything; they inspect a hypervisor and report
violations.  Under Siloz the list must be empty (tests assert that);
under the baseline the same audits *find* the co-location that makes
inter-VM Rowhammer possible, which is how the security benches show the
contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.disturbance import BitFlip
from repro.hv.hypervisor import Hypervisor
from repro.hv.vm import VirtualMachine, VmState
from repro.mm.numa import NodeKind


@dataclass(frozen=True)
class Violation:
    """One isolation-audit finding."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _groups_of(hv: Hypervisor, vm: VirtualMachine) -> set:
    return hv.groups_of_vm(vm)


def audit_hypervisor(hv: Hypervisor) -> list[Violation]:
    """All placement invariants at once.

    1. Every VM's unmediated backing lies within its reserved groups
       (vacuous for the baseline, which reserves nothing).
    2. No two running VMs share a subarray group.
    3. No VM shares a group with host-reserved memory.
    4. Mediated backing lies on host-reserved nodes.
    """
    violations: list[Violation] = []
    running = [vm for vm in hv.vms.values() if vm.state is VmState.RUNNING]
    host_groups = {
        (n.physical_node, g)
        for n in hv.topology.nodes_of_kind(NodeKind.HOST_RESERVED)
        for g in n.subarray_groups
    }

    groups_by_vm = {vm.name: _groups_of(hv, vm) for vm in running}

    for vm in running:
        groups = groups_by_vm[vm.name]
        if vm.reserved_groups and not groups <= set(vm.reserved_groups):
            stray = groups - set(vm.reserved_groups)
            violations.append(
                Violation(
                    "escape",
                    f"VM {vm.name} has unmediated pages in non-reserved "
                    f"groups {sorted(stray)}",
                )
            )
        overlap = groups & host_groups
        if vm.reserved_groups and overlap:
            violations.append(
                Violation(
                    "host-overlap",
                    f"VM {vm.name} shares groups {sorted(overlap)} with the host",
                )
            )
        for r in vm.mediated_backing:
            node = hv.topology.node_of_addr(r.start)
            if node.kind is not NodeKind.HOST_RESERVED:
                violations.append(
                    Violation(
                        "mediated-misplaced",
                        f"VM {vm.name} mediated range {r} on {node.kind.value} "
                        f"node {node.node_id}",
                    )
                )

    names = sorted(groups_by_vm)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = groups_by_vm[a] & groups_by_vm[b]
            if shared:
                violations.append(
                    Violation(
                        "co-location",
                        f"VMs {a} and {b} share subarray groups {sorted(shared)}",
                    )
                )
    return violations


def flips_escaping_vm(hv: Hypervisor, attacker: VirtualMachine) -> list[BitFlip]:
    """Bit flips (already logged by the DRAM) that landed *outside* the
    attacker's groups — the quantity Table 3 shows is zero under Siloz.

    For the baseline (no reserved groups), the attacker's actually-
    occupied groups are used, so the same query is meaningful there.
    """
    groups = set(attacker.reserved_groups) or _groups_of(hv, attacker)
    # Flips are accounted in the *managed* geometry's group units.
    geom = getattr(hv, "managed_geom", hv.machine.geom)
    return [
        f
        for f in hv.machine.dram.flips_log
        if (f.socket, f.row // geom.rows_per_subarray) not in groups
    ]


def flips_in_vm(hv: Hypervisor, victim: VirtualMachine) -> list[BitFlip]:
    """Flips that corrupted memory currently backing *victim*."""
    out = []
    mapping = hv.machine.mapping
    geom = hv.machine.geom
    for flip in hv.machine.dram.flips_log:
        # Reconstruct the flip's HPA via its media coordinates (column
        # unknown: check the whole row's span against the VM's ranges).
        from repro.dram.media import MediaAddress

        media = MediaAddress.from_socket_bank(
            geom, flip.socket, flip.bank, flip.row, (flip.bit // 8 // 64) * 64
        )
        hpa = mapping.encode(media)
        if victim.owns_hpa(hpa):
            out.append(flip)
    return out
