"""Guard-block safety analysis under half-row remaps (paper §5.4, §6).

The paper chooses ``b = 32`` and ``o = 12`` so that the EPT row keeps
enough guard rows on both sides *"in spite of potential DIMM-internal
half-row (§2.3) remaps affecting adjacency within 32-aligned blocks"*.
The remaps in question are the DDR4 mirroring/inversion transforms: a
row at offset o inside a 32-aligned block may physically sit at a
different in-block position on odd ranks and B-side half-rows.

This module computes the set of in-block positions an EPT row can
occupy across every (rank parity, side) combination and checks that all
of them keep at least ``radius`` rows of in-block distance to both block
edges — because everything inside the block except the EPT rows is an
offlined guard row, the only dangerous neighbours are rows *outside*
the block, and those are at least edge-distance away.

For the paper's o = 12: mirroring/inversion map offset 12 to {12, 20},
both ≥ 11 rows from either edge — which is exactly the "roughly split
above and below" description in §5.4.
"""

from __future__ import annotations

from repro.dram.transforms import Side, TransformConfig
from repro.errors import PlacementError
from repro.units import is_power_of_two


def internal_positions(offset: int, block_rows: int = 32) -> set[int]:
    """In-block positions *offset* may occupy under DDR4 mirroring and
    inversion, over all (rank, side) combinations.

    Only transforms of the in-block address bits move the position;
    higher-bit transforms relocate whole blocks and preserve in-block
    adjacency.  Requires a power-of-two *block_rows* (in-block bits are
    then exactly the low log2(block_rows) bits)."""
    if not is_power_of_two(block_rows):
        raise PlacementError(f"block must be a power of two, got {block_rows}")
    if not 0 <= offset < block_rows:
        raise PlacementError(f"offset {offset} outside block [0, {block_rows})")
    cfg = TransformConfig()
    positions = set()
    for rank in (0, 1):
        for side in (Side.A, Side.B):
            positions.add(cfg.internal_row(offset, rank, side) % block_rows)
    return positions


def edge_margin(offset: int, block_rows: int = 32) -> int:
    """Worst-case in-block distance from any internal position of
    *offset* to the nearest block edge."""
    margins = [
        min(pos, block_rows - 1 - pos)
        for pos in internal_positions(offset, block_rows)
    ]
    return min(margins)


def block_is_remap_safe(
    offset: int,
    count: int = 1,
    *,
    block_rows: int = 32,
    radius: int = 4,
) -> bool:
    """True when EPT rows at offsets [offset, offset+count) keep >=
    *radius* guard rows to both block edges under every half-row remap.
    """
    if count <= 0:
        raise PlacementError("count must be positive")
    return all(
        edge_margin(offset + i, block_rows) >= radius for i in range(count)
    )


def assert_remap_safe(
    offset: int,
    count: int,
    *,
    block_rows: int,
    radius: int,
) -> None:
    """Raise :class:`PlacementError` with the failing positions when a
    configuration is not remap-safe (used by SilozConfig validation)."""
    for i in range(count):
        margin = edge_margin(offset + i, block_rows)
        if margin < radius:
            positions = sorted(internal_positions(offset + i, block_rows))
            raise PlacementError(
                f"EPT row at block offset {offset + i} can internally sit at "
                f"{positions} (margin {margin} < blast radius {radius}) — "
                f"half-row remaps would defeat the guards"
            )
