"""The paper's contribution: the Siloz hypervisor (paper §5).

- :mod:`repro.core.config` — Siloz boot parameters (subarray size,
  EPT guard block b/o, protection mode),
- :mod:`repro.core.groups` — boot-time subarray-group computation and
  logical-NUMA-node provisioning (§5.2, §5.3),
- :mod:`repro.core.siloz` — the hypervisor itself (§5.1-§5.4),
- :mod:`repro.core.policy` — isolation audits (invariant checks the
  tests and security benches assert),
- :mod:`repro.core.softrefresh` — the rejected software-refresh
  alternative for EPT protection (§8.3),
- :mod:`repro.core.remediation` — boot-time offlining of isolation-
  violating rows (§6) and the runtime migrate-and-offline path the
  health monitor drives.
"""

from repro.core.config import EptProtection, SilozConfig
from repro.core.remediation import (
    MigrationPolicy,
    MigrationReport,
    offline_row_group_live,
)
from repro.core.siloz import SilozHypervisor
from repro.core.policy import audit_hypervisor, flips_escaping_vm

__all__ = [
    "EptProtection",
    "MigrationPolicy",
    "MigrationReport",
    "SilozConfig",
    "SilozHypervisor",
    "audit_hypervisor",
    "flips_escaping_vm",
    "offline_row_group_live",
]
