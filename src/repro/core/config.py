"""Siloz boot configuration (paper §5.3, §5.4).

The paper's deployment passes the subarray size as a kernel boot
parameter and hard-codes the EPT guard block shape: ``b = 32`` reserved
row groups per socket with the EPT row group at offset ``o = 12``, i.e.
12 guard row groups below and 19 above — enough margin to prevent bit
flips even if DIMM-internal half-row remaps (§2.3, §6) shuffle adjacency
within 32-aligned blocks.

For the bit-for-bit test machines (8- or 64-row subarrays), the block is
scaled proportionally so it still fits inside one subarray; the o/b
ratio and the "guards on both sides exceed the blast radius" invariant
are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dram.geometry import DRAMGeometry
from repro.errors import PlacementError


class EptProtection(Enum):
    """How EPT integrity is ensured (§5.4)."""

    GUARD_ROWS = "guard-rows"  # software-only: offlined barrier rows
    SECURE_EPT = "secure-ept"  # TDX/SNP detect-on-use integrity checks
    NONE = "none"  # for experiments that demonstrate the attack


@dataclass(frozen=True)
class SilozConfig:
    """Boot parameters for a Siloz instance."""

    #: Presumed subarray size in rows (the §5.3 boot parameter).  ``None``
    #: uses the geometry's true value; §7.4 passes 512/2048 here.
    rows_per_subarray: int | None = None
    #: Reserved row groups per socket for EPT protection (paper: b = 32).
    ept_block_row_groups: int = 32
    #: EPT row group's offset within the block (paper: o = 12).
    ept_row_group_offset: int = 12
    #: EPT row groups at that offset.  The paper's geometry needs
    #: exactly 1 (a 1.5 MiB row group holds 384 EPT pages); tiny test
    #: geometries scale this up so the EPT pool still fits a fleet of
    #: VMs.
    ept_row_group_count: int = 1
    #: Spacing between EPT row groups when count > 1.  EPT walks
    #: activate EPT rows at high rates, so multiple EPT rows must sit
    #: beyond each other's blast radius — guards fill the gaps.
    ept_row_group_stride: int = 1
    #: Which subarray group per socket is host-reserved (§5.2: one per
    #: socket; the rest are guest-reserved).
    host_group_index: int = 0
    ept_protection: EptProtection = EptProtection.GUARD_ROWS
    #: Blast radius the guard margins must exceed (modern DIMMs: 4; the
    #: test-scale disturbance profile uses 2).
    blast_radius: int = 4

    def __post_init__(self) -> None:
        b, o, k, s = (
            self.ept_block_row_groups,
            self.ept_row_group_offset,
            self.ept_row_group_count,
            self.ept_row_group_stride,
        )
        if b <= 0 or k <= 0 or s <= 0:
            raise PlacementError("block size, EPT row count and stride must be positive")
        if k > 1 and s <= self.blast_radius:
            raise PlacementError(
                f"EPT row stride {s} must exceed the blast radius "
                f"({self.blast_radius}): EPT walks hammer EPT rows"
            )
        last = o + (k - 1) * s
        if not 0 <= o or last >= b:
            raise PlacementError(
                f"EPT rows at offsets {o}..{last} must lie within the block [0, {b})"
            )
        if self.ept_protection is EptProtection.GUARD_ROWS:
            below, above = o, b - last - 1
            if below < self.blast_radius or above < self.blast_radius:
                raise PlacementError(
                    f"guard margins (below={below}, above={above}) must cover "
                    f"the blast radius ({self.blast_radius})"
                )
            # §5.4: margins must also survive DIMM-internal half-row
            # remaps within the (power-of-two) block — this is what
            # makes the paper's b=32, o=12 the right choice.
            from repro.units import is_power_of_two

            if is_power_of_two(b):
                from repro.core.guards import assert_remap_safe

                for i in range(k):
                    assert_remap_safe(
                        o + i * s, 1, block_rows=b, radius=self.blast_radius
                    )

    @classmethod
    def paper_default(cls) -> "SilozConfig":
        """b=32, o=12 on 1024-row subarrays (§5.4)."""
        return cls()

    @classmethod
    def scaled_for(
        cls,
        geom: DRAMGeometry,
        *,
        blast_radius: int = 2,
        ept_protection: EptProtection = EptProtection.GUARD_ROWS,
        rows_per_subarray: int | None = None,
    ) -> "SilozConfig":
        """Shrink the guard block for small test geometries, keeping the
        o/b ratio of 12/32 and the margin invariant."""
        rows = rows_per_subarray or geom.rows_per_subarray
        # Size the EPT pool to hold ~64 table pages even on tiny row
        # groups (the paper's 1.5 MiB row group holds 384 on its own);
        # multiple EPT rows are spread a blast radius apart so the walk
        # traffic on one cannot disturb another.
        pages_per_row_group = max(1, geom.row_group_bytes // (4 * 1024))
        count = max(1, -(-64 // pages_per_row_group))
        if ept_protection is not EptProtection.GUARD_ROWS:
            count = 1  # EPT pages come from the host pool, no block pool
        stride = 1 if count == 1 else blast_radius + 1
        span = (count - 1) * stride
        # Grow the block (power-of-two, at most one subarray) and nudge
        # the offset until the layout fits and is remap-safe.
        b = min(32, rows)
        last_error: PlacementError | None = None
        while b <= rows:
            preferred = max(blast_radius, b * 12 // 32)
            offsets = [preferred] + [
                o for o in range(blast_radius, b - span - blast_radius)
            ]
            for o in offsets:
                try:
                    return cls(
                        rows_per_subarray=rows_per_subarray,
                        ept_block_row_groups=b,
                        ept_row_group_offset=o,
                        ept_row_group_count=count,
                        ept_row_group_stride=stride,
                        blast_radius=blast_radius,
                        ept_protection=ept_protection,
                    )
                except PlacementError as exc:
                    last_error = exc
            b *= 2
        raise PlacementError(
            f"subarray of {rows} rows too small for guard block "
            f"(count={count}, stride={stride}, radius={blast_radius}): "
            f"{last_error}"
        )

    def effective_rows_per_subarray(self, geom: DRAMGeometry) -> int:
        return self.rows_per_subarray or geom.rows_per_subarray

    def effective_geometry(self, geom: DRAMGeometry) -> DRAMGeometry:
        """The geometry as Siloz manages it: hardware shape plus the
        *presumed* subarray size (§7.4's Siloz-512/-1024/-2048)."""
        rows = self.effective_rows_per_subarray(geom)
        if rows == geom.rows_per_subarray:
            return geom
        return geom.with_subarray_rows(rows)

    def validate_against(self, geom: DRAMGeometry) -> None:
        """Check this config is realisable on *geom* (divisibility, fit)."""
        rows = self.effective_rows_per_subarray(geom)
        if geom.rows_per_bank % rows:
            raise PlacementError(
                f"presumed subarray size {rows} does not divide "
                f"rows_per_bank {geom.rows_per_bank}"
            )
        if self.ept_block_row_groups > rows:
            raise PlacementError(
                f"EPT block ({self.ept_block_row_groups} row groups) must fit "
                f"inside one subarray ({rows} rows)"
            )

    @property
    def guard_row_groups(self) -> int:
        """Guard row groups per socket (the block minus the EPT rows)."""
        return self.ept_block_row_groups - self.ept_row_group_count

    def reserved_fraction(self, geom: DRAMGeometry) -> float:
        """Fraction of DRAM reserved for EPTs + guards: the paper's
        ~0.024 % (32 rows of 8 KiB per 1 GiB bank)."""
        return (self.ept_block_row_groups * geom.row_bytes) / geom.bank_bytes
