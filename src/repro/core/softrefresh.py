"""The software-refresh alternative Siloz rejected (paper §8.3).

To protect EPT rows without guard rows, one could refresh them from
software every 1 ms.  The paper tried and found Linux cannot keep that
deadline: task scheduling guarantees only a *minimum* of 1 ms between
runs (gaps over 32 ms were observed), and even running from the timer
tick, ticks get delayed or dropped (idle dynticks, disabled interrupts).

This module is a discrete-event model of those two designs plus the
guard-row baseline, with empirically-shaped delay distributions.  The
benches replay it to reproduce the §8.3 numbers: missed deadlines under
both software schemes, none under guard rows (which need no scheduling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ReproError


class RefreshScheme(Enum):
    """The three EPT-protection scheduling designs compared in §8.3."""
    TIMER_TASK = "timer-task"  # schedule_delayed_work-style 1 ms task
    TICK_IRQ = "tick-irq"  # run during the periodic tick interrupt
    GUARD_ROWS = "guard-rows"  # no runtime component at all


@dataclass(frozen=True)
class JitterProfile:
    """Scheduling-delay behaviour of a busy production host.

    ``long_delay_prob`` models the §8.3 pathologies: runqueue pile-ups
    for tasks, delayed/dropped ticks for IRQs."""

    base_jitter_ms: float
    long_delay_prob: float
    long_delay_ms_min: float
    long_delay_ms_max: float

    @classmethod
    def task_scheduling(cls) -> "JitterProfile":
        # Linux guarantees >= 1 ms between runs; under load the gap
        # stretches, occasionally past 32 ms (§8.3).
        return cls(
            base_jitter_ms=0.4,
            long_delay_prob=0.004,
            long_delay_ms_min=8.0,
            long_delay_ms_max=40.0,
        )

    @classmethod
    def tick_irq(cls) -> "JitterProfile":
        # Much tighter, but ticks are still delayed (irqs off) or
        # dropped (dynticks) now and then.
        return cls(
            base_jitter_ms=0.05,
            long_delay_prob=0.001,
            long_delay_ms_min=2.0,
            long_delay_ms_max=12.0,
        )


@dataclass
class RefreshLog:
    """Outcome of one simulated run."""

    scheme: RefreshScheme
    deadline_ms: float
    intervals_ms: list[float] = field(default_factory=list)

    @property
    def refreshes(self) -> int:
        return len(self.intervals_ms)

    @property
    def missed_deadlines(self) -> int:
        return sum(1 for gap in self.intervals_ms if gap > self.deadline_ms)

    @property
    def miss_rate(self) -> float:
        if not self.intervals_ms:
            return 0.0
        return self.missed_deadlines / len(self.intervals_ms)

    @property
    def max_interval_ms(self) -> float:
        return max(self.intervals_ms) if self.intervals_ms else 0.0

    @property
    def min_interval_ms(self) -> float:
        return min(self.intervals_ms) if self.intervals_ms else 0.0

    @property
    def vulnerable(self) -> bool:
        """Any missed deadline leaves EPT rows hammerable in the gap."""
        return self.missed_deadlines > 0


def simulate_refresh(
    scheme: RefreshScheme,
    *,
    duration_s: float = 10.0,
    deadline_ms: float = 1.0,
    profile: JitterProfile | None = None,
    seed: int = 0,
) -> RefreshLog:
    """Run one scheme for *duration_s* of simulated time.

    GUARD_ROWS returns an empty, never-vulnerable log: there is nothing
    to schedule, which is precisely why Siloz chose it (§8.3).
    """
    if duration_s <= 0 or deadline_ms <= 0:
        raise ReproError("duration and deadline must be positive")
    log = RefreshLog(scheme=scheme, deadline_ms=deadline_ms)
    if scheme is RefreshScheme.GUARD_ROWS:
        return log
    if profile is None:
        profile = (
            JitterProfile.task_scheduling()
            if scheme is RefreshScheme.TIMER_TASK
            else JitterProfile.tick_irq()
        )
    rng = random.Random(seed)
    now_ms = 0.0
    duration_ms = duration_s * 1000.0
    period_ms = deadline_ms  # the routine is armed at the deadline rate
    while now_ms < duration_ms:
        if rng.random() < profile.long_delay_prob:
            delay = rng.uniform(profile.long_delay_ms_min, profile.long_delay_ms_max)
        else:
            delay = abs(rng.gauss(0.0, profile.base_jitter_ms / 3))
        if scheme is RefreshScheme.TIMER_TASK:
            # Linux semantics: *at least* the period elapses (§8.3).
            gap = period_ms + delay
        else:
            gap = max(period_ms * 0.5, period_ms + delay - profile.base_jitter_ms / 2)
        log.intervals_ms.append(gap)
        now_ms += gap
    return log


def compare_schemes(
    *, duration_s: float = 10.0, deadline_ms: float = 1.0, seed: int = 0
) -> dict[RefreshScheme, RefreshLog]:
    """All three schemes under identical conditions (the §8.3 study)."""
    return {
        scheme: simulate_refresh(
            scheme, duration_s=duration_s, deadline_ms=deadline_ms, seed=seed
        )
        for scheme in RefreshScheme
    }
