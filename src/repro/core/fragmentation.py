"""Memory-fragmentation analysis for subarray-group provisioning
(paper §8.1).

Subarray groups are the provisioning quantum: a VM needing 512 MiB on a
1.5 GiB-group server strands 1 GiB.  How bad that is depends on the VM
size distribution and the group size, which in turn follows the memory
controller's address map (sub-NUMA clustering halves it; DDR5 doubles
it).  This module quantifies the §8.1 discussion:
:func:`stranding_report` evaluates a VM-size mix against a group size,
and :func:`sweep_group_sizes` shows the linear relationship the paper
points out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.units import GiB, MiB, fmt_bytes


@dataclass(frozen=True)
class StrandingReport:
    """Outcome of packing a VM mix into groups of one size."""

    group_bytes: int
    vm_count: int
    requested_bytes: int
    provisioned_bytes: int

    @property
    def stranded_bytes(self) -> int:
        return self.provisioned_bytes - self.requested_bytes

    @property
    def stranded_fraction(self) -> float:
        if self.provisioned_bytes == 0:
            return 0.0
        return self.stranded_bytes / self.provisioned_bytes

    def __str__(self) -> str:
        return (
            f"groups of {fmt_bytes(self.group_bytes)}: {self.vm_count} VMs, "
            f"{fmt_bytes(self.requested_bytes)} requested -> "
            f"{fmt_bytes(self.provisioned_bytes)} provisioned "
            f"({self.stranded_fraction * 100:.1f}% stranded)"
        )


def groups_for(vm_bytes: int, group_bytes: int) -> int:
    """Whole subarray groups needed to host one VM."""
    if vm_bytes <= 0 or group_bytes <= 0:
        raise ReproError("sizes must be positive")
    return -(-vm_bytes // group_bytes)


def stranding_report(vm_sizes: list[int], group_bytes: int) -> StrandingReport:
    """Pack each VM into whole groups; report stranded capacity."""
    if not vm_sizes:
        raise ReproError("need at least one VM size")
    provisioned = sum(groups_for(size, group_bytes) * group_bytes for size in vm_sizes)
    return StrandingReport(
        group_bytes=group_bytes,
        vm_count=len(vm_sizes),
        requested_bytes=sum(vm_sizes),
        provisioned_bytes=provisioned,
    )


def sweep_group_sizes(
    vm_sizes: list[int], group_sizes: list[int]
) -> list[StrandingReport]:
    """§8.1's lever: stranding vs group size (SNC halves it, finer
    address-map control would tailor it per VM class)."""
    return [stranding_report(vm_sizes, g) for g in sorted(group_sizes)]


#: A cloud-ish VM size mix: micro VMs through the paper's 160 GiB guest.
TYPICAL_VM_MIX: tuple[int, ...] = (
    512 * MiB,
    512 * MiB,
    1 * GiB,
    2 * GiB,
    4 * GiB,
    4 * GiB,
    8 * GiB,
    16 * GiB,
    32 * GiB,
    160 * GiB,
)


def provider_aligned_mix(group_bytes: int, count: int = 10) -> list[int]:
    """A mix sized at group multiples — the paper notes providers already
    sell VM sizes at similar granularity (§8.1), making stranding zero."""
    if count <= 0:
        raise ReproError("count must be positive")
    return [group_bytes * (i % 4 + 1) for i in range(count)]
