"""Siloz (SOSP 2023) reproduction.

Siloz is a hypervisor that prevents inter-VM Rowhammer by confining each
VM (and the host) to private DRAM *subarray groups* — silicon-isolated
slices that still span every bank, preserving bank-level parallelism.
This package reproduces the whole system on a simulated substrate: a
bit-level DDR4 model, a Skylake-like address decode, Linux-style memory
management (buddy/NUMA/cgroups), KVM-style EPTs, a baseline hypervisor,
the Siloz hypervisor, a Blacksmith-style Rowhammer fuzzer, and the
workload/measurement harness behind every table and figure.

Quickstart::

    from repro import DRAMGeometry, Machine, SilozHypervisor

    machine = Machine.small()           # simulated host
    hv = SilozHypervisor.boot(machine)  # Siloz with subarray-group nodes
    vm = hv.create_vm(name="tenant0", memory_bytes=machine.geom.subarray_group_bytes)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.dram.disturbance import BitFlip, DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram

__version__ = "1.0.0"

__all__ = [
    "BitFlip",
    "DRAMGeometry",
    "DisturbanceProfile",
    "SimulatedDram",
    "SkylakeMapping",
    "__version__",
]
