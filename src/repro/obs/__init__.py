"""``repro.obs`` — structured tracing and metrics for the simulator.

One process-wide switch, one tracer, one metrics registry.  The
contract with the hot paths (``repro.dram``, ``repro.engine.batch``,
``repro.memctrl``, ``repro.hv``, ``repro.faults``, ``repro.core``) is:

.. code-block:: python

    from repro import obs
    ...
    if obs.ENABLED:                     # one module-attribute read
        obs.emit(FlipEvent(...))        # construct only when observing

``ENABLED`` is ``False`` by default and instrumentation sites check it
*before* constructing any event record, so disabled observability costs
one branch per site — the perf guard in ``benchmarks/bench_engine.py``
holds this under 2 % on the activation hot path, and
``tests/test_obs.py`` asserts the disabled path allocates nothing.

Every emitted event lands in the ring-buffered :class:`Tracer` and is
folded into the :class:`MetricsRegistry`, so metrics are exactly the
aggregation of the trace.  Exporters (JSONL, Chrome trace format, plain
text) live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.events import (  # noqa: F401  (public re-exports)
    ActBatchEvent,
    AdmissionEvent,
    AuditEvent,
    BakeoffEvent,
    ChaosEvent,
    EccWordEvent,
    EVENT_TYPES,
    FaultInjectionEvent,
    FlipEvent,
    HealthTransitionEvent,
    MceEvent,
    MemTraceEvent,
    PlacementEvent,
    RefreshWindowEvent,
    RemapEvent,
    RemediationEvent,
    ServeRequestEvent,
    SpanEvent,
    TraceEvent,
    TrrRefEvent,
    TrrSampleEvent,
    VmMigrationEvent,
)
from repro.obs.metrics import (  # noqa: F401
    COUNT_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIM_SECONDS_EDGES,
    WALL_NS_EDGES,
)
from repro.obs.tracer import DEFAULT_CAPACITY, NULL_SPAN, NullSpan, Span, Tracer

#: Master fast-path guard.  Instrumentation sites read this module
#: attribute and skip all record construction while it is ``False``.
#: Mutate it only through :func:`enable` / :func:`disable`.
ENABLED: bool = False

#: The process-wide metrics registry.  Always constructed (it is cheap
#: and lets tests poke at it), only *fed* while observability is on.
METRICS: MetricsRegistry = MetricsRegistry()

_TRACER: Optional[Tracer] = None


def enable(*, capacity: int = DEFAULT_CAPACITY, reset: bool = False) -> Tracer:
    """Turn observability on; returns the process tracer.

    Idempotent: re-enabling keeps the existing tracer (and its buffered
    events) unless ``reset`` asks for a clean slate.  ``capacity`` only
    applies when a new tracer is created.
    """
    global ENABLED, _TRACER
    if _TRACER is None:
        _TRACER = Tracer(capacity=capacity)
    elif reset:
        _TRACER.clear()
    if reset:
        METRICS.reset()
    ENABLED = True
    return _TRACER


def disable(*, reset: bool = False) -> None:
    """Turn observability off (buffered events survive unless *reset*)."""
    global ENABLED, _TRACER
    ENABLED = False
    if reset:
        if _TRACER is not None:
            _TRACER.clear()
        _TRACER = None
        METRICS.reset()


def tracer() -> Optional[Tracer]:
    """The process tracer, or ``None`` while tracing has never been on."""
    return _TRACER


def emit(event: TraceEvent) -> None:
    """Record one event and fold it into the metrics registry.

    Callers are expected to have checked :data:`ENABLED` already (that
    is the zero-cost contract); calling while disabled is still safe
    and simply drops the event.
    """
    if not ENABLED or _TRACER is None:
        return
    _TRACER.record(event)
    METRICS.fold_event(event)


def span(name: str, *, sim_when: Optional[float] = None):
    """Wall-clock-timed phase: ``with obs.span("eval.fig5"): ...``.

    Returns a no-op context manager while disabled, so call sites need
    no guard of their own (spans sit on cold paths; the hot paths use
    the ``ENABLED`` check directly).
    """
    if not ENABLED or _TRACER is None:
        return NULL_SPAN
    return Span(name, _TRACER, sim_when=sim_when)


def metrics_snapshot() -> dict:
    """Plain-data snapshot of every metric (embeddable in reports)."""
    return METRICS.snapshot()


def render_metrics() -> str:
    """Plain-text dump of the current metrics (the ``--metrics`` output)."""
    return METRICS.render_text()
