"""Trace exporters: JSONL event log, Chrome trace format, summaries.

- :func:`write_jsonl` / :func:`read_jsonl` — one JSON object per line,
  ``{"seq": n, "kind": tag, ...payload}``.  The round trip restores the
  typed records, so replays can be diffed field-by-field.
- :func:`to_chrome_trace` — the ``chrome://tracing`` / Perfetto JSON
  shape.  Simulated seconds become microseconds on the timeline;
  events without a clock inherit the last clock seen on the stream.
- :func:`sequence_signature` — the deterministic comparison key used by
  the differential tests and ``repro trace --compare-backends``:
  wall-clock spans are dropped, everything else must match exactly.
- :func:`summarize` — per-kind counts and the simulated-time extent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.obs.events import TraceEvent, event_from_payload, signature_of

PathLike = Union[str, "object"]


class ExportError(ReproError):
    """A trace file could not be written or parsed."""


def event_to_dict(event: TraceEvent, seq: int) -> Dict[str, Any]:
    """Wire form of one event (stable across exporter formats)."""
    out: Dict[str, Any] = {"seq": seq, "kind": event.kind}
    out.update(event.to_payload())
    return out


def write_jsonl(path: PathLike, events: Iterable[TraceEvent]) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
        for seq, event in enumerate(events):
            fh.write(json.dumps(event_to_dict(event, seq), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Parse a JSONL trace back into typed event records."""
    out: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:  # type: ignore[arg-type]
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record.pop("kind")
                record.pop("seq", None)
                out.append(event_from_payload(kind, record))
            except (ValueError, KeyError) as exc:
                raise ExportError(f"{path}:{lineno}: bad trace line: {exc}") from exc
    return out


def to_chrome_trace(
    events: Iterable[TraceEvent], *, process_name: str = "repro"
) -> Dict[str, Any]:
    """Chrome trace-format dict (``json.dump`` it to a ``.json`` file).

    Instant events (``ph: "i"``) carry the simulated clock as the
    timeline; spans become complete events (``ph: "X"``) whose duration
    is the measured wall time, placed at their simulated anchor.
    """
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": process_name},
        }
    ]
    last_clock = 0.0
    for seq, event in enumerate(events):
        when = event.when
        if when is not None:
            last_clock = when
        ts_us = last_clock * 1e6
        payload = event.to_payload()
        payload["seq"] = seq
        if event.kind == "span":
            trace_events.append(
                {
                    "name": payload.get("name", "span"),
                    "cat": "span",
                    "ph": "X",
                    "ts": ts_us,
                    "dur": payload.get("wall_ns", 0) / 1e3,
                    "pid": 1,
                    "tid": 1,
                    "args": payload,
                }
            )
        else:
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": event.kind,
                    "ph": "i",
                    "s": "g",
                    "ts": ts_us,
                    "pid": 1,
                    "tid": 1,
                    "args": payload,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: PathLike, events: Iterable[TraceEvent]) -> int:
    """Write the Chrome trace file; returns the number of trace events."""
    doc = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def sequence_signature(
    events: Iterable[TraceEvent],
) -> List[Tuple[Any, ...]]:
    """Deterministic event sequence: the comparison key for differential
    scalar-vs-batched runs (wall-clock spans excluded)."""
    out: List[Tuple[Any, ...]] = []
    for event in events:
        sig = signature_of(event)
        if sig is not None:
            out.append(sig)
    return out


def summarize(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Per-kind counts plus the simulated-clock extent of the trace."""
    counts: Dict[str, int] = {}
    first: Optional[float] = None
    last: Optional[float] = None
    total = 0
    for event in events:
        total += 1
        counts[event.kind] = counts.get(event.kind, 0) + 1
        when = event.when
        if when is not None:
            if first is None:
                first = when
            last = when
    return {
        "events": total,
        "by_kind": dict(sorted(counts.items())),
        "first_clock": first,
        "last_clock": last,
    }


def render_summary(summary: Dict[str, Any], *, dropped: int = 0) -> str:
    """Human-readable form of :func:`summarize` for the CLI."""
    lines = [f"trace events: {summary['events']} (dropped: {dropped})"]
    for kind, count in summary["by_kind"].items():
        lines.append(f"  {kind:<18} {count}")
    if summary["first_clock"] is not None:
        lines.append(
            f"simulated clock: {summary['first_clock']:.6f}s "
            f"-> {summary['last_clock']:.6f}s"
        )
    return "\n".join(lines)
