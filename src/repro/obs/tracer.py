"""The process-wide tracer: a ring-buffered sink of typed events.

The ring is a fixed-size list written modulo capacity, so a
long-running simulation keeps the most recent ``capacity`` events at a
constant memory footprint; ``dropped`` counts what the ring overwrote.
``emitted`` counts every event ever recorded (drops included), which
gives tests a cheap "did the hot path construct anything?" probe.

Nothing in this module reads the global enabled flag — the flag lives
in :mod:`repro.obs` and is checked by the *instrumentation sites*
before any event object is constructed, which is what makes disabled
tracing free.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional

from repro.errors import ReproError
from repro.obs.events import SpanEvent, TraceEvent

#: Default ring capacity: large enough for every event of the seeded CI
#: scenarios, small enough that an accidental always-on tracer cannot
#: exhaust memory.
DEFAULT_CAPACITY = 1 << 16


class TracerError(ReproError):
    """Invalid tracer construction or misuse."""


class Tracer:
    """Ring-buffered event sink with a last-seen simulated clock."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise TracerError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: List[TraceEvent] = []
        self._next = 0  # write index once the ring is full
        self.emitted = 0
        self.dropped = 0
        #: Last simulated clock carried by any event (exporter fallback
        #: for events whose layer cannot see the module clock).
        self.last_clock = 0.0

    def record(self, event: TraceEvent) -> None:
        """Append one event (overwrites the oldest when full)."""
        when = event.when
        if when is not None:
            self.last_clock = when
        self.emitted += 1
        ring = self._ring
        if len(ring) < self.capacity:
            ring.append(event)
        else:
            ring[self._next] = event
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def events(self) -> List[TraceEvent]:
        """Buffered events, oldest first."""
        return self._ring[self._next :] + self._ring[: self._next]

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Empty the ring and reset the counters."""
        self._ring.clear()
        self._next = 0
        self.emitted = 0
        self.dropped = 0
        self.last_clock = 0.0


class Span:
    """Context manager timing one phase on the wall clock.

    On exit it emits a :class:`SpanEvent` (name + wall nanoseconds) into
    the given tracer; the metrics fold turns those into per-phase
    duration histograms.  ``sim_when`` pins the span to a simulated
    timestamp when the caller knows one.
    """

    __slots__ = ("name", "_tracer", "_sim_when", "_start", "wall_ns")

    def __init__(
        self,
        name: str,
        tracer: Optional[Tracer],
        *,
        sim_when: Optional[float] = None,
    ) -> None:
        self.name = name
        self._tracer = tracer
        self._sim_when = sim_when
        self._start = 0
        self.wall_ns = 0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_ns = time.perf_counter_ns() - self._start
        if self._tracer is not None:
            from repro import obs  # local import: obs imports this module

            obs.emit(
                SpanEvent(name=self.name, wall_ns=self.wall_ns, when=self._sim_when)
            )


class NullSpan:
    """No-op span handed out when observability is disabled."""

    __slots__ = ()
    name = ""
    wall_ns = 0

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = NullSpan()
