"""Typed trace-event records for the observability layer.

Every record is a frozen, slotted dataclass with a class-level ``kind``
tag (stable wire name) and a ``deterministic`` flag.  Deterministic
events carry only simulation-derived payloads (simulated clock, media
coordinates, counts), so two runs of the same seed — on either
simulation backend — emit byte-identical sequences of them; the
differential trace tests key off exactly that.  Non-deterministic
events (wall-clock spans) are excluded from sequence comparison.

Timestamps are **simulated seconds** (``when``); events emitted from
layers that cannot see the module clock carry ``when=None`` and the
exporters substitute the last clock seen on the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Tuple, Type


@dataclass(frozen=True)
class TraceEvent:
    """Base record; concrete events define ``kind`` and payload fields."""

    kind: ClassVar[str] = "event"
    deterministic: ClassVar[bool] = True

    def to_payload(self) -> Dict[str, Any]:
        """Payload fields as a plain dict (wire form, minus the tag)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ActBatchEvent(TraceEvent):
    """One vector of ACTs entered the activation hot path."""

    kind: ClassVar[str] = "act_batch"
    socket: int = 0
    bank: int = 0
    rows: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class RefreshWindowEvent(TraceEvent):
    """A full refresh window elapsed (every row refreshed)."""

    kind: ClassVar[str] = "refresh_window"
    when: Optional[float] = None


@dataclass(frozen=True)
class TrrSampleEvent(TraceEvent):
    """The TRR sampler observed one ACT (Misra-Gries update)."""

    kind: ClassVar[str] = "trr_sample"
    socket: int = 0
    bank: int = 0
    row: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class TrrRefEvent(TraceEvent):
    """A TRR REF tick fired: sampled aggressors' neighbours refreshed."""

    kind: ClassVar[str] = "trr_ref"
    socket: int = 0
    bank: int = 0
    targets: int = 0
    victims: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class EccWordEvent(TraceEvent):
    """One non-clean SEC-DED word classification (CE/UE/silent)."""

    kind: ClassVar[str] = "ecc_word"
    socket: int = 0
    bank: int = 0
    row: int = 0
    word: int = 0
    outcome: str = ""
    flipped_bits: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class FlipEvent(TraceEvent):
    """One disturbance bit flip applied to stored data (media coords)."""

    kind: ClassVar[str] = "flip"
    socket: int = 0
    bank: int = 0
    row: int = 0
    bit: int = 0
    aggressor_row: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class RemapEvent(TraceEvent):
    """A backing block's EPT/IOMMU leaves were retargeted (migration)."""

    kind: ClassVar[str] = "remap"
    vm: str = ""
    old: int = 0
    new: int = 0
    size: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class HealthTransitionEvent(TraceEvent):
    """A row group moved along the health escalation ladder."""

    kind: ClassVar[str] = "health_transition"
    socket: int = 0
    row: int = 0
    old: str = ""
    new: str = ""
    level: float = 0.0
    when: Optional[float] = None


@dataclass(frozen=True)
class FaultInjectionEvent(TraceEvent):
    """The fault injector armed/fired/enforced one planned fault."""

    kind: ClassVar[str] = "fault_injection"
    action: str = ""
    detail: str = ""
    when: Optional[float] = None


@dataclass(frozen=True)
class MceEvent(TraceEvent):
    """A machine-check incident was classified and acted on."""

    kind: ClassVar[str] = "mce"
    hpa: int = 0
    outcome: str = ""
    victim_vm: Optional[str] = None
    when: Optional[float] = None


@dataclass(frozen=True)
class RemediationEvent(TraceEvent):
    """One runtime row-group offlining finished (live migration)."""

    kind: ClassVar[str] = "remediation"
    socket: int = 0
    row: int = 0
    migrated: int = 0
    deferred: int = 0
    offlined_bytes: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class MemTraceEvent(TraceEvent):
    """A memory-controller trace replay completed (aggregates)."""

    kind: ClassVar[str] = "memctrl_trace"
    accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    remote: int = 0
    total_time_ns: float = 0.0
    bytes_transferred: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class PlacementEvent(TraceEvent):
    """A fleet host admitted one VM onto guest-reserved nodes."""

    kind: ClassVar[str] = "placement"
    host: int = 0
    vm: str = ""
    node_count: int = 0
    group_count: int = 0
    bytes: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class AdmissionEvent(TraceEvent):
    """The fleet admission queue decided one tenant request."""

    kind: ClassVar[str] = "admission"
    vm: str = ""
    outcome: str = ""  # "admitted" | "rejected"
    reason: str = ""  # rejection reason tag, "" when admitted
    host: int = -1  # placing host id, -1 when rejected
    attempts: int = 1
    when: Optional[float] = None


@dataclass(frozen=True)
class VmMigrationEvent(TraceEvent):
    """One VM moved between fleet hosts (cross-host live migration)."""

    kind: ClassVar[str] = "vm_migration"
    vm: str = ""
    src_host: int = 0
    dst_host: int = 0
    bytes: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class ChaosEvent(TraceEvent):
    """One chaos-engineering event was injected or handled."""

    kind: ClassVar[str] = "chaos"
    chaos: str = ""  # chaos kind tag ("host-crash", "worker-death", ...)
    host: int = -1  # victim host id, -1 for fleet-wide events
    detail: str = ""
    when: Optional[float] = None


@dataclass(frozen=True)
class AuditEvent(TraceEvent):
    """One isolation-invariant audit pass completed."""

    kind: ClassVar[str] = "audit"
    phase: str = ""  # "placement" | "evacuation:..." | "final"
    hosts: int = 0  # surviving hosts audited
    violations: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class BakeoffEvent(TraceEvent):
    """One mitigation finished its bake-off campaign."""

    kind: ClassVar[str] = "bakeoff"
    mitigation: str = ""
    containment_rate: float = 1.0
    escaped_flips: int = 0
    victim_flips: int = 0
    loss_fraction: float = 0.0
    refreshes_per_kact: float = 0.0
    when: Optional[float] = None


@dataclass(frozen=True)
class SpanEvent(TraceEvent):
    """A wall-clock-timed phase (non-deterministic payload)."""

    kind: ClassVar[str] = "span"
    deterministic: ClassVar[bool] = False
    name: str = ""
    wall_ns: int = 0
    when: Optional[float] = None


@dataclass(frozen=True)
class ServeRequestEvent(TraceEvent):
    """The serve daemon completed one request (non-deterministic:
    carries the wall-clock handling latency)."""

    kind: ClassVar[str] = "serve_request"
    deterministic: ClassVar[bool] = False
    op: str = ""
    outcome: str = ""  # "ok" or the typed error code tag
    reason: str = ""  # fault reason tag, "" on success
    wall_ns: int = 0
    when: Optional[float] = None


#: Every concrete event type, keyed by its stable wire tag.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        ActBatchEvent,
        RefreshWindowEvent,
        TrrSampleEvent,
        TrrRefEvent,
        EccWordEvent,
        FlipEvent,
        RemapEvent,
        HealthTransitionEvent,
        FaultInjectionEvent,
        MceEvent,
        RemediationEvent,
        MemTraceEvent,
        PlacementEvent,
        AdmissionEvent,
        VmMigrationEvent,
        ChaosEvent,
        AuditEvent,
        BakeoffEvent,
        SpanEvent,
        ServeRequestEvent,
    )
}


def event_from_payload(kind: str, payload: Dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its wire form (JSONL import)."""
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise KeyError(f"unknown trace event kind {kind!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in names})


def signature_of(event: TraceEvent) -> Optional[Tuple[Any, ...]]:
    """Deterministic comparison key for one event, or ``None`` for
    events whose payload is wall-clock-derived (spans)."""
    if not event.deterministic:
        return None
    return (event.kind, *(getattr(event, f.name) for f in fields(event)))
