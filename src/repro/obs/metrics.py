"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is deliberately tiny and dependency-free (no Prometheus
client): the simulator needs *deterministic, inspectable* numbers it can
embed next to Table 3 / Figure 5 outputs, not a scrape endpoint.  All
three instrument kinds are get-or-create by name so instrumentation
sites stay one-liners, and :meth:`MetricsRegistry.fold_event` derives
the standard counters/histograms from the trace-event stream so metrics
and traces can never disagree about what happened.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.events import (
    ActBatchEvent,
    AdmissionEvent,
    AuditEvent,
    BakeoffEvent,
    ChaosEvent,
    EccWordEvent,
    FaultInjectionEvent,
    FlipEvent,
    HealthTransitionEvent,
    MceEvent,
    MemTraceEvent,
    PlacementEvent,
    RefreshWindowEvent,
    RemapEvent,
    RemediationEvent,
    ServeRequestEvent,
    SpanEvent,
    TraceEvent,
    TrrRefEvent,
    TrrSampleEvent,
    VmMigrationEvent,
)


class MetricsError(ReproError):
    """Invalid metric construction or misuse."""


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move both ways (set-to-latest semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


#: Default bucket edges for simulated-time histograms (seconds).
SIM_SECONDS_EDGES: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)
#: Default bucket edges for wall-clock span durations (nanoseconds).
WALL_NS_EDGES: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
)
#: Default bucket edges for small integer sizes (batch lengths, counts).
COUNT_EDGES: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)


class Histogram:
    """Fixed-bucket histogram: cumulative-style counts plus sum/min/max.

    ``edges`` are the inclusive upper bounds of each finite bucket; one
    implicit ``+Inf`` bucket catches the overflow.  Edges are fixed at
    construction (no dynamic rebinning) so two runs of the same scenario
    always land observations in the same buckets.
    """

    __slots__ = ("name", "edges", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise MetricsError(f"histogram {name!r} needs at least one edge")
        as_floats = [float(e) for e in edges]
        if sorted(as_floats) != as_floats or len(set(as_floats)) != len(as_floats):
            raise MetricsError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.edges: Tuple[float, ...] = tuple(as_floats)
        self.buckets: List[int] = [0] * (len(as_floats) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation into its (low, high] bucket."""
        self.buckets[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_bounds(self) -> List[Tuple[float, float]]:
        """(low, high] bounds per bucket; the last high is +Inf."""
        bounds: List[Tuple[float, float]] = []
        low = float("-inf")
        for edge in self.edges:
            bounds.append((low, edge))
            low = edge
        bounds.append((low, float("inf")))
        return bounds


class MetricsRegistry:
    """Get-or-create home for every metric in the process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        got = self._counters.get(name)
        if got is None:
            got = self._counters[name] = Counter(name)
        return got

    def gauge(self, name: str) -> Gauge:
        got = self._gauges.get(name)
        if got is None:
            got = self._gauges[name] = Gauge(name)
        return got

    def histogram(
        self, name: str, edges: Sequence[float] = COUNT_EDGES
    ) -> Histogram:
        """Get-or-create a histogram (*edges* only bind on creation)."""
        got = self._histograms.get(name)
        if got is None:
            got = self._histograms[name] = Histogram(name, edges)
        return got

    def reset(self) -> None:
        """Drop every metric (between CLI runs / tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- event folding ---------------------------------------------------

    def fold_event(self, event: TraceEvent) -> None:
        """Derive the standard metrics from one trace event.

        Called by :func:`repro.obs.emit` for every recorded event, so
        counters/histograms are exactly the aggregation of the trace.
        """
        if type(event) is FlipEvent:
            self.counter("dram.flips").inc()
        elif type(event) is ActBatchEvent:
            self.counter("dram.act_batches").inc()
            self.counter("dram.batched_acts").inc(event.rows)
            self.histogram("dram.act_batch_rows", COUNT_EDGES).observe(event.rows)
        elif type(event) is TrrSampleEvent:
            self.counter("trr.samples").inc()
        elif type(event) is TrrRefEvent:
            self.counter("trr.refs").inc()
            self.counter("trr.victim_refreshes").inc(event.victims)
        elif type(event) is RefreshWindowEvent:
            self.counter("dram.refresh_windows").inc()
        elif type(event) is EccWordEvent:
            self.counter(f"ecc.{event.outcome}").inc()
        elif type(event) is RemapEvent:
            self.counter("hv.remaps").inc()
            self.counter("hv.remapped_bytes").inc(event.size)
        elif type(event) is HealthTransitionEvent:
            self.counter(f"health.to_{event.new}").inc()
        elif type(event) is FaultInjectionEvent:
            self.counter(f"faults.{event.action}").inc()
        elif type(event) is MceEvent:
            self.counter(f"mce.{event.outcome}").inc()
        elif type(event) is RemediationEvent:
            self.counter("remediation.row_groups").inc()
            self.counter("remediation.migrated_blocks").inc(event.migrated)
            self.counter("remediation.deferred_blocks").inc(event.deferred)
            self.counter("remediation.offlined_bytes").inc(event.offlined_bytes)
        elif type(event) is MemTraceEvent:
            self.counter("memctrl.traces").inc()
            self.counter("memctrl.accesses").inc(event.accesses)
            self.counter("memctrl.row_hits").inc(event.row_hits)
            self.counter("memctrl.row_misses").inc(event.row_misses)
        elif type(event) is PlacementEvent:
            self.counter("fleet.placements").inc()
            self.counter("fleet.placed_bytes").inc(event.bytes)
            self.histogram("fleet.placement_nodes", COUNT_EDGES).observe(
                event.node_count
            )
        elif type(event) is AdmissionEvent:
            self.counter(f"fleet.admission.{event.outcome}").inc()
            if event.reason:
                self.counter(f"fleet.rejected.{event.reason}").inc()
            self.histogram("fleet.admission_attempts", COUNT_EDGES).observe(
                event.attempts
            )
        elif type(event) is VmMigrationEvent:
            self.counter("fleet.migrations").inc()
            self.counter("fleet.migrated_bytes").inc(event.bytes)
        elif type(event) is ChaosEvent:
            self.counter(f"chaos.{event.chaos}").inc()
        elif type(event) is AuditEvent:
            self.counter("audit.audits").inc()
            self.counter("audit.violations").inc(event.violations)
        elif type(event) is BakeoffEvent:
            self.counter("bakeoff.campaigns").inc()
            m = event.mitigation
            self.gauge(f"bakeoff.{m}.containment_rate").set(event.containment_rate)
            self.gauge(f"bakeoff.{m}.loss_fraction").set(event.loss_fraction)
            self.gauge(f"bakeoff.{m}.refreshes_per_kact").set(
                event.refreshes_per_kact
            )
        elif type(event) is SpanEvent:
            self.histogram(f"span.{event.name}.wall_ns", WALL_NS_EDGES).observe(
                event.wall_ns
            )
        elif type(event) is ServeRequestEvent:
            self.counter("serve.requests").inc()
            self.counter(f"serve.ops.{event.op}").inc()
            if event.outcome != "ok":
                self.counter(f"serve.errors.{event.outcome}").inc()
            if event.outcome in ("busy", "capacity"):
                self.counter("serve.rejections").inc()
                if event.reason:
                    self.counter(f"serve.rejections.{event.reason}").inc()
            self.histogram("serve.request_wall_ns", WALL_NS_EDGES).observe(
                event.wall_ns
            )

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time plain-data copy of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def render_text(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """Plain-text metrics dump (the ``--metrics`` CLI output)."""
        snap = snapshot if snapshot is not None else self.snapshot()
        lines: List[str] = ["# metrics"]
        for name, value in snap["counters"].items():
            lines.append(f"counter {name} {_fmt(value)}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge {name} {_fmt(value)}")
        for name, hist in snap["histograms"].items():
            lines.append(
                f"histogram {name} count={hist['count']} sum={_fmt(hist['sum'])}"
                f" min={_fmt(hist['min'])} max={_fmt(hist['max'])}"
            )
            for edge, bucket in zip(
                [*hist["edges"], float("inf")], hist["buckets"]
            ):
                if bucket:
                    lines.append(f"  le={_fmt(edge)} {bucket}")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"
