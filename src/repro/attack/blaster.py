"""BLASTER-style blast-radius characterisation (paper §9 related work;
feeds §5.4's guard margins).

Guard-row counts must cover how *far* disturbance reaches ("4 guard rows
per normal row on modern server DIMMs" in the ZebRAM discussion, §3).
BLASTER characterises that blast radius empirically: hammer single rows
hard, record how far from the aggressor bits flip.  This module does the
same against the simulated DIMM so Siloz can derive its ``blast_radius``
boot parameter from measurement instead of datasheet folklore:
``SilozHypervisor.boot(machine, measure_blast_radius=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.module import SimulatedDram
from repro.errors import AttackError


@dataclass
class BlastProfile:
    """Observed flip distances from single-row hammering."""

    samples: int = 0
    flips_by_distance: dict[int, int] = field(default_factory=dict)

    @property
    def max_distance(self) -> int:
        return max(self.flips_by_distance, default=0)

    @property
    def total_flips(self) -> int:
        return sum(self.flips_by_distance.values())

    def radius(self, coverage: float = 1.0) -> int:
        """Smallest radius covering *coverage* of observed flips.

        Guard design wants 1.0 (every observed flip); loosen only for
        best-effort analyses."""
        if not 0 < coverage <= 1.0:
            raise AttackError("coverage must be in (0, 1]")
        if not self.flips_by_distance:
            raise AttackError("no flips observed; hammer harder")
        needed = coverage * self.total_flips
        running = 0
        for distance in sorted(self.flips_by_distance):
            running += self.flips_by_distance[distance]
            if running >= needed:
                return distance
        return self.max_distance


def measure_blast_radius(
    dram: SimulatedDram,
    *,
    socket: int = 0,
    bank: int = 0,
    aggressor_rows: list[int] | None = None,
    activations: int = 20_000,
) -> BlastProfile:
    """Hammer single aggressors and histogram flip distances.

    Aggressors default to a few rows mid-subarray (away from boundaries,
    so clipping does not hide long-range flips).
    """
    geom = dram.geom
    if aggressor_rows is None:
        mid = geom.rows_per_subarray // 2
        step = geom.rows_per_subarray
        aggressor_rows = [
            mid + k * step for k in range(min(3, geom.subarrays_per_bank))
        ]
    if not aggressor_rows:
        raise AttackError("need at least one aggressor row")
    profile = BlastProfile()
    for row in aggressor_rows:
        geom.check_row(row)
        before = len(dram.flips_log)
        dram.activate_batch(socket, bank, [row] * activations)
        profile.samples += 1
        for flip in dram.flips_log[before:]:
            distance = abs(flip.row - row)
            profile.flips_by_distance[distance] = (
                profile.flips_by_distance.get(distance, 0) + 1
            )
    return profile
