"""mFIT-style subarray-size inference (paper §4.1).

DDR4 does not report subarray sizes.  Vendors can share them, but even
without cooperation one can infer them: the paper applies the mFIT
methodology to its evaluation server and observes *"a pattern of failed
Rowhammer attacks at multiples of 1024 rows"*, inferring 1024-row
subarrays.  The physics: a double-sided pair whose aggressors straddle a
subarray boundary puts only *single-sided* pressure on the victim —
roughly half — so boundary victims need about twice the activations to
flip (or never flip within a budget).  Boundary spacing is the subarray
size.

:func:`activations_to_flip` measures one victim's effective threshold;
:func:`infer_subarray_rows` sweeps victims, classifies the outliers as
boundaries, and returns their period.  This is what lets Siloz run on a
server whose DRAM vendor shares nothing.
"""

from __future__ import annotations

from repro.dram.module import SimulatedDram
from repro.errors import AttackError
from repro.units import is_power_of_two


def activations_to_flip(
    dram: SimulatedDram,
    socket: int,
    bank: int,
    victim_row: int,
    *,
    cap: int = 1 << 17,
    step: int = 256,
) -> int | None:
    """Double-sided hammer around *victim_row* until it flips.

    Returns the total activations issued when the first flip in the
    victim appeared, or None if *cap* activations did not suffice (the
    boundary signature when cap is generous)."""
    geom = dram.geom
    geom.check_row(victim_row)
    lo, hi = victim_row - 1, victim_row + 1
    if lo < 0 or hi >= geom.rows_per_bank:
        raise AttackError(f"victim {victim_row} has no double-sided neighbours")
    issued = 0
    while issued < cap:
        before = len(dram.flips_log)
        for _ in range(step // 2):
            dram.activate(socket, bank, lo)
            dram.activate(socket, bank, hi)
        issued += step
        if any(f.row == victim_row for f in dram.flips_log[before:]):
            return issued
    return None


def infer_subarray_rows(
    dram: SimulatedDram,
    *,
    socket: int = 0,
    bank: int = 0,
    max_rows: int | None = None,
    boundary_factor: float = 1.4,
) -> int:
    """Infer the subarray size from the per-row flip-threshold profile.

    Probes every interior row of the first *max_rows* rows.  Victims
    needing more than ``boundary_factor`` x the median activations (or
    never flipping) sit against electrical isolation; their spacing is
    the subarray size.  Raises if no boundary is visible (window too
    small) or the pattern is aperiodic (heterogeneous subarrays, which
    the paper handles with per-set groups, §4.1).
    """
    geom = dram.geom
    limit = max_rows or min(geom.rows_per_bank, 4 * geom.rows_per_subarray)
    if limit < 4:
        raise AttackError("probe window too small")
    needed: dict[int, int | None] = {}
    for victim in range(1, limit - 1):
        needed[victim] = activations_to_flip(dram, socket, bank, victim)
    finite = sorted(v for v in needed.values() if v is not None)
    if not finite:
        raise AttackError("nothing flipped; raise the cap or susceptibility")
    median = finite[len(finite) // 2]
    failures = sorted(
        victim
        for victim, acts in needed.items()
        if acts is None or acts > boundary_factor * median
    )
    # Boundaries always fail as *adjacent pairs* (rows k*S-1 and k*S:
    # the last row of one subarray and the first of the next, each
    # single-sided).  Lone high-threshold rows are just strong cells —
    # filter them by requiring runs of at least two adjacent failures.
    runs: list[list[int]] = []
    for row in failures:
        if runs and row == runs[-1][-1] + 1:
            runs[-1].append(row)
        else:
            runs.append([row])
    starts = [run[0] for run in runs if len(run) >= 2]
    if not starts:
        raise AttackError(
            f"no boundary pair found in {limit} rows; widen the probe window"
        )
    if len(starts) == 1:
        return starts[0] + 1  # failure pairs begin at S-1
    gaps = {b - a for a, b in zip(starts, starts[1:])}
    if len(gaps) != 1:
        raise AttackError(
            f"aperiodic boundary pattern {starts}: heterogeneous subarrays?"
        )
    return gaps.pop()


def verify_inference(dram: SimulatedDram, inferred_rows: int) -> bool:
    """Sanity conditions the paper checks: the inferred size divides the
    bank and is in the modern 512-2048 range — or, for scaled test
    geometries, is at least a power of two."""
    geom = dram.geom
    if inferred_rows <= 0 or geom.rows_per_bank % inferred_rows:
        return False
    return is_power_of_two(inferred_rows) or 512 <= inferred_rows <= 2048
