"""Rowhammer attack tooling (paper §7.1).

The paper evaluates Siloz by running an extended Blacksmith fuzzer
inside a VM and checking where bit flips land.  This package provides
the same machinery against the simulated stack:

- :mod:`repro.attack.patterns` — many-sided hammering patterns with
  decoy slots (the frequency/phase structure Blacksmith searches over),
- :mod:`repro.attack.hammer` — pattern execution primitives,
- :mod:`repro.attack.blacksmith` — the randomized fuzzer,
- :mod:`repro.attack.runner` — in-VM attack orchestration and flip
  classification (inside/outside the attacker's subarray groups).
"""

from repro.attack.patterns import HammerPattern
from repro.attack.hammer import hammer_double_sided, hammer_pattern_rows, run_pattern
from repro.attack.blacksmith import BlacksmithFuzzer, FuzzReport
from repro.attack.runner import AttackOutcome, attack_from_vm
from repro.attack.mfit import infer_subarray_rows, verify_inference
from repro.attack.sidechannel import ProbeResult, drama_probe

__all__ = [
    "AttackOutcome",
    "BlacksmithFuzzer",
    "FuzzReport",
    "HammerPattern",
    "ProbeResult",
    "attack_from_vm",
    "drama_probe",
    "hammer_double_sided",
    "hammer_pattern_rows",
    "infer_subarray_rows",
    "run_pattern",
    "verify_inference",
]
