"""DRAMA-style row-buffer timing side channel (paper §8.4, §9).

DRAMA showed that DRAM accesses leak through timing: if an attacker and
a victim share a *bank*, the victim's activity evicts the attacker's row
from the row buffer, and the attacker's probe latency reveals it.

Siloz's subarray groups deliberately share banks (that is where the
performance comes from, §4.1), so this channel *survives* Siloz — the
paper is explicit that combining Rowhammer isolation with side-channel
mitigations is future work, and that logical NUMA nodes could manage
bank/rank/channel isolation domains for exactly this (§8.4).  The probe
here demonstrates both halves: the leak across subarray groups in the
same bank, and its disappearance under bank-level isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError
from repro.memctrl.scheduler import BankState
from repro.memctrl.timings import DDR4Timings


@dataclass(frozen=True)
class ProbeResult:
    """Average attacker probe latency with and without victim traffic."""

    idle_latency_ns: float
    active_latency_ns: float
    threshold_ns: float

    @property
    def leak_detected(self) -> bool:
        """The attacker can distinguish victim-active from victim-idle."""
        return self.active_latency_ns - self.idle_latency_ns > self.threshold_ns

    def __str__(self) -> str:
        verdict = "LEAK" if self.leak_detected else "no leak"
        return (
            f"probe latency idle={self.idle_latency_ns:.2f}ns "
            f"active={self.active_latency_ns:.2f}ns -> {verdict}"
        )


def _probe_run(
    attacker_row: int,
    victim_row: int | None,
    *,
    same_bank: bool,
    probes: int,
    timings: DDR4Timings,
) -> float:
    """Average attacker latency over *probes* rounds; each round is one
    attacker access optionally interleaved with one victim access."""
    attacker_bank = BankState()
    victim_bank = attacker_bank if same_bank else BankState()
    now = 0.0
    total = 0.0
    attacker_bank.access(attacker_row, now, timings)  # warm the buffer
    for _ in range(probes):
        if victim_row is not None:
            done, _ = victim_bank.access(victim_row, now, timings)
            now = done
        done, _ = attacker_bank.access(attacker_row, now, timings)
        total += done - now
        now = done
    return total / probes


def drama_probe(
    *,
    attacker_row: int = 100,
    victim_row: int = 5000,
    shared_bank: bool = True,
    probes: int = 200,
    timings: DDR4Timings | None = None,
) -> ProbeResult:
    """Run the DRAMA experiment.

    ``shared_bank=True`` models Siloz's default (subarray groups share
    every bank: attacker and victim rows differ — they may even be in
    different subarray groups — but conflict in the row buffer).
    ``shared_bank=False`` models bank-level isolation domains (§8.4).
    """
    if probes <= 0:
        raise AttackError("probes must be positive")
    if attacker_row == victim_row:
        raise AttackError("attacker and victim must use distinct rows")
    t = timings or DDR4Timings.ddr4_2933()
    idle = _probe_run(
        attacker_row, None, same_bank=shared_bank, probes=probes, timings=t
    )
    active = _probe_run(
        attacker_row, victim_row, same_bank=shared_bank, probes=probes, timings=t
    )
    # Detection threshold: half the hit/conflict latency difference.
    threshold = (t.miss_latency - t.hit_latency) / 2
    return ProbeResult(
        idle_latency_ns=idle, active_latency_ns=active, threshold_ns=threshold
    )
