"""Pattern execution against the simulated DRAM (paper §7.1).

These primitives issue the raw ACT streams.  They operate on absolute
(bank-local) rows of one bank; offsets are clamped to the bank, matching
how a real attacker can only activate rows they can address.
"""

from __future__ import annotations

from repro.attack.patterns import HammerPattern
from repro.dram.disturbance import BitFlip
from repro.dram.module import SimulatedDram
from repro.errors import AttackError


def run_pattern(
    dram: SimulatedDram,
    socket: int,
    bank: int,
    base_row: int,
    pattern: HammerPattern,
    *,
    sync_ref: bool = True,
) -> list[BitFlip]:
    """Execute *pattern* with its offsets anchored at *base_row*.

    Offsets falling outside the bank are skipped (the attacker simply
    has no such row).  With ``sync_ref`` (the Blacksmith trick) and a
    pattern that has decoys, each round is aligned to the bank's next
    TRR REF opportunity by padding with decoy activations, so the
    sampler's deterministic post-REF observation slots see only decoys.
    Returns all flips induced."""
    geom = dram.geom
    rows = []
    for offset in pattern.order:
        row = base_row + offset
        if 0 <= row < geom.rows_per_bank:
            rows.append(row)
    if not rows:
        raise AttackError(f"pattern has no in-bank rows at base {base_row}")
    decoy_rows = [
        base_row + offset
        for offset in pattern.decoys
        if 0 <= base_row + offset < geom.rows_per_bank
    ]
    synchronize = sync_ref and decoy_rows and dram.trr is not None
    if not synchronize:
        # One batch for the whole pattern: the engine fast path (when
        # the module runs the batched backend) amortizes the per-ACT
        # dispatch over every round.
        return dram.activate_batch(socket, bank, rows * pattern.rounds)
    flips: list[BitFlip] = []
    for _ in range(pattern.rounds):
        remaining = dram.acts_until_trr_ref(socket, bank)
        # Burn the tail of this REF window on decoys so the round
        # (decoys first, then aggressors) starts right after REF.
        batch = [decoy_rows[i % len(decoy_rows)] for i in range(remaining)]
        batch.extend(rows)
        flips.extend(dram.activate_batch(socket, bank, batch))
    return flips


def hammer_double_sided(
    dram: SimulatedDram,
    socket: int,
    bank: int,
    victim_row: int,
    *,
    activations: int = 4096,
) -> list[BitFlip]:
    """Classic double-sided hammer around *victim_row*."""
    geom = dram.geom
    geom.check_row(victim_row)
    pattern = HammerPattern.double_sided(rounds=max(1, activations // 2))
    return run_pattern(dram, socket, bank, victim_row, pattern)


def hammer_pattern_rows(
    dram: SimulatedDram,
    socket: int,
    bank: int,
    rows: list[int],
    *,
    rounds: int,
) -> list[BitFlip]:
    """Interleave ACTs over explicit *rows* for *rounds* passes."""
    if not rows:
        raise AttackError("need at least one row")
    for row in rows:
        dram.geom.check_row(row)
    return dram.activate_batch(socket, bank, rows * rounds)
