"""A Blacksmith-style Rowhammer fuzzer (paper §7.1).

Blacksmith searches the space of non-uniform hammering patterns
(frequencies, phases, amplitudes) for ones that flip bits *despite* TRR.
The fuzzer here does the same against the simulated TRR: sample random
patterns, sweep each across candidate locations, keep whatever flips.
The paper's extension to server DIMMs corresponds to our fuzzer driving
the full server mapping (socket/channel/rank/bank) rather than a single
DIMM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attack.hammer import run_pattern
from repro.attack.patterns import HammerPattern
from repro.dram.disturbance import BitFlip
from repro.dram.module import SimulatedDram
from repro.errors import AttackError


@dataclass
class FuzzReport:
    """Everything one fuzzing campaign observed."""

    patterns_tried: int = 0
    activations: int = 0
    flips: list[BitFlip] = field(default_factory=list)
    #: Patterns that produced at least one flip, with their flip counts.
    effective_patterns: list[tuple[HammerPattern, int]] = field(default_factory=list)

    @property
    def flip_count(self) -> int:
        return len(self.flips)

    def flips_by_subarray(self, geom) -> dict[tuple[int, int, int], int]:
        """(socket, bank, subarray) -> flips, for containment checks."""
        out: dict[tuple[int, int, int], int] = {}
        for f in self.flips:
            key = (f.socket, f.bank, geom.subarray_of_row(f.row))
            out[key] = out.get(key, 0) + 1
        return out

    def banks_with_flips(self) -> set[tuple[int, int]]:
        return {(f.socket, f.bank) for f in self.flips}


class BlacksmithFuzzer:
    """Randomized pattern search over a set of (bank, row-range) targets.

    ``targets`` restricts where the fuzzer may *activate* — for in-VM
    runs this is exactly the rows backing the attacker's own memory, the
    only rows a guest can touch."""

    def __init__(
        self,
        dram: SimulatedDram,
        targets: list[tuple[int, int, range]],
        *,
        seed: int = 0,
    ):
        if not targets:
            raise AttackError("fuzzer needs at least one (socket, bank, rows) target")
        self.dram = dram
        self.targets = targets
        self._rng = random.Random(seed)

    def _fit_pattern(self, pattern: HammerPattern, rows: range) -> int | None:
        """Pick a base row so every pattern offset stays inside *rows*;
        None if the range is too small."""
        offsets = set(pattern.order) | set(pattern.aggressors)
        lo, hi = min(offsets), max(offsets)
        base_min = rows.start - lo
        base_max = rows.stop - 1 - hi
        if base_max < base_min:
            return None
        return self._rng.randint(base_min, base_max)

    def run(
        self,
        *,
        pattern_budget: int = 40,
        sweeps_per_pattern: int = 2,
    ) -> FuzzReport:
        """Fuzz: try *pattern_budget* random patterns, each swept over
        *sweeps_per_pattern* random placements per target."""
        report = FuzzReport()
        for _ in range(pattern_budget):
            pattern = HammerPattern.random(self._rng)
            report.patterns_tried += 1
            pattern_flips = 0
            for socket, bank, rows in self.targets:
                for _ in range(sweeps_per_pattern):
                    base = self._fit_pattern(pattern, rows)
                    if base is None:
                        continue
                    flips = run_pattern(self.dram, socket, bank, base, pattern)
                    report.activations += pattern.total_activations()
                    report.flips.extend(flips)
                    pattern_flips += len(flips)
            if pattern_flips:
                report.effective_patterns.append((pattern, pattern_flips))
        return report

    def run_until_flips(
        self, *, min_flips: int = 1, max_patterns: int = 200
    ) -> FuzzReport:
        """Keep fuzzing until at least *min_flips* flips were observed
        (or the budget runs out)."""
        report = FuzzReport()
        while report.flip_count < min_flips and report.patterns_tried < max_patterns:
            chunk = self.run(pattern_budget=10)
            report.patterns_tried += chunk.patterns_tried
            report.activations += chunk.activations
            report.flips.extend(chunk.flips)
            report.effective_patterns.extend(chunk.effective_patterns)
        return report
