"""In-VM attack orchestration (paper §7.1).

``attack_from_vm`` reproduces the paper's security experiment: a guest
runs the Blacksmith fuzzer against the memory *it* owns (the only rows a
guest can activate), and the outcome classifies every induced flip —
inside the attacker's own subarray groups, or escaped into another VM,
the host, or EPT rows.  Under Siloz the escaped count must be zero
(Table 3); under the baseline it generally is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attack.blacksmith import BlacksmithFuzzer, FuzzReport
from repro.dram.disturbance import BitFlip
from repro.errors import AttackError
from repro.log import get_logger
from repro.hv.hypervisor import Hypervisor
from repro.hv.vm import VirtualMachine


_log = get_logger("attack.runner")


def rows_owned_by_vm(hv: Hypervisor, vm: VirtualMachine) -> dict[int, list[int]]:
    """socket -> sorted bank-local rows fully backed by the VM.

    A row group spans every bank at one row index, so owning a whole
    row group means owning that row in every bank."""
    geom = hv.machine.geom
    mapping = hv.machine.mapping
    step = geom.row_group_bytes
    rows: dict[int, set[int]] = {}
    for r in vm.backing:
        start = -(-r.start // step) * step  # first aligned row group
        hpa = start
        while hpa + step <= r.end:
            media = mapping.decode(hpa)
            rows.setdefault(media.socket, set()).add(media.row)
            hpa += step
    return {s: sorted(v) for s, v in rows.items()}


def _runs(rows: list[int]) -> list[range]:
    """Contiguous runs within a sorted row list."""
    runs: list[range] = []
    start = prev = None
    for row in rows:
        if start is None:
            start = prev = row
        elif row == prev + 1:
            prev = row
        else:
            runs.append(range(start, prev + 1))
            start = prev = row
    if start is not None:
        runs.append(range(start, prev + 1))
    return runs


@dataclass
class AttackOutcome:
    """Classified result of one in-VM hammering campaign."""

    attacker: str
    report: FuzzReport
    attacker_groups: frozenset
    flips_inside: list[BitFlip] = field(default_factory=list)
    flips_escaped: list[BitFlip] = field(default_factory=list)
    #: victim VM name -> flips that corrupted its current backing
    victim_flips: dict[str, int] = field(default_factory=dict)

    @property
    def contained(self) -> bool:
        """The Table 3 verdict: did every flip stay in-domain?"""
        return not self.flips_escaped

    def summary(self) -> str:
        """One-line human-readable campaign summary."""
        return (
            f"attacker={self.attacker}: {self.report.flip_count} flips from "
            f"{self.report.activations} ACTs over {self.report.patterns_tried} "
            f"patterns; inside={len(self.flips_inside)} "
            f"escaped={len(self.flips_escaped)} victims={self.victim_flips}"
        )


def attack_from_vm(
    hv: Hypervisor,
    attacker: VirtualMachine,
    *,
    seed: int = 0,
    pattern_budget: int = 40,
    banks_per_socket: int | None = 4,
) -> AttackOutcome:
    """Run the fuzzer from inside *attacker* and classify every flip.

    ``banks_per_socket`` samples that many banks per socket for speed
    (flip physics are per-bank identical); ``None`` uses all banks.
    """
    geom = hv.machine.geom
    owned = rows_owned_by_vm(hv, attacker)
    if not owned:
        raise AttackError(f"VM {attacker.name} owns no full row groups")
    targets = []
    for socket, rows in owned.items():
        banks = range(geom.banks_per_socket)
        if banks_per_socket is not None:
            banks = range(min(banks_per_socket, geom.banks_per_socket))
        for bank in banks:
            for run in _runs(rows):
                targets.append((socket, bank, run))
    fuzzer = BlacksmithFuzzer(hv.machine.dram, targets, seed=seed)
    report = fuzzer.run(pattern_budget=pattern_budget)

    managed_geom = getattr(hv, "managed_geom", geom)
    attacker_groups = set(attacker.reserved_groups) or hv.groups_of_vm(attacker)
    outcome = AttackOutcome(
        attacker=attacker.name,
        report=report,
        attacker_groups=frozenset(attacker_groups),
    )
    for flip in report.flips:
        group = (flip.socket, flip.row // managed_geom.rows_per_subarray)
        if group in attacker_groups:
            outcome.flips_inside.append(flip)
        else:
            outcome.flips_escaped.append(flip)

    # Attribute escaped (and inside!) flips to any VM whose backing they
    # corrupt — an inside flip can only ever hit the attacker itself.
    from repro.dram.media import MediaAddress

    for flip in report.flips:
        media = MediaAddress.from_socket_bank(
            geom, flip.socket, flip.bank, flip.row, (flip.bit // 8 // 64) * 64
        )
        hpa = hv.machine.mapping.encode(media)
        for name, vm in hv.vms.items():
            if name != attacker.name and vm.owns_hpa(hpa):
                outcome.victim_flips[name] = outcome.victim_flips.get(name, 0) + 1
    _log.info("%s", outcome.summary())
    return outcome
