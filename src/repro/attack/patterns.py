"""Hammering patterns (paper §7.1; Blacksmith's search space).

A :class:`HammerPattern` is one refresh-interval's worth of activation
order, expressed over *relative* row offsets inside a bank: aggressor
offsets (the rows hammered for effect) and decoy offsets (rows activated
only to occupy a TRR sampler's observation slots).  Blacksmith's insight
is that non-uniform frequencies and phases evade deployed samplers; the
pattern type captures exactly the knobs its search mutates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import AttackError


@dataclass(frozen=True)
class HammerPattern:
    """One periodic activation pattern.

    ``order`` lists, per period, which offset to activate at each slot;
    ``decoys`` flags the offsets that are sacrificial.  ``acts_per_round``
    activations are issued per call before the next REF opportunity.
    """

    aggressors: tuple[int, ...]
    decoys: tuple[int, ...] = ()
    order: tuple[int, ...] = ()
    rounds: int = 64

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise AttackError("pattern needs at least one aggressor")
        if len(set(self.aggressors) & set(self.decoys)) != 0:
            raise AttackError("aggressors and decoys must be disjoint")
        if self.rounds <= 0:
            raise AttackError("rounds must be positive")
        if not self.order:
            object.__setattr__(self, "order", self.default_order())
        known = set(self.aggressors) | set(self.decoys)
        if not set(self.order) <= known:
            raise AttackError("order references unknown offsets")

    def default_order(self) -> tuple[int, ...]:
        """Decoys first (landing in post-REF sampler slots), then the
        aggressors round-robin."""
        return tuple(self.decoys) + tuple(self.aggressors)

    @property
    def n_sided(self) -> int:
        return len(self.aggressors)

    @property
    def acts_per_round(self) -> int:
        return len(self.order)

    def total_activations(self) -> int:
        return self.acts_per_round * self.rounds

    # ------------------------------------------------------------------
    # Canonical shapes
    # ------------------------------------------------------------------

    @classmethod
    def double_sided(cls, victim_offset: int = 0, *, rounds: int = 64) -> "HammerPattern":
        """The classic: hammer the two rows sandwiching the victim."""
        return cls(
            aggressors=(victim_offset - 1, victim_offset + 1), rounds=rounds
        )

    @classmethod
    def many_sided(
        cls, sides: int, *, base_offset: int = 0, rounds: int = 64
    ) -> "HammerPattern":
        """N aggressors at every other row (victims in between)."""
        if sides < 1:
            raise AttackError("sides must be >= 1")
        return cls(
            aggressors=tuple(base_offset + 2 * i for i in range(sides)),
            rounds=rounds,
        )

    @classmethod
    def with_decoys(
        cls,
        sides: int,
        decoy_count: int,
        *,
        base_offset: int = 0,
        decoy_gap: int = 16,
        rounds: int = 64,
    ) -> "HammerPattern":
        """Many-sided plus sampler decoys placed *decoy_gap* rows away
        (far enough to disturb nothing the attacker cares about)."""
        aggressors = tuple(base_offset + 2 * i for i in range(sides))
        decoys = tuple(
            base_offset + decoy_gap + 2 * i for i in range(decoy_count)
        )
        return cls(aggressors=aggressors, decoys=decoys, rounds=rounds)

    @classmethod
    def random(
        cls,
        rng: random.Random,
        *,
        max_sides: int = 8,
        max_decoys: int = 4,
        max_rounds: int = 96,
        span: int = 24,
    ) -> "HammerPattern":
        """Blacksmith-style sampling of the pattern space."""
        sides = rng.randint(1, max_sides)
        decoy_count = rng.randint(0, max_decoys)
        base = rng.randint(0, 4)
        aggressors = sorted(
            rng.sample(range(base, base + span, 2), k=min(sides, span // 2))
        )
        decoy_pool = [
            o for o in range(base + span, base + span + 2 * max_decoys + 2)
        ]
        decoys = tuple(sorted(rng.sample(decoy_pool, k=decoy_count)))
        # Random phases: shuffle how aggressors interleave after decoys.
        body = list(aggressors) * rng.randint(1, 3)
        rng.shuffle(body)
        order = tuple(decoys) + tuple(body)
        return cls(
            aggressors=tuple(aggressors),
            decoys=decoys,
            order=order,
            rounds=rng.randint(8, max_rounds),
        )

    def shifted(self, delta: int) -> "HammerPattern":
        """The same pattern translated by *delta* rows."""
        return HammerPattern(
            aggressors=tuple(a + delta for a in self.aggressors),
            decoys=tuple(d + delta for d in self.decoys),
            order=tuple(o + delta for o in self.order),
            rounds=self.rounds,
        )

    def describe(self) -> str:
        return (
            f"{self.n_sided}-sided, {len(self.decoys)} decoys, "
            f"{self.acts_per_round} acts/round x {self.rounds} rounds"
        )
