"""Virtual machines (paper §2.1, §5.1, §7.1).

A :class:`VirtualMachine` owns an EPT, a set of memory regions, and the
host pages backing them.  Guest accesses translate through the EPT and
then hit the simulated DRAM — including the attack entry points
(`hammer`, `hammer_pattern`) that the security experiments drive from
*inside* the guest, exactly as Blacksmith runs inside a VM in §7.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dram.mapping import AddressRange
from repro.ept.table import ExtendedPageTable
from repro.errors import HvError
from repro.hv.machine import Machine
from repro.hv.memory_types import MemoryRegion


class VmState(Enum):
    """VM lifecycle states (§5.3: shutdown keeps the reservation)."""
    RUNNING = "running"
    SHUTDOWN = "shutdown"


@dataclass
class VirtualMachine:
    """One guest: regions, EPT, backing memory, and placement facts."""

    name: str
    machine: Machine
    ept: ExtendedPageTable
    regions: list[MemoryRegion]
    vcpus: int
    home_socket: int
    #: Logical NUMA nodes provisioned to this VM (its cgroup's mems).
    node_ids: tuple[int, ...] = ()
    #: (socket, subarray group) pairs this VM may legitimately occupy.
    reserved_groups: frozenset = frozenset()
    #: Host ranges backing unmediated regions (guest RAM etc.).
    backing: list[AddressRange] = field(default_factory=list)
    #: Host ranges backing mediated regions (host-reserved nodes).
    mediated_backing: list[AddressRange] = field(default_factory=list)
    state: VmState = VmState.RUNNING
    vm_exits: int = 0
    #: Passthrough devices attached to this VM (see repro.hv.iommu).
    devices: list = field(default_factory=list)

    # ------------------------------------------------------------------

    def region_at(self, gpa: int) -> MemoryRegion:
        for region in self.regions:
            if gpa in region:
                return region
        raise HvError(f"VM {self.name}: GPA {gpa:#x} not in any region")

    def _check_running(self) -> None:
        if self.state is not VmState.RUNNING:
            raise HvError(f"VM {self.name} is not running")

    def translate(self, gpa: int) -> int:
        """GPA -> HPA through this VM's EPT (reads real DRAM bits)."""
        return self.ept.translate(gpa)

    # ------------------------------------------------------------------
    # Guest data accesses
    # ------------------------------------------------------------------

    def read(self, gpa: int, length: int, *, ecc: bool = True) -> bytes:
        """Guest load.  Mediated regions cost a VM exit.

        ``ecc=False`` returns raw cell contents (what a non-ECC platform
        would see) — handy for inspecting corruption in experiments."""
        self._check_running()
        region = self.region_at(gpa)
        if not region.unmediated:
            self.vm_exits += 1
        hpa = self.translate(gpa)
        return self.machine.dram.read(hpa, length, ecc=ecc)

    def write(self, gpa: int, data: bytes) -> None:
        """Guest store.  ROM writes and mediated regions exit."""
        self._check_running()
        region = self.region_at(gpa)
        if not region.unmediated or region.kind.name.startswith("ROM"):
            self.vm_exits += 1
        hpa = self.translate(gpa)
        self.machine.dram.write(hpa, data)

    # ------------------------------------------------------------------
    # Attack entry points (the guest's view of "hammering")
    # ------------------------------------------------------------------

    def hammer(self, gpa: int, activations: int, *, open_seconds: float = 0.0):
        """Repeatedly activate the DRAM row behind *gpa*.

        Only unmediated regions can be hammered: mediated accesses take a
        VM exit each, so the host mediates (and could rate-limit) them —
        the §5.1 argument for why mediated pages may stay host-side.
        Returns the list of bit flips the hammering caused anywhere.
        """
        self._check_running()
        region = self.region_at(gpa)
        if not region.unmediated:
            raise HvError(
                f"VM {self.name}: {region.name} is host-mediated; every access "
                "exits, so it cannot be hammered at DRAM rates"
            )
        dram = self.machine.dram
        media = dram.mapping.decode(self.translate(gpa))
        socket, bank = media.socket, media.socket_bank_index(self.machine.geom)
        if open_seconds == 0.0:
            # Pure ACT storms go through the batch path (engine fast
            # path on the batched backend, plain loop on scalar).
            return dram.activate_batch(socket, bank, [media.row] * activations)
        flips = []
        for _ in range(activations):
            flips.extend(
                dram.activate(socket, bank, media.row, open_seconds=open_seconds)
            )
        return flips

    def hammer_pattern(self, gpas: list[int], rounds: int):
        """Interleave activations across several aggressor GPAs (the
        many-sided shape TRR evasion needs); returns all flips."""
        self._check_running()
        dram = self.machine.dram
        targets = []
        for gpa in gpas:
            if not self.region_at(gpa).unmediated:
                raise HvError(f"VM {self.name}: GPA {gpa:#x} is mediated")
            media = dram.mapping.decode(self.translate(gpa))
            targets.append(
                (media.socket, media.socket_bank_index(self.machine.geom), media.row)
            )
        banks = {(socket, bank) for socket, bank, _ in targets}
        if len(banks) == 1 and targets:
            # All aggressors share one bank (the TRR-evasion shape):
            # submit the whole interleaving as one batch.
            (socket, bank), rows = banks.pop(), [row for _, _, row in targets]
            return dram.activate_batch(socket, bank, rows * rounds)
        flips = []
        for _ in range(rounds):
            for socket, bank, row in targets:
                flips.extend(dram.activate(socket, bank, row))
        return flips

    # ------------------------------------------------------------------

    @property
    def unmediated_bytes(self) -> int:
        return sum(r.size for r in self.backing)

    def owns_hpa(self, hpa: int) -> bool:
        return any(hpa in r for r in self.backing) or any(
            hpa in r for r in self.mediated_backing
        )

    def replace_backing(self, old: AddressRange, new: AddressRange) -> None:
        """Swap one backing extent for another (live page migration):
        *old* is carved out of whichever backing list covers it and *new*
        is merged in.  The EPT/IOMMU retargeting happens separately —
        this only updates the ownership bookkeeping that ``owns_hpa`` and
        the isolation audit read."""
        from repro.dram.mapping import merge_ranges, subtract_ranges

        if old.size != new.size:
            raise HvError(
                f"VM {self.name}: replacement size mismatch "
                f"({old.size:#x} != {new.size:#x})"
            )
        for attr in ("backing", "mediated_backing"):
            ranges = getattr(self, attr)
            if any(old.start >= r.start and old.end <= r.end for r in ranges):
                setattr(
                    self, attr, merge_ranges(subtract_ranges(ranges, [old]) + [new])
                )
                return
        raise HvError(
            f"VM {self.name}: range {old} is not part of this VM's backing"
        )

    def __repr__(self) -> str:
        return (
            f"VirtualMachine({self.name!r}, {self.vcpus} vcpus, "
            f"{self.unmediated_bytes:#x} bytes, nodes={self.node_ids}, "
            f"{self.state.value})"
        )
