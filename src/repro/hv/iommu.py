"""IOMMU and passthrough-device DMA (paper §5.1, SR-IOV support).

The Siloz prototype uses paravirtual IO (virtio), where the host
mediates every DMA.  The paper sketches what *secure passthrough*
(SR-IOV) would require: (1) the virtual function's IOMMU must restrict
the guest's DMAs to its subarray groups' address ranges, and (2) the
IOMMU page tables must be protected like EPT pages.  This module
implements that sketch:

- :class:`IommuDomain` — a per-device DMA address space whose table
  pages live in simulated DRAM (and can be guard-protected or
  integrity-checked exactly like EPTs — it reuses the EPT machinery,
  which is also how Linux's VT-d code shares page-table formats);
- :class:`PassthroughDevice` — a device model that performs DMA reads/
  writes and *hammering DMA* (a NIC ring that re-reads one buffer at
  DRAM rates, the GuardION-style attack vector), all through its domain.

The invariant the tests assert: a passthrough device can only ever
touch — and therefore only ever hammer — host memory inside the ranges
its domain maps, which Siloz constrains to the VM's own groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dram.module import SimulatedDram
from repro.ept.integrity import SecureEptChecker
from repro.ept.table import ExtendedPageTable
from repro.errors import HvError


class IommuFault(HvError):
    """Device DMA to an unmapped IOVA (blocked by the IOMMU)."""


@dataclass
class DmaStats:
    reads: int = 0
    writes: int = 0
    faults: int = 0
    hammer_activations: int = 0


class IommuDomain:
    """One device's DMA address space (IOVA -> HPA).

    Table pages come from ``alloc_table_page`` — Siloz passes its
    GFP_EPT-style allocator so IOMMU tables share the guard-protected
    row group (§5.1's requirement (2))."""

    def __init__(
        self,
        dram: SimulatedDram,
        alloc_table_page: Callable[[], int],
        *,
        checker: SecureEptChecker | None = None,
    ):
        self._table = ExtendedPageTable(dram, alloc_table_page, checker=checker)
        self._dram = dram

    @property
    def table_pages(self) -> list[int]:
        return self._table.table_pages

    def map(self, iova: int, hpa: int, size: int) -> None:
        self._table.map(iova, hpa, size)

    def unmap(self, iova: int, size: int) -> None:
        self._table.unmap(iova, size)

    def remap_range(self, old_start: int, size: int, new_start: int) -> int:
        """Retarget DMA mappings pointing into a migrated host range —
        the IOMMU must follow live page migration just like the EPT, or
        the device would keep DMAing into the offlined frames."""
        return self._table.remap_range(old_start, size, new_start)

    def translate(self, iova: int) -> int:
        """IOVA -> HPA; raises IommuFault on unmapped device addresses."""
        from repro.errors import EptViolation

        try:
            return self._table.translate(iova)
        except EptViolation as exc:
            raise IommuFault(f"DMA fault: {exc}") from exc


@dataclass
class PassthroughDevice:
    """An SR-IOV virtual function assigned to one VM."""

    name: str
    domain: IommuDomain
    dram: SimulatedDram
    stats: DmaStats = field(default_factory=DmaStats)

    def dma_read(self, iova: int, length: int) -> bytes:
        hpa = self.domain.translate(iova)
        self.stats.reads += 1
        return self.dram.read(hpa, length)

    def dma_write(self, iova: int, data: bytes) -> None:
        hpa = self.domain.translate(iova)
        self.stats.writes += 1
        self.dram.write(hpa, data)

    def dma_hammer(self, iova: int, activations: int):
        """A malicious/misprogrammed device re-reading one descriptor at
        DRAM rates — DMA-based Rowhammer.  Returns induced flips.

        Because every access goes through the IOMMU, the blast radius is
        bounded by what the domain maps."""
        hpa = self.domain.translate(iova)
        media = self.dram.mapping.decode(hpa)
        socket = media.socket
        bank = media.socket_bank_index(self.dram.geom)
        flips = []
        for _ in range(activations):
            flips.extend(self.dram.activate(socket, bank, media.row))
        self.stats.hammer_activations += activations
        return flips
