"""Hypervisor substrate (paper §2.1, §5).

- :mod:`repro.hv.machine` — the simulated host (geometry + mapping +
  DRAM + cores),
- :mod:`repro.hv.memory_types` — QEMU-style memory regions and the
  mediated/unmediated classification Siloz's placement policy keys off
  (§5.1),
- :mod:`repro.hv.vm` — virtual machines: EPT-backed guest address
  spaces with read/write/hammer entry points,
- :mod:`repro.hv.hypervisor` — the baseline Linux/KVM hypervisor that
  Siloz (in :mod:`repro.core`) extends and is evaluated against.
"""

from repro.hv.machine import Machine
from repro.hv.memory_types import MemoryRegion, MemoryRegionKind
from repro.hv.vm import VirtualMachine
from repro.hv.hypervisor import (
    BaselineHypervisor,
    CapacitySnapshot,
    Hypervisor,
    VmSpec,
)

__all__ = [
    "BaselineHypervisor",
    "CapacitySnapshot",
    "Hypervisor",
    "Machine",
    "MemoryRegion",
    "MemoryRegionKind",
    "VirtualMachine",
    "VmSpec",
]
