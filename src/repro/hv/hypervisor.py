"""Hypervisor base class and the baseline Linux/KVM implementation
(paper §2.1, §5; evaluated against in §7).

:class:`Hypervisor` holds everything common to the baseline and Siloz:
NUMA topology, cgroups, the offline registry, VM lifecycle, and the
QEMU-ish region construction.  Subclasses decide *placement*: which
nodes exist, where a VM's unmediated/mediated/EPT pages come from.

:class:`BaselineHypervisor` is stock Linux/KVM: one node per socket,
all allocations from the socket's general pool, EPT pages kmalloc'd
anywhere.  Two VMs routinely end up adjacent in the same subarray — the
vulnerability Table 3 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dram.mapping import AddressRange, merge_ranges
from repro.ept.table import ExtendedPageTable
from repro.errors import HvError, OutOfMemoryError, PlacementError
from repro.hv.machine import Machine
from repro.hv.memory_types import default_layout
from repro.hv.vm import VirtualMachine, VmState
from repro.mm.cgroup import CgroupManager, Process
from repro.mm.numa import NodeKind, NumaNode, NumaTopology
from repro.mm.offline import OfflineRegistry
from repro.units import PAGE_2M, PAGE_4K


@dataclass(frozen=True)
class CapacitySnapshot:
    """Read-only capacity picture of one host (``Hypervisor.capacity()``).

    The fleet scheduler packs VMs against this instead of poking at live
    allocator state, and ``repro health`` can print it as a one-line
    utilization summary.  ``free_guest_node_ids`` are guest-reserved
    nodes not reserved by any VM (the only nodes a new tenant may be
    placed on — one tenant per subarray group, §5.1/§5.2);
    ``free_bytes_by_node`` covers *every* node so host/EPT headroom is
    visible too.
    """

    #: Guest-reserved node ids with no VM reservation, ascending.
    free_guest_node_ids: tuple[int, ...]
    #: node id -> free bytes (all nodes, including host/EPT-reserved).
    free_bytes_by_node: dict[int, int]
    #: Total guest-reserved nodes provisioned on the host.
    total_guest_nodes: int
    #: Bytes offlined as EPT guard rows (§5.4).
    guard_row_bytes: int
    #: Bytes offlined for any reason (guards, remediation, CE storms).
    offlined_bytes: int
    #: VMs currently holding reservations (running or shut down).
    vm_count: int
    #: The host's backing page size (the §4.2 alignment constraint).
    backing_page_bytes: int

    @property
    def free_guest_bytes(self) -> int:
        """Allocatable bytes across unreserved guest nodes."""
        return sum(self.free_bytes_by_node[n] for n in self.free_guest_node_ids)

    def to_dict(self) -> dict:
        """Plain-data wire form (the ``repro serve`` capacity op ships
        this across the socket; keys sort stably for digests)."""
        return {
            "free_guest_node_ids": list(self.free_guest_node_ids),
            "free_guest_bytes": self.free_guest_bytes,
            "free_bytes_by_node": {
                str(k): v for k, v in sorted(self.free_bytes_by_node.items())
            },
            "total_guest_nodes": self.total_guest_nodes,
            "guard_row_bytes": self.guard_row_bytes,
            "offlined_bytes": self.offlined_bytes,
            "vm_count": self.vm_count,
            "backing_page_bytes": self.backing_page_bytes,
        }


@dataclass(frozen=True)
class VmSpec:
    """What a tenant asks for."""

    name: str
    memory_bytes: int
    vcpus: int = 1
    socket: int = 0
    rom_bytes: int = 4 * PAGE_4K
    mmio_bytes: int = 4 * PAGE_4K

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise HvError("memory_bytes must be positive")
        if self.vcpus <= 0:
            raise HvError("vcpus must be positive")


class Hypervisor:
    """Common machinery; see subclasses for placement policy."""

    def __init__(self, machine: Machine, *, backing_page_bytes: int = PAGE_2M):
        if backing_page_bytes % PAGE_4K:
            raise HvError("backing page size must be 4 KiB aligned")
        self.machine = machine
        self.backing_page_bytes = backing_page_bytes
        self.topology = NumaTopology()
        self.cgroups = CgroupManager()
        self.offline = OfflineRegistry()
        self.vms: dict[str, VirtualMachine] = {}
        self._processes: dict[str, Process] = {}
        self._ledger: dict[str, list[int]] = {}  # VM -> backing page addrs
        self._next_pid = 1000
        #: Runtime DRAM health monitor (None until enabled).
        self.health = None
        self._build_topology()
        self.cgroups.root.mems = {
            n.node_id
            for n in self.topology.nodes_of_kind(NodeKind.HOST_RESERVED)
        }

    # -- subclass responsibilities -------------------------------------

    def _build_topology(self) -> None:
        raise NotImplementedError

    def _place_vm(self, spec: VmSpec) -> tuple[tuple[int, ...], frozenset]:
        """Choose (node_ids, reserved (socket, group) set) for a VM."""
        raise NotImplementedError

    def _alloc_ept_page(self, socket: int) -> int:
        """Allocate one 4 KiB page for an EPT (or IOMMU) table node
        homed on *socket*."""
        raise NotImplementedError

    # -- common lifecycle ----------------------------------------------

    def _spawn_qemu(self, spec: VmSpec) -> Process:
        self._next_pid += 1
        process = Process(
            pid=self._next_pid, name=f"qemu-{spec.name}", kvm_privileged=True
        )
        self._processes[spec.name] = process
        return process

    def _mmap(
        self,
        process: Process,
        vm_name: str,
        node_ids: tuple[int, ...],
        size: int,
        *,
        unmediated: bool,
    ) -> list[AddressRange]:
        """QEMU's mmap: UNMEDIATED requests draw from the given (guest)
        nodes after the §5.3 admission check; mediated requests go to
        host-reserved nodes.  Allocations are page-granular and recorded
        in the per-VM ledger so ``destroy_vm`` can free them exactly."""
        page = self.backing_page_bytes
        if not unmediated:
            node_ids = tuple(
                n.node_id for n in self.topology.nodes_of_kind(NodeKind.HOST_RESERVED)
            )
            page = PAGE_4K
        pages_needed = -(-size // page)
        addrs: list[int] = []
        for node_id in node_ids:
            node = self.topology.node(node_id)
            self.cgroups.check_allocation(
                process,
                node.node_id,
                node_is_guest_reserved=node.kind is NodeKind.GUEST_RESERVED,
            )
            while len(addrs) < pages_needed:
                try:
                    addrs.append(node.alloc_bytes(page))
                except OutOfMemoryError:
                    break
            if len(addrs) >= pages_needed:
                break
        if len(addrs) < pages_needed:
            for addr in addrs:
                self.topology.free_addr(addr)
            raise OutOfMemoryError(
                f"could not back {size:#x} bytes on nodes {node_ids}"
            )
        self._ledger.setdefault(vm_name, []).extend(addrs)
        return merge_ranges([AddressRange(a, a + page) for a in addrs])

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Boot a VM: place it, back it, build its EPT, map its regions."""
        if spec.name in self.vms:
            raise HvError(f"VM {spec.name!r} already exists")
        if spec.memory_bytes % self.backing_page_bytes:
            raise HvError(
                f"VM memory must be a multiple of the {self.backing_page_bytes:#x}-"
                "byte backing page size"
            )
        node_ids, groups = self._place_vm(spec)
        process = self._spawn_qemu(spec)
        host_mems = {
            n.node_id for n in self.topology.nodes_of_kind(NodeKind.HOST_RESERVED)
        }
        if self._guest_nodes_exclusive():
            cgroup = self.cgroups.create(
                f"vm-{spec.name}",
                mems=host_mems - set(node_ids),
                exclusive_mems=set(node_ids),
            )
        else:
            cgroup = self.cgroups.create(
                f"vm-{spec.name}", mems=host_mems | set(node_ids)
            )
        cgroup.attach(process)

        regions = default_layout(
            spec.memory_bytes, rom_bytes=spec.rom_bytes, mmio_bytes=spec.mmio_bytes
        )
        unmediated_bytes = sum(r.size for r in regions if r.unmediated)
        mediated_bytes = sum(r.size for r in regions if not r.unmediated)
        # ROM is smaller than a huge page; round the unmediated request.
        unmediated_bytes = -(-unmediated_bytes // self.backing_page_bytes) * self.backing_page_bytes

        try:
            backing = self._mmap(
                process, spec.name, node_ids, unmediated_bytes, unmediated=True
            )
            mediated = (
                self._mmap(
                    process, spec.name, node_ids, mediated_bytes, unmediated=False
                )
                if mediated_bytes
                else []
            )
        except Exception:
            for addr in self._ledger.pop(spec.name, []):
                self.topology.free_addr(addr)
            self.cgroups.destroy(f"vm-{spec.name}")
            self._processes.pop(spec.name, None)
            raise

        ept = ExtendedPageTable(
            self.machine.dram, lambda: self._alloc_ept_page(spec.socket)
        )
        vm = VirtualMachine(
            name=spec.name,
            machine=self.machine,
            ept=ept,
            regions=regions,
            vcpus=spec.vcpus,
            home_socket=spec.socket,
            node_ids=node_ids,
            reserved_groups=groups,
            backing=backing,
            mediated_backing=mediated,
        )
        self._map_regions(vm)
        self.vms[spec.name] = vm
        return vm

    def _map_regions(self, vm: VirtualMachine) -> None:
        unmediated_pool = [(r.start, r.size) for r in vm.backing]
        mediated_pool = [(r.start, r.size) for r in vm.mediated_backing]
        for region in vm.regions:
            pool = unmediated_pool if region.unmediated else mediated_pool
            remaining = region.size
            gpa = region.gpa
            while remaining > 0:
                if not pool:
                    raise HvError(f"backing exhausted mapping {region.name}")
                start, size = pool[0]
                take = min(size, remaining)
                vm.ept.map(gpa, start, take)
                gpa += take
                remaining -= take
                if take == size:
                    pool.pop(0)
                else:
                    pool[0] = (start + take, size - take)

    def _guest_nodes_exclusive(self) -> bool:
        """Whether VM cgroups claim their mems exclusively (Siloz: yes;
        baseline: no such notion)."""
        return False

    def destroy_vm(self, name: str) -> None:
        """Shut a VM down: free its backing to the owning nodes (§5.3).
        The node reservation (cgroup) survives until
        :meth:`release_reservation`."""
        vm = self.vms.get(name)
        if vm is None:
            raise HvError(f"no such VM {name!r}")
        if vm.state is VmState.SHUTDOWN:
            raise HvError(f"VM {name!r} already shut down")
        vm.state = VmState.SHUTDOWN
        for addr in self._ledger.pop(name, []):
            self.topology.free_addr(addr)
        for page in vm.ept.table_pages:
            self._free_ept_page(page)
        for device in vm.devices:
            for page in device.domain.table_pages:
                self._free_ept_page(page)
        vm.devices.clear()

    def _free_ept_page(self, addr: int) -> None:
        self.topology.free_addr(addr)

    def release_reservation(self, name: str) -> None:
        """Privileged teardown of a VM's node reservation (§5.3)."""
        if name in self.vms and self.vms[name].state is not VmState.SHUTDOWN:
            raise HvError(f"VM {name!r} still running")
        self.cgroups.destroy(f"vm-{name}")
        self.vms.pop(name, None)

    # -- passthrough IO (§5.1 SR-IOV sketch) ------------------------------

    def attach_passthrough_device(self, vm_name: str, device_name: str):
        """Assign an SR-IOV-style virtual function to a VM.

        The device's IOMMU domain maps IOVA space 1:1 with the VM's
        guest RAM and is backed by the same protected table-page
        allocator as EPTs (paper §5.1's requirements (1) and (2)): the
        device can DMA — and therefore hammer — only within the VM's own
        subarray groups.
        """
        from repro.hv.iommu import IommuDomain, PassthroughDevice

        vm = self.vm(vm_name)
        if vm.state is not VmState.RUNNING:
            raise HvError(f"VM {vm_name!r} is not running")
        domain = IommuDomain(
            self.machine.dram, lambda: self._alloc_ept_page(vm.home_socket)
        )
        iova = 0
        for r in vm.backing:
            domain.map(iova, r.start, r.size)
            iova += r.size
        device = PassthroughDevice(
            name=device_name, domain=domain, dram=self.machine.dram
        )
        vm.devices.append(device)
        return device

    # -- runtime fault handling -------------------------------------------

    def enable_health_monitoring(self, policy=None, *, auto_remediate: bool = True):
        """Attach a :class:`~repro.hv.health.HealthMonitor` (the EDAC /
        mcelog analogue) to this hypervisor's DRAM error stream.  Idempotent
        per hypervisor: a second call returns the existing monitor."""
        if self.health is not None:
            return self.health
        from repro.hv.health import HealthMonitor

        self.health = HealthMonitor(
            self, policy=policy, auto_remediate=auto_remediate
        )
        self.health.attach()
        return self.health

    def vm_block_owner(self, addr: int) -> tuple[VirtualMachine, bool] | None:
        """Which VM's ledger holds backing page *addr*; returns
        (vm, is_mediated) or None for non-VM memory (EPT pages, free
        pool).  Live migration uses this to find whose EPT to rewrite."""
        for name, addrs in self._ledger.items():
            if addr in addrs:
                vm = self.vms.get(name)
                if vm is None:
                    return None
                mediated = any(addr in r for r in vm.mediated_backing)
                return vm, mediated
        return None

    def table_page_owner(self, addr: int) -> str | None:
        """Name of the VM whose EPT (or device IOMMU) tables include the
        page at *addr*, or None.  Table pages cannot be live-migrated in
        this model (their HPAs are interior tree pointers), so migration
        defers ranges containing them."""
        for name, vm in self.vms.items():
            if addr in vm.ept.table_pages:
                return name
            for device in vm.devices:
                if addr in device.domain.table_pages:
                    return name
        return None

    def relocate_block(
        self, vm: VirtualMachine, old: int, size: int, new: int
    ) -> None:
        """Move one backing block of *vm* from HPA *old* to *new*: EPT
        and device-IOMMU leaves are retargeted, the VM's backing ranges
        and the allocation ledger are updated.  The caller has already
        copied the data and owns freeing/retiring the old frames."""
        vm.ept.remap_range(old, size, new)
        for device in vm.devices:
            device.domain.remap_range(old, size, new)
        vm.replace_backing(
            AddressRange(old, old + size), AddressRange(new, new + size)
        )
        addrs = self._ledger.get(vm.name, [])
        try:
            addrs[addrs.index(old)] = new
        except ValueError:
            raise HvError(
                f"block {old:#x} not in {vm.name!r}'s allocation ledger"
            ) from None
        if obs.ENABLED:
            obs.emit(
                obs.RemapEvent(
                    vm=vm.name,
                    old=old,
                    new=new,
                    size=size,
                    when=self.machine.dram.clock,
                )
            )

    # -- introspection ---------------------------------------------------

    def _nodes_unavailable_for_placement(self) -> set[int]:
        """Node ids a *new* tenant may not be placed on.

        The default is exclusive-reservation semantics: every node any
        VM holds is off the table (Siloz, CATT).  Shared-pool
        hypervisors override this to ``set()`` so capacity reflects the
        pool's remaining free bytes rather than going to zero after the
        first tenant."""
        reserved: set[int] = set()
        for vm in self.vms.values():
            reserved.update(vm.node_ids)
        return reserved

    def capacity(self) -> CapacitySnapshot:
        """Read-only snapshot of this host's placement capacity.

        Cheap (no allocation, no DRAM access) and safe to call at any
        point in the VM lifecycle; the fleet scheduler calls it per
        placement decision.
        """
        from repro.mm.offline import OfflineReason

        reserved = self._nodes_unavailable_for_placement()
        free_guest = tuple(
            n.node_id
            for n in self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
            if n.node_id not in reserved
        )
        return CapacitySnapshot(
            free_guest_node_ids=free_guest,
            free_bytes_by_node={n.node_id: n.free_bytes for n in self.topology.nodes},
            total_guest_nodes=len(self.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)),
            guard_row_bytes=self.offline.total_bytes(OfflineReason.GUARD_ROW),
            offlined_bytes=self.offline.total_bytes(),
            vm_count=len(self.vms),
            backing_page_bytes=self.backing_page_bytes,
        )

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise HvError(f"no such VM {name!r}") from None

    def groups_of_vm(self, vm: VirtualMachine) -> set:
        """(socket, subarray group) pairs actually touched by the VM's
        unmediated backing."""
        groups: set = set()
        for r in vm.backing:
            groups |= self.machine.mapping.groups_touched_by_range(r.start, r.size)
        return groups


class BaselineHypervisor(Hypervisor):
    """Stock Linux/KVM: per-socket nodes, no subarray awareness."""

    def _build_topology(self) -> None:
        geom = self.machine.geom
        for socket in range(geom.sockets):
            base = self.machine.mapping.socket_base(socket)
            self.topology.add(
                NumaNode(
                    node_id=socket,
                    kind=NodeKind.HOST_RESERVED,
                    physical_node=socket,
                    ranges=[AddressRange(base, base + geom.socket_bytes)],
                    cpus=self.machine.socket_cores(socket),
                    subarray_groups=tuple(range(geom.groups_per_socket)),
                )
            )

    def _place_vm(self, spec: VmSpec) -> tuple[tuple[int, ...], frozenset]:
        """Baseline 'placement' is just the socket's node; there is no
        group reservation, so reserved_groups is empty (nothing is
        guaranteed)."""
        if spec.socket not in self.topology:
            raise PlacementError(f"no node for socket {spec.socket}")
        return (spec.socket,), frozenset()

    def _alloc_ept_page(self, socket: int) -> int:
        """kmalloc: EPT pages come from the general pool, wherever."""
        return self.topology.alloc_on_node(socket, PAGE_4K)
