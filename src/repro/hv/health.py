"""Runtime DRAM health monitoring — the EDAC/mcelog analogue.

Production hosts watch the memory controller's corrected-error stream:
a row whose correctable-error (CE) rate climbs is a row whose cells are
degrading, and the standard playbook (Linux EDAC, mcelog's page
offlining, cloud fleet policies) escalates from *counting* to *not
allocating there anymore* to *migrating the data off and retiring the
pages*.  :class:`HealthMonitor` implements that playbook on top of the
simulator's ECC event stream, at row-group granularity — the natural
offlining unit here, because pages interleave across every bank of a
socket (see ``core.remediation``).

Per row group the monitor keeps a **leaky bucket**: every CE adds 1,
every uncorrectable error adds ``ue_weight``, and the level drains at
``leak_per_second`` of simulated time.  Crossing thresholds escalates:

- ``watch_threshold`` — the row group is noted as suspicious;
- ``soak_threshold``  — *soak*: free pages in the row group are
  quarantined so no new allocation lands there (allocated pages stay);
- ``offline_threshold`` — live remediation: still-allocated pages are
  migrated to fresh frames in the same subarray group (preserving the
  Siloz isolation invariant) and the row group is offlined.

Everything is driven by the DRAM module's simulated clock, so a given
fault plan produces a byte-identical escalation timeline on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro import obs
from repro.dram.ecc import EccEvent, EccOutcome
from repro.errors import ReproError
from repro.log import get_logger

_log = get_logger("hv.health")


class HealthError(ReproError):
    """Invalid health policy or monitor misuse."""


class HealthState(Enum):
    """Escalation ladder for one row group."""

    OK = "ok"
    WATCH = "watch"
    SOAK = "soak"  # no new allocations; existing pages await migration
    OFFLINED = "offlined"  # migrated away and removed from circulation
    DEFERRED = "deferred"  # offlining attempted, some pages unmovable yet


@dataclass(frozen=True)
class HealthPolicy:
    """Leaky-bucket thresholds and rates (all in 'error units').

    Defaults are scaled-down fleet policy: a handful of CEs in quick
    succession escalates, while the same errors spread over enough
    simulated time leak away harmlessly.
    """

    watch_threshold: float = 3.0
    soak_threshold: float = 6.0
    offline_threshold: float = 12.0
    #: Bucket drain rate per simulated second.
    leak_per_second: float = 1.0
    #: Bucket increment for an uncorrectable error (CEs add 1.0).
    ue_weight: float = 8.0

    def __post_init__(self) -> None:
        if not 0 < self.watch_threshold < self.soak_threshold < self.offline_threshold:
            raise HealthError(
                "thresholds must satisfy 0 < watch < soak < offline, got "
                f"{self.watch_threshold} / {self.soak_threshold} / "
                f"{self.offline_threshold}"
            )
        if self.leak_per_second < 0:
            raise HealthError("leak_per_second must be non-negative")
        if self.ue_weight <= 0:
            raise HealthError("ue_weight must be positive")


@dataclass
class RowGroupHealth:
    """Leaky-bucket state for one (socket, bank-local row) row group."""

    socket: int
    row: int
    level: float = 0.0
    last_update: float = 0.0
    state: HealthState = HealthState.OK
    ce_count: int = 0
    ue_count: int = 0


class HealthMonitor:
    """Watches one hypervisor's ECC stream and escalates per policy.

    Correctable errors arrive by subscription to the DRAM module's
    :class:`~repro.dram.ecc.EccEngine`; uncorrectable errors are fed by
    the MCE handler via :meth:`on_uncorrectable` so both streams land in
    the same ledger.  ``timeline`` is a deterministic, human-readable
    transcript of every state transition; ``reports`` collects the
    :class:`~repro.core.remediation.MigrationReport` of each live
    offlining this monitor triggered.
    """

    def __init__(self, hv, *, policy: HealthPolicy | None = None, auto_remediate: bool = True):
        self.hv = hv
        self.policy = policy or HealthPolicy()
        self.auto_remediate = auto_remediate
        self._groups: dict[tuple[int, int], RowGroupHealth] = {}
        self.timeline: list[str] = []
        self.reports: list = []
        self._attached = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self) -> "HealthMonitor":
        """Subscribe to the machine's ECC event stream; returns self."""
        if not self._attached:
            self.hv.machine.dram.ecc.subscribe(self.on_ecc_event)
            self._attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe (counters and timeline are kept)."""
        if self._attached:
            self.hv.machine.dram.ecc.unsubscribe(self.on_ecc_event)
            self._attached = False

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def on_ecc_event(self, event: EccEvent) -> None:
        """ECC engine callback: CEs and UEs feed the bucket; silent
        (3+-bit) corruption is invisible to hardware, hence ignored."""
        if event.outcome is EccOutcome.CORRECTED:
            self._bump(event.socket, event.row, 1.0, event.when, ue=False)
        elif event.outcome is EccOutcome.UNCORRECTABLE:
            self._bump(
                event.socket, event.row, self.policy.ue_weight, event.when, ue=True
            )

    def on_uncorrectable(self, hpa: int) -> None:
        """MCE-handler feed: an uncorrectable error was *consumed* at
        this host address (same ledger as the ECC stream, so a UE storm
        escalates even when patrol scrubbing never sees the row)."""
        media = self.hv.machine.dram.mapping.decode(hpa)
        self._bump(
            media.socket,
            media.row,
            self.policy.ue_weight,
            self.hv.machine.dram.clock,
            ue=True,
        )

    # ------------------------------------------------------------------
    # Bucket mechanics
    # ------------------------------------------------------------------

    def _group(self, socket: int, row: int) -> RowGroupHealth:
        key = (socket, row)
        if key not in self._groups:
            self._groups[key] = RowGroupHealth(socket=socket, row=row)
        return self._groups[key]

    def _decay(self, rg: RowGroupHealth, now: float) -> None:
        if now > rg.last_update:
            rg.level = max(0.0, rg.level - (now - rg.last_update) * self.policy.leak_per_second)
        rg.last_update = max(rg.last_update, now)

    def _bump(self, socket: int, row: int, amount: float, when: float, *, ue: bool) -> None:
        rg = self._group(socket, row)
        self._decay(rg, when)
        rg.level += amount
        if ue:
            rg.ue_count += 1
        else:
            rg.ce_count += 1
        self._evaluate(rg, when)

    def _note(self, when: float, message: str) -> None:
        line = f"t={when:.6f} {message}"
        self.timeline.append(line)
        _log.info("%s", line)

    def _transition(
        self, rg: RowGroupHealth, new: HealthState, now: float,
        *, old: HealthState | None = None,
    ) -> None:
        """Move a row group to *new*, emitting the typed trace event."""
        previous = old if old is not None else rg.state
        rg.state = new
        if obs.ENABLED:
            obs.emit(
                obs.HealthTransitionEvent(
                    socket=rg.socket,
                    row=rg.row,
                    old=previous.value,
                    new=new.value,
                    level=rg.level,
                    when=now,
                )
            )

    # ------------------------------------------------------------------
    # Escalation ladder
    # ------------------------------------------------------------------

    def _evaluate(self, rg: RowGroupHealth, now: float) -> None:
        where = f"row group (s{rg.socket} r{rg.row})"
        pol = self.policy
        if rg.state in (HealthState.OFFLINED, HealthState.DEFERRED):
            return
        # De-escalation: a fully drained bucket clears suspicion.
        if rg.level == 0.0 and rg.state in (HealthState.WATCH, HealthState.SOAK):
            if rg.state is HealthState.SOAK:
                self._release_soak(rg)
            self._transition(rg, HealthState.OK, now)
            self._note(now, f"{where} recovered: bucket drained, back to ok")
            return
        # Escalation (sequential so one heavy event can climb several rungs).
        if rg.state is HealthState.OK and rg.level >= pol.watch_threshold:
            self._transition(rg, HealthState.WATCH, now)
            self._note(
                now,
                f"{where} -> watch (level {rg.level:.1f}, "
                f"ce={rg.ce_count} ue={rg.ue_count})",
            )
        if rg.state is HealthState.WATCH and rg.level >= pol.soak_threshold:
            self._transition(rg, HealthState.SOAK, now)
            soaked = self._apply_soak(rg)
            self._note(
                now,
                f"{where} -> soak (level {rg.level:.1f}): "
                f"{soaked} free bytes quarantined",
            )
        if rg.state is HealthState.SOAK and rg.level >= pol.offline_threshold:
            if self.auto_remediate:
                self._offline(rg, now)
            else:
                self._note(
                    now,
                    f"{where} exceeds offline threshold "
                    f"(level {rg.level:.1f}); auto-remediation disabled",
                )

    def _row_group_ranges(self, rg: RowGroupHealth):
        return self.hv.machine.mapping.row_group_ranges(rg.socket, rg.row)

    def _apply_soak(self, rg: RowGroupHealth) -> int:
        """Quarantine the row group's free pages on their owning nodes."""
        from repro.errors import MmError

        soaked = 0
        for r in self._row_group_ranges(rg):
            try:
                node = self.hv.topology.node_of_addr(r.start)
            except MmError:
                continue  # range not under any node (already carved out)
            soaked += node.quarantine_range(r)
        return soaked

    def _release_soak(self, rg: RowGroupHealth) -> int:
        """Return a recovered row group's quarantined pages to service."""
        from repro.errors import MmError

        released = 0
        for r in self._row_group_ranges(rg):
            try:
                node = self.hv.topology.node_of_addr(r.start)
            except MmError:
                continue
            released += node.release_quarantine(r)
        return released

    def _offline(self, rg: RowGroupHealth, now: float) -> None:
        from repro.core.remediation import offline_row_group_live

        # Flip the state *before* migrating: copying pages off the sick
        # row group reads it (with ECC), which emits further corrected-
        # error events that re-enter this monitor.  OFFLINED/DEFERRED
        # short-circuit _evaluate, so the re-entry is harmless.
        before = rg.state
        rg.state = HealthState.OFFLINED
        report = offline_row_group_live(self.hv, rg.socket, rg.row)
        self.reports.append(report)
        if report.complete:
            self._transition(rg, HealthState.OFFLINED, now, old=before)
            self._note(
                now,
                f"row group (s{rg.socket} r{rg.row}) -> offlined: "
                f"{len(report.migrated)} block(s) migrated, "
                f"{report.offlined_bytes} bytes retired",
            )
        else:
            self._transition(rg, HealthState.DEFERRED, now, old=before)
            self._note(
                now,
                f"row group (s{rg.socket} r{rg.row}) -> deferred: "
                f"{len(report.deferred)} block(s) could not move yet",
            )

    def retry_deferred(self) -> list:
        """Re-attempt every deferred offlining (call after memory frees
        up); returns the new reports.  Completed ranges move to
        OFFLINED and leave the pending list."""
        from repro.core.remediation import offline_row_group_live

        out = []
        for item in list(self.hv.offline.pending):
            media = self.hv.machine.dram.mapping.decode(item.range.start)
            report = offline_row_group_live(
                self.hv, media.socket, media.row, reason=item.reason
            )
            self.reports.append(report)
            out.append(report)
            rg = self._group(media.socket, media.row)
            if report.complete:
                self.hv.offline.resolve_pending(item.range)
                self._transition(
                    rg, HealthState.OFFLINED, self.hv.machine.dram.clock
                )
                self._note(
                    self.hv.machine.dram.clock,
                    f"row group (s{rg.socket} r{rg.row}) deferred offline "
                    "completed on retry",
                )
        return out

    def poll(self) -> None:
        """Decay every bucket to the current simulated clock and apply
        de-escalations (watch/soak back to ok once drained).  Escalation
        happens eagerly on events; draining only happens with time, so
        something must look at the clock — this is that something (a
        periodic health-daemon tick)."""
        now = self.hv.machine.dram.clock
        for key in sorted(self._groups):
            rg = self._groups[key]
            self._decay(rg, now)
            self._evaluate(rg, now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state_of(self, socket: int, row: int) -> HealthState:
        """Current escalation state of a row group (OK if never seen)."""
        rg = self._groups.get((socket, row))
        return rg.state if rg else HealthState.OK

    def level_of(self, socket: int, row: int) -> float:
        """Bucket level of a row group, decayed to the current clock."""
        rg = self._groups.get((socket, row))
        if rg is None:
            return 0.0
        self._decay(rg, self.hv.machine.dram.clock)
        return rg.level

    @property
    def tracked(self) -> list[RowGroupHealth]:
        """Every row group the monitor has seen errors on."""
        return [self._groups[k] for k in sorted(self._groups)]

    def snapshot(self) -> dict:
        """Deterministic plain-data view of every tracked row group
        (state + error counts), keyed ``s<socket>r<row>`` in sorted
        order — shard payloads embed this so a chaos campaign's merge
        digest covers the health aftermath of an injected UE storm."""
        return {
            f"s{rg.socket}r{rg.row}": {
                "state": rg.state.value,
                "ce": rg.ce_count,
                "ue": rg.ue_count,
            }
            for rg in self.tracked
        }
