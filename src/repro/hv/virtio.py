"""Paravirtual IO: virtio-style mediated DMA (paper §5.1).

The Siloz prototype does guest IO through virtio: the guest posts
buffer descriptors in a virtqueue, and the *host* performs the DMA on
its behalf.  Two properties matter for Rowhammer:

1. The guest cannot issue unmediated DMAs — every transfer runs through
   host code, so the guest cannot use a device to hammer arbitrary
   rows at DRAM rates.
2. Because the host is in the loop, it can rate-limit transfers (the
   paper's answer to hypothetical "confused deputy" hammering via
   exits): :class:`DmaRateLimiter` enforces a token-bucket budget on
   host-performed accesses.

The queue layout is a simplified split virtqueue: a descriptor ring in
guest memory (so its bytes live in the guest's own subarray groups),
with available/used indices.  The device backend here is a loopback
that transforms buffers, enough to exercise the full data path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import HvError
from repro.hv.vm import VirtualMachine

#: Descriptor: u64 gpa, u32 length, u16 flags, u16 next (unused) = 16 B.
_DESC_FMT = "<QIHH"
_DESC_BYTES = struct.calcsize(_DESC_FMT)

DESC_F_WRITE = 1  # device writes (guest receives)


class DmaBudgetExceeded(HvError):
    """The host's rate limiter refused further DMA this window."""


@dataclass
class DmaRateLimiter:
    """Token bucket over host-mediated DMA operations.

    ``ops_per_window`` tokens are granted each time ``new_window`` is
    called (the host would tie this to a timer); each mediated transfer
    consumes one.  This is the §5.1 mitigation hook for exit-induced
    hammering."""

    ops_per_window: int = 1 << 30  # effectively unlimited by default
    tokens: int = field(init=False)
    refused: int = 0

    def __post_init__(self) -> None:
        if self.ops_per_window <= 0:
            raise HvError("ops_per_window must be positive")
        self.tokens = self.ops_per_window

    def new_window(self) -> None:
        self.tokens = self.ops_per_window

    def consume(self) -> None:
        if self.tokens <= 0:
            self.refused += 1
            raise DmaBudgetExceeded("host DMA budget exhausted for this window")
        self.tokens -= 1


class Virtqueue:
    """A split virtqueue living in one VM's guest memory."""

    def __init__(self, vm: VirtualMachine, ring_gpa: int, size: int = 64):
        if size <= 0:
            raise HvError("queue size must be positive")
        self.vm = vm
        self.ring_gpa = ring_gpa
        self.size = size
        self._avail: list[int] = []  # descriptor indexes posted by guest
        self.used: list[tuple[int, int]] = []  # (index, written bytes)

    def _desc_gpa(self, index: int) -> int:
        if not 0 <= index < self.size:
            raise HvError(f"descriptor index {index} out of range")
        return self.ring_gpa + index * _DESC_BYTES

    # -- guest side ------------------------------------------------------

    def guest_post(self, index: int, gpa: int, length: int, *, device_writes: bool) -> None:
        """Guest writes a descriptor into the ring and makes it
        available.  These are ordinary guest stores: unmediated, in the
        guest's own groups."""
        flags = DESC_F_WRITE if device_writes else 0
        raw = struct.pack(_DESC_FMT, gpa, length, flags, 0)
        self.vm.write(self._desc_gpa(index), raw)
        self._avail.append(index)

    @property
    def pending(self) -> int:
        return len(self._avail)

    # -- host side -------------------------------------------------------

    def host_read_desc(self, index: int) -> tuple[int, int, int]:
        raw = self.vm.machine.dram.read(
            self.vm.translate(self._desc_gpa(index)), _DESC_BYTES
        )
        gpa, length, flags, _ = struct.unpack(_DESC_FMT, raw)
        return gpa, length, flags


class VirtioDevice:
    """Host-side virtio device model with a loopback backend."""

    def __init__(self, vm: VirtualMachine, queue: Virtqueue, *, limiter: DmaRateLimiter | None = None):
        self.vm = vm
        self.queue = queue
        self.limiter = limiter or DmaRateLimiter()
        self.dma_ops = 0

    def _host_dma(self, hpa: int, length: int, data: bytes | None) -> bytes:
        """One host-performed transfer (counts against the budget)."""
        self.limiter.consume()
        self.dma_ops += 1
        dram = self.vm.machine.dram
        if data is None:
            return dram.read(hpa, length)
        dram.write(hpa, data[:length])
        return b""

    def process(self) -> int:
        """Drain the available ring: read guest-out buffers, transform
        (loopback: bytes reversed), write device-in buffers.  Returns
        the number of descriptors completed."""
        completed = 0
        payload = b""
        while self.queue._avail:
            index = self.queue._avail.pop(0)
            gpa, length, flags = self.queue.host_read_desc(index)
            region = self.vm.region_at(gpa)
            if not region.unmediated:
                raise HvError("virtio buffers must live in guest RAM")
            hpa = self.vm.translate(gpa)
            if flags & DESC_F_WRITE:
                data = payload[::-1][:length].ljust(length, b"\x00")
                self._host_dma(hpa, length, data)
                self.queue.used.append((index, length))
            else:
                payload = self._host_dma(hpa, length, None)
                self.queue.used.append((index, 0))
            completed += 1
        return completed
