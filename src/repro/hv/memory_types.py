"""QEMU-style memory region types and mediation classification (§5.1).

Siloz decides placement per page by whether the VM has *unmediated*
access: pages the guest can touch without a VM exit (RAM, ROM reads,
direct-mapped MMIO) can be hammered at will and must live in the VM's
private subarray groups; pages whose every access traps (emulated MMIO,
virtio control state) are host-mediated, rate-limitable, and stay on
host-reserved nodes.  The classification comes from the existing QEMU
memory types, mirrored here as :class:`MemoryRegionKind`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import HvError


class MemoryRegionKind(Enum):
    """QEMU memory types, tagged with their mediation status."""

    RAM = "ram"  # guest RAM: reads+writes unmediated
    ROM = "rom"  # unmediated reads, writes trap
    ROM_DEVICE = "romd"  # unmediated reads in ROMD mode
    MMIO_DIRECT = "mmio-direct"  # device memory mapped straight through
    MMIO_EMULATED = "mmio-emulated"  # every access exits to the hypervisor
    VIRTIO = "virtio"  # paravirtual queues: host-mediated DMA (§5.1)

    @property
    def unmediated(self) -> bool:
        """True when some access type reaches DRAM without a VM exit —
        i.e. the guest can hammer it (§5.1's placement predicate)."""
        return self in (
            MemoryRegionKind.RAM,
            MemoryRegionKind.ROM,
            MemoryRegionKind.ROM_DEVICE,
            MemoryRegionKind.MMIO_DIRECT,
        )


@dataclass(frozen=True)
class MemoryRegion:
    """One contiguous guest-physical region with a memory type."""

    name: str
    gpa: int
    size: int
    kind: MemoryRegionKind

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise HvError(f"region {self.name!r} must have positive size")
        if self.gpa < 0:
            raise HvError(f"region {self.name!r} has negative GPA")

    @property
    def end(self) -> int:
        return self.gpa + self.size

    @property
    def unmediated(self) -> bool:
        return self.kind.unmediated

    def __contains__(self, gpa: int) -> bool:
        return self.gpa <= gpa < self.end


def default_layout(ram_bytes: int, *, rom_bytes: int, mmio_bytes: int) -> list[MemoryRegion]:
    """The guest-physical layout used by the simulated QEMU: RAM at 0,
    then ROM (unmediated reads), then an emulated-MMIO window and a
    virtio region (both mediated)."""
    regions = [MemoryRegion("ram", 0, ram_bytes, MemoryRegionKind.RAM)]
    cursor = ram_bytes
    if rom_bytes:
        regions.append(MemoryRegion("rom", cursor, rom_bytes, MemoryRegionKind.ROM))
        cursor += rom_bytes
    if mmio_bytes:
        regions.append(
            MemoryRegion("mmio", cursor, mmio_bytes, MemoryRegionKind.MMIO_EMULATED)
        )
        cursor += mmio_bytes
        regions.append(
            MemoryRegion("virtio", cursor, mmio_bytes, MemoryRegionKind.VIRTIO)
        )
    return regions
