"""The simulated host machine (paper Table 2).

A :class:`Machine` bundles the hardware a hypervisor boots on: DRAM
geometry, the BIOS-fixed physical-to-media mapping, the simulated DRAM
itself, and the CPU complement.  Two canonical shapes exist:
``Machine.paper()`` (the Table 2 dual-socket Xeon) and
``Machine.small()`` (a few MiB, for tests and examples that simulate
every bit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram
from repro.dram.trr import TrrConfig
from repro.engine.backend import SimBackend


@dataclass
class Machine:
    """One physical server."""

    geom: DRAMGeometry
    mapping: SkylakeMapping
    dram: SimulatedDram
    cores_per_socket: int = 40

    def __post_init__(self) -> None:
        # Shape gauges: covers every factory (paper/small/medium) and
        # direct construction alike.
        if obs.ENABLED:
            obs.METRICS.gauge("machine.sockets").set(self.geom.sockets)
            obs.METRICS.gauge("machine.banks_per_socket").set(
                self.geom.banks_per_socket
            )
            obs.METRICS.gauge("machine.rows_per_bank").set(
                self.geom.rows_per_bank
            )
            obs.METRICS.gauge("machine.total_bytes").set(self.geom.total_bytes)
            obs.METRICS.gauge("machine.cores").set(self.total_cores)

    @classmethod
    def paper(
        cls,
        *,
        profile: DisturbanceProfile | None = None,
        seed: int = 0,
        backend: SimBackend | str = SimBackend.SCALAR,
    ) -> "Machine":
        """Table 2: dual-socket, 40 logical cores and 192 GiB per socket."""
        geom = DRAMGeometry.paper_default()
        mapping = SkylakeMapping(geom)
        dram = SimulatedDram(
            geom, mapping, profile=profile, seed=seed, backend=backend
        )
        return cls(geom=geom, mapping=mapping, dram=dram, cores_per_socket=40)

    @classmethod
    def small(
        cls,
        *,
        sockets: int = 1,
        rows_per_bank: int = 512,
        rows_per_subarray: int = 64,
        profile: DisturbanceProfile | None = None,
        trr_config: TrrConfig | None = None,
        seed: int = 0,
        cores_per_socket: int = 4,
        backend: SimBackend | str = SimBackend.SCALAR,
    ) -> "Machine":
        """A bit-for-bit simulatable host: 8 banks and 32 MiB per socket,
        64-row subarrays (so the scaled EPT guard block still fits inside
        one subarray)."""
        geom = DRAMGeometry.small(
            sockets=sockets,
            rows_per_bank=rows_per_bank,
            rows_per_subarray=rows_per_subarray,
        )
        mapping = SkylakeMapping.for_small_geometry(geom)
        # The threshold must sit well above normal-operation activation
        # counts (page zeroing, EPT writes) yet low enough that attack
        # tests flip bits in a few thousand ACTs.
        dram = SimulatedDram(
            geom,
            mapping,
            profile=profile or DisturbanceProfile.test_scale(threshold_mean=1500.0),
            trr_config=trr_config,
            seed=seed,
            backend=backend,
        )
        return cls(
            geom=geom,
            mapping=mapping,
            dram=dram,
            cores_per_socket=cores_per_socket,
        )

    @classmethod
    def medium(
        cls,
        *,
        sockets: int = 2,
        rows_per_subarray: int = 128,
        seed: int = 0,
        cores_per_socket: int = 8,
        backend: SimBackend | str = SimBackend.SCALAR,
    ) -> "Machine":
        """The performance-experiment host: 32 banks / 256 MiB per
        socket (see :meth:`DRAMGeometry.medium`)."""
        geom = DRAMGeometry.medium(
            sockets=sockets, rows_per_subarray=rows_per_subarray
        )
        mapping = SkylakeMapping(geom)
        dram = SimulatedDram(geom, mapping, seed=seed, backend=backend)
        return cls(
            geom=geom,
            mapping=mapping,
            dram=dram,
            cores_per_socket=cores_per_socket,
        )

    @property
    def total_cores(self) -> int:
        return self.geom.sockets * self.cores_per_socket

    def socket_cores(self, socket: int) -> tuple[int, ...]:
        self.geom.check_socket(socket)
        base = socket * self.cores_per_socket
        return tuple(range(base, base + self.cores_per_socket))
