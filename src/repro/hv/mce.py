"""Machine-check handling for uncorrectable memory errors (paper §1,
§2.5).

Rowhammer's consequences include machine-check exceptions: a double-bit
(ECC-uncorrectable) flip raises an MCE when consumed.  Linux's memory-
failure handling kills the process/VM consuming the page (or panics for
kernel memory).  Under the baseline, an attacker can therefore
denial-of-service a *co-located victim* by flipping the victim's bits;
under Siloz, uncorrectable flips can only land in the attacker's own
subarray groups, so the blast radius of an MCE is the attacker itself —
Rowhammer DoS degrades into self-DoS.

:class:`MceHandler` implements the classification and kill policy and
keeps the incident log the tests and benches assert over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro import obs
from repro.errors import UncorrectableError
from repro.log import get_logger
from repro.hv.hypervisor import Hypervisor
from repro.hv.vm import VmState
from repro.mm.offline import OfflineReason
from repro.units import PAGE_4K


_log = get_logger("hv.mce")


class MceOutcome(Enum):
    """What the memory-failure policy did about an uncorrectable error."""
    VM_KILLED = "vm-killed"
    HOST_PANIC = "host-panic"
    GUARD_ABSORBED = "guard-absorbed"  # error in an offlined guard row


@dataclass(frozen=True)
class MceIncident:
    hpa: int
    outcome: MceOutcome
    victim_vm: str | None


@dataclass
class MceHandler:
    """Memory-failure policy over one hypervisor."""

    hv: Hypervisor
    incidents: list[MceIncident] = field(default_factory=list)
    offline_failed_pages: bool = True

    def handle(self, error: UncorrectableError) -> MceIncident:
        """Classify and act on an uncorrectable error.

        - error in a VM's memory: kill that VM (memory-failure SIGBUS
          semantics), optionally offline the page;
        - error in an offlined guard row: absorbed, nothing to kill;
        - anything else is host memory: panic.
        """
        hpa = error.address
        if hpa is None:
            raise ValueError("uncorrectable error carries no address")
        health = getattr(self.hv, "health", None)
        if health is not None:
            health.on_uncorrectable(hpa)
        if self.hv.offline.is_offline(hpa):
            incident = MceIncident(hpa, MceOutcome.GUARD_ABSORBED, None)
            self.incidents.append(incident)
            self._trace(incident)
            return incident
        owner = None
        for name, vm in self.hv.vms.items():
            if vm.state is VmState.RUNNING and vm.owns_hpa(hpa):
                owner = name
                break
        if owner is not None:
            self.hv.destroy_vm(owner)
            self._maybe_offline(hpa)
            incident = MceIncident(hpa, MceOutcome.VM_KILLED, owner)
        else:
            incident = MceIncident(hpa, MceOutcome.HOST_PANIC, None)
        self.incidents.append(incident)
        self._trace(incident)
        _log.warning(
            "uncorrectable memory error at %#x: %s%s",
            hpa,
            incident.outcome.value,
            f" (VM {owner})" if owner else "",
        )
        return incident

    def _trace(self, incident: MceIncident) -> None:
        if obs.ENABLED:
            obs.emit(
                obs.MceEvent(
                    hpa=incident.hpa,
                    outcome=incident.outcome.value,
                    victim_vm=incident.victim_vm,
                    when=self.hv.machine.dram.clock,
                )
            )

    def _maybe_offline(self, hpa: int) -> None:
        if not self.offline_failed_pages:
            return
        from repro.dram.mapping import AddressRange
        from repro.errors import MmError, OfflineError

        page = hpa - hpa % PAGE_4K
        try:
            node = self.hv.topology.node_of_addr(page)
            self.hv.offline.offline(
                node, AddressRange(page, page + PAGE_4K), OfflineReason.FAULTY
            )
        except (OfflineError, MmError) as exc:
            # Expected best-effort failures: the page sits on no node, or
            # is busy/already reserved.  The incident log still records
            # the failure; anything else is a programming error and must
            # propagate.
            _log.warning("could not offline failed page %#x: %s", page, exc)

    def guarded_read(self, vm_name: str, gpa: int, length: int) -> bytes | MceIncident:
        """A guest load with memory-failure semantics: returns data, or
        the incident if the load machine-checked."""
        vm = self.hv.vm(vm_name)
        try:
            return vm.read(gpa, length)
        except UncorrectableError as exc:
            return self.handle(exc)
