"""Statistics for the evaluation (means, geomeans, 95 % CIs).

The paper reports geometric-mean overheads with 95 % confidence
intervals over repeated trials; these helpers compute the same, using a
Student-t interval (scipy) since trial counts are small.
"""

from __future__ import annotations

import math
from typing import Sequence

from scipy import stats as _scipy_stats

from repro.errors import ReproError


def _check_nonempty(values: Sequence[float]) -> None:
    if not values:
        raise ReproError("statistic of an empty sequence")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; rejects empty input."""
    _check_nonempty(values)
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for a single value."""
    _check_nonempty(values)
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (the paper's summary stat)."""
    _check_nonempty(values)
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def confidence_interval_95(values: Sequence[float]) -> tuple[float, float]:
    """(mean, half-width) of the 95 % Student-t interval."""
    _check_nonempty(values)
    m = mean(values)
    if len(values) == 1:
        return m, 0.0
    sem = stdev(values) / math.sqrt(len(values))
    t_crit = float(_scipy_stats.t.ppf(0.975, df=len(values) - 1))
    return m, t_crit * sem


def normalized_overhead_percent(system: float, baseline: float) -> float:
    """Baseline-normalised overhead in percent (Figures 4-7's y-axis).

    Positive = the system is slower / lower-throughput than baseline.
    """
    if baseline <= 0:
        raise ReproError("baseline measurement must be positive")
    return (system / baseline - 1.0) * 100.0
