"""ASCII bar charts and JSON export for figure data.

The paper's Figures 4-7 are bar charts with 95 % CI whiskers around a
zero line.  :func:`render_bars` draws the same thing in text — a signed
horizontal bar per (workload, system) with the CI marked — so bench
output visually mirrors the figures, not just their tables.
:func:`comparison_to_json` serialises the raw measurements so results
can be archived and diffed between runs.
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.eval.experiments import PerfComparison


def _bar(value: float, scale: float, width: int) -> str:
    """A signed bar around a centre line, e.g. ``    --|      `` for a
    negative value."""
    if scale <= 0:
        raise ReproError("scale must be positive")
    half = width // 2
    cells = min(half, round(abs(value) / scale * half))
    left = " " * half
    right = " " * half
    if value < 0:
        left = " " * (half - cells) + "#" * cells
    else:
        right = "#" * cells + " " * (half - cells)
    return f"{left}|{right}"


def render_bars(
    comparison: PerfComparison,
    *,
    baseline: str = "baseline",
    full_scale_pct: float = 2.5,
    width: int = 40,
    title: str = "",
) -> str:
    """Per-workload overhead bars with CI annotations.

    ``full_scale_pct`` is the overhead magnitude that fills half the
    width (the paper's figures span roughly ±2.5 %)."""
    systems = [s for s in comparison.systems() if s != baseline]
    if not systems:
        raise ReproError("nothing to plot: only the baseline present")
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"scale: full bar = {full_scale_pct:+.1f}% vs {baseline}; "
        "'#' left = faster/higher, right = slower/lower"
    )
    label_width = max(
        len(f"{w} [{s}]") for w in comparison.workloads() for s in systems
    )
    for workload in comparison.workloads():
        for system in systems:
            mean_pct, ci = comparison.overhead_percent(
                workload, system, baseline=baseline
            )
            bar = _bar(mean_pct, full_scale_pct, width)
            label = f"{workload} [{system}]"
            lines.append(
                f"{label.ljust(label_width)} {bar} {mean_pct:+.2f}% (±{ci:.2f})"
            )
    return "\n".join(lines)


def comparison_to_json(comparison: PerfComparison, *, baseline: str = "baseline") -> str:
    """Archive a comparison: raw trials plus derived overheads."""
    payload: dict = {"metric": comparison.metric, "baseline": baseline, "workloads": {}}
    for workload in comparison.workloads():
        entry: dict = {"trials": {}}
        for system in comparison.systems():
            entry["trials"][system] = comparison.trials(workload, system)
            if system != baseline:
                mean_pct, ci = comparison.overhead_percent(
                    workload, system, baseline=baseline
                )
                entry.setdefault("overhead_pct", {})[system] = {
                    "mean": mean_pct,
                    "ci95": ci,
                }
        payload["workloads"][workload] = entry
    payload["geomean_ratio"] = {
        system: comparison.geomean_ratio(system, baseline=baseline)
        for system in comparison.systems()
        if system != baseline
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def comparison_from_json(text: str) -> PerfComparison:
    """Inverse of :func:`comparison_to_json` (raw trials only)."""
    payload = json.loads(text)
    comparison = PerfComparison(metric=payload["metric"])
    for workload, entry in payload["workloads"].items():
        for system, trials in entry["trials"].items():
            for value in trials:
                comparison.add(workload, system, value)
    return comparison
