"""Experiment drivers shared by the benchmarks (Figures 4-7).

A :class:`SystemUnderTest` is a booted hypervisor plus one provisioned
VM (the paper's measurement unit: one 40-vCPU guest per server).
:func:`perf_experiment` runs a workload list for several trials on each
system and collects the raw measurements that the figure renderers and
benches normalise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.config import SilozConfig
from repro.core.siloz import SilozHypervisor
from repro.errors import ReproError
from repro.eval.stats import (
    confidence_interval_95,
    geometric_mean,
    normalized_overhead_percent,
)
from repro.hv.hypervisor import BaselineHypervisor, Hypervisor, VmSpec
from repro.hv.machine import Machine
from repro.hv.vm import VirtualMachine
from repro.units import MiB
from repro.workloads.runner import run_in_vm

#: Default measurement VM size on the medium perf machine (two subarray
#: groups' worth, mirroring the paper's multi-group 160 GiB guest).
DEFAULT_VM_BYTES = 48 * MiB


@dataclass
class SystemUnderTest:
    """One configured hypervisor with its measurement VM."""

    name: str
    hv: Hypervisor
    vm: VirtualMachine


def baseline_system(
    *,
    vm_bytes: int = DEFAULT_VM_BYTES,
    sockets: int = 2,
    seed: int = 0,
    backend: str = "scalar",
) -> SystemUnderTest:
    """Stock Linux/KVM on the medium perf machine, with its bench VM."""
    machine = Machine.medium(sockets=sockets, seed=seed, backend=backend)
    hv = BaselineHypervisor(machine)
    vm = hv.create_vm(VmSpec(name="bench", memory_bytes=vm_bytes, vcpus=8))
    return SystemUnderTest("baseline", hv, vm)


def siloz_system(
    *,
    name: str = "siloz",
    vm_bytes: int = DEFAULT_VM_BYTES,
    sockets: int = 2,
    rows_per_subarray: int | None = None,
    seed: int = 0,
    backend: str = "scalar",
) -> SystemUnderTest:
    """Siloz on the same hardware; ``rows_per_subarray`` selects the
    §7.4 Siloz-512/-1024/-2048 analogues (64/128/256 at medium scale)."""
    machine = Machine.medium(sockets=sockets, seed=seed, backend=backend)
    config = SilozConfig.scaled_for(
        machine.geom, rows_per_subarray=rows_per_subarray
    )
    hv = SilozHypervisor.boot(machine, config)
    vm = hv.create_vm(VmSpec(name="bench", memory_bytes=vm_bytes, vcpus=8))
    return SystemUnderTest(name, hv, vm)


@dataclass
class PerfComparison:
    """workload -> system -> list of per-trial measurements."""

    metric: str  # "time" (seconds, lower better) or "bandwidth" (GiB/s)
    values: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def add(self, workload: str, system: str, value: float) -> None:
        self.values.setdefault(workload, {}).setdefault(system, []).append(value)

    def workloads(self) -> list[str]:
        return list(self.values)

    def systems(self) -> list[str]:
        first = next(iter(self.values.values()), {})
        return list(first)

    def trials(self, workload: str, system: str) -> list[float]:
        try:
            return self.values[workload][system]
        except KeyError:
            raise ReproError(f"no data for ({workload}, {system})") from None

    def overhead_percent(
        self, workload: str, system: str, *, baseline: str = "baseline"
    ) -> tuple[float, float]:
        """(mean overhead %, 95 % CI half-width) vs *baseline*."""
        base_mean, _ = confidence_interval_95(self.trials(workload, baseline))
        overheads = [
            normalized_overhead_percent(v, base_mean)
            for v in self.trials(workload, system)
        ]
        return confidence_interval_95(overheads)

    def geomean_ratio(self, system: str, *, baseline: str = "baseline") -> float:
        """Geometric-mean ratio of system/baseline across workloads —
        the paper's summary statistic (within 1 ± 0.005 for Siloz)."""
        ratios = []
        for workload in self.workloads():
            base_mean, _ = confidence_interval_95(self.trials(workload, baseline))
            sys_mean, _ = confidence_interval_95(self.trials(workload, system))
            ratios.append(sys_mean / base_mean)
        return geometric_mean(ratios)


def perf_experiment(
    systems: list[SystemUnderTest],
    workloads: list[str],
    *,
    metric: str = "time",
    trials: int = 5,
    accesses: int = 20_000,
    controller_factory=None,
) -> PerfComparison:
    """Run every workload x system x trial; returns the raw comparison."""
    if metric not in ("time", "bandwidth"):
        raise ReproError(f"unknown metric {metric!r}")
    comparison = PerfComparison(metric=metric)
    for workload in workloads:
        with obs.span(f"experiment.{workload}"):
            for system in systems:
                for trial in range(trials):
                    result = run_in_vm(
                        system.hv,
                        system.vm,
                        workload,
                        accesses=accesses,
                        trial=trial,
                        controller_factory=controller_factory,
                    )
                    value = (
                        result.execution_seconds
                        if metric == "time"
                        else result.bandwidth_gib_s
                    )
                    comparison.add(workload, system.name, value)
    return comparison
