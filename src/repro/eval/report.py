"""Plain-text rendering of tables and figure data.

The paper's figures are bar charts of baseline-normalised overhead with
95 % CI error bars; ``render_figure`` prints the same series as an ASCII
table (one row per workload, one column per system) so benches can
regenerate every figure's content without a plotting stack.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.eval.experiments import PerfComparison


def metrics_footer(snapshot: Mapping[str, Any]) -> str:
    """Provenance lines for a table/figure from a metrics snapshot
    (:func:`repro.obs.metrics_snapshot`): the counters that attest what
    the run actually simulated."""
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    parts = [
        f"{name}={int(v) if float(v).is_integer() else v}"
        for name, v in sorted({**gauges, **counters}.items())
    ]
    if not parts:
        return "# metrics: (none recorded)"
    return "# metrics: " + " ".join(parts)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
    metrics: Mapping[str, Any] | None = None,
) -> str:
    """Fixed-width table with a rule under the header.

    *metrics* (a :func:`repro.obs.metrics_snapshot` dict) appends the
    provenance footer so emitted tables carry their own evidence."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    if metrics is not None:
        lines.append(metrics_footer(metrics))
    return "\n".join(lines)


def render_figure(
    comparison: PerfComparison,
    *,
    baseline: str = "baseline",
    title: str = "",
    metrics: Mapping[str, Any] | None = None,
) -> str:
    """Per-workload overhead (%, with 95 % CI) for each non-baseline
    system, plus the geometric-mean summary row — Figure 4/5/6/7 as
    text."""
    systems = [s for s in comparison.systems() if s != baseline]
    headers = ["workload"] + [f"{s} overhead% (±CI)" for s in systems]
    rows = []
    for workload in comparison.workloads():
        row: list[object] = [workload]
        for system in systems:
            mean_pct, ci = comparison.overhead_percent(
                workload, system, baseline=baseline
            )
            row.append(f"{mean_pct:+.3f} (±{ci:.3f})")
        rows.append(row)
    summary: list[object] = ["geomean"]
    for system in systems:
        ratio = comparison.geomean_ratio(system, baseline=baseline)
        summary.append(f"{(ratio - 1) * 100:+.3f}")
    rows.append(summary)
    return render_table(headers, rows, title=title, metrics=metrics)
