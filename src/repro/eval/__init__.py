"""Evaluation harness: statistics, experiments, and rendering.

Everything the benchmarks share: geometric means and confidence
intervals (:mod:`repro.eval.stats`), the per-figure experiment drivers
(:mod:`repro.eval.experiments`), and the plain-text table/figure
renderers (:mod:`repro.eval.report`).
"""

from repro.eval.stats import confidence_interval_95, geometric_mean, mean, stdev
from repro.eval.experiments import (
    PerfComparison,
    SystemUnderTest,
    baseline_system,
    perf_experiment,
    siloz_system,
)
from repro.eval.report import render_figure, render_table

__all__ = [
    "PerfComparison",
    "SystemUnderTest",
    "baseline_system",
    "confidence_interval_95",
    "geometric_mean",
    "mean",
    "perf_experiment",
    "render_figure",
    "render_table",
    "siloz_system",
    "stdev",
]
