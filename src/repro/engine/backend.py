"""Simulation-backend selection for the hot activation path.

Three backends drive the disturbance/TRR/refresh core of
:class:`~repro.dram.module.SimulatedDram`:

- ``SCALAR`` — the original per-access object-graph walk.  It is the
  *golden reference*: every fast-path result is defined as "whatever the
  scalar path would have produced".
- ``BATCHED`` — the :mod:`repro.engine.batch` fast path: flat per-bank
  ``array('d')`` pressure/threshold tables, a memoized neighbor table,
  and an inlined per-batch loop that consumes the same RNG streams in
  the same order as the scalar path, so flip sets, TRR decisions, ECC
  events and health escalations are bit-for-bit identical (enforced by
  ``tests/test_differential.py``).
- ``VECTORIZED`` — the :mod:`repro.engine.vector` numpy path: whole-batch
  pressure/TRR/clock math as float64 array kernels, dropping to the
  exact scalar code only at RNG-consuming events (first-touch threshold
  draws, flip emission).  Same bit-identical contract, enforced by the
  same differential suite, pairwise against both other backends.

The enum deliberately lives in a dependency-free module so the DRAM
layer can import it without pulling the engine implementation (or
numpy) in.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import ReproError


class BackendError(ReproError):
    """An unknown simulation backend was requested."""


class SimBackend(Enum):
    """Which implementation services the activation hot path."""

    SCALAR = "scalar"
    BATCHED = "batched"
    VECTORIZED = "vectorized"

    @classmethod
    def parse(cls, value: "SimBackend | str") -> "SimBackend":
        """Accept an enum member or its string name (CLI/config input)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise BackendError(
                f"unknown simulation backend {value!r}; "
                f"choose from {[b.value for b in cls]}"
            ) from None
