"""The batched hot-path simulation engine.

Hammer sweeps and CE-storm scenarios spend almost all of their time in
``SimulatedDram.activate`` → ``DisturbanceModel.on_activate``: per ACT
the scalar path recomputes the aggressor's neighbor list, walks three
dicts keyed by (socket, bank, row) tuples, and crosses half a dozen
Python call frames.  This module removes that overhead without changing
a single observable bit:

- :class:`BatchedDisturbanceModel` stores per-bank pressure and victim
  thresholds in flat ``array('d')`` tables (indexed by row) and caches
  each row's (victim, weight) spill list in a per-row memo table.
- :func:`run_activation_batch` executes a whole vector of same-bank row
  activations in one inlined loop: clock advance, refresh windows, fault
  hooks, TRR sampling, disturbance spill, flip emission and TRR REF
  ticks — the exact operation sequence of the scalar path with the
  per-ACT call frames flattened away.

**Equivalence contract.**  The scalar path is the golden reference.  The
batched path consumes the same RNG streams (disturbance and TRR) in the
same order, performs the same float arithmetic in the same order, and
mutates the same module-level structures (``flips_log``, counters,
stored data, ECC), so replaying any access sequence through either
backend yields identical flip sets, TRR decisions, ECC events and
health escalations.  ``tests/test_differential.py`` enforces this over
seeded attack patterns, fault plans and workload traces.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Any, Sequence

from repro import obs
from repro.dram.disturbance import BitFlip, DisturbanceModel, DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.errors import DramError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (module -> engine)
    from repro.dram.module import SimulatedDram

#: Per-geometry NaN row templates, keyed by rows_per_bank.  Building the
#: template costs O(rows) per call; every model instance (one per host in
#: fleet campaigns) used to pay it in ``__init__``.  The template is
#: read-only by convention — consumers copy before mutating.
_NAN_TEMPLATES: dict[int, array] = {}


def nan_row_template(rows: int) -> array:
    """Shared all-NaN ``array('d')`` of length *rows* (copy before use)."""
    got = _NAN_TEMPLATES.get(rows)
    if got is None:
        got = array("d", [float("nan")]) * rows
        _NAN_TEMPLATES[rows] = got
    return got


class BatchedDisturbanceModel(DisturbanceModel):
    """Array-backed disturbance state, RNG-compatible with the scalar model.

    Per touched (socket, bank) the model keeps two flat ``array('d')``
    tables indexed by bank-local row: accumulated pressure, and the
    lazily-drawn per-victim threshold (NaN = not drawn yet).  Thresholds
    are drawn through the same ``random.Random`` stream in the same
    first-touch order as the scalar model's dict, so both backends see
    identical threshold values and identical downstream flip randomness.
    """

    def __init__(
        self,
        geom: DRAMGeometry,
        profile: DisturbanceProfile | None = None,
        *,
        seed: int = 0,
    ):
        super().__init__(geom, profile, seed=seed)
        rows = geom.rows_per_bank
        self._zeros = array("d", bytes(8 * rows))
        self._nans = nan_row_template(rows)
        #: (socket, bank) -> (pressure array, threshold array).  The
        #: vectorized subclass stores np.float64 arrays here instead;
        #: both expose float __getitem__/__setitem__, which is all the
        #: batched loop needs.
        self._banks: dict[tuple[int, int], tuple[Any, Any]] = {}
        #: row -> tuple[(victim, weight), ...]; lazily filled memo of
        #: the subarray-clipped spill targets (identical to _neighbors).
        self._neighbor_table: list = [None] * rows

    # ------------------------------------------------------------------
    # Flat state
    # ------------------------------------------------------------------

    def _bank_arrays(self, socket: int, bank: int) -> tuple[Any, Any]:
        key = (socket, bank)
        got = self._banks.get(key)
        if got is None:
            got = (array("d", self._zeros), array("d", self._nans))
            self._banks[key] = got
        return got

    def _neighbor_tuple(self, row: int) -> tuple:
        nb = self._neighbor_table[row]
        if nb is None:
            nb = tuple(self._neighbors(row))
            self._neighbor_table[row] = nb
        return nb

    def _add_pressure_flat(
        self,
        socket: int,
        bank: int,
        aggressor_row: int,
        amount: float,
        when: float,
        press: Any,
        thresh: Any,
    ) -> list[BitFlip]:
        """Mirror of the scalar ``_add_pressure`` over the flat tables."""
        new_flips: list[BitFlip] = []
        rng = self._rng
        profile = self.profile
        row_bits = self.geom.row_bytes * 8
        inv_bits_mean = 1.0 / profile.flip_bits_mean
        for victim, weight in self._neighbor_tuple(aggressor_row):
            pressure = press[victim] + amount * weight
            threshold = thresh[victim]
            if threshold != threshold:  # NaN: first touch, draw like scalar
                threshold = (
                    rng.lognormvariate(0.0, profile.threshold_sigma)
                    * profile.threshold_mean
                )
                thresh[victim] = threshold
            while pressure >= threshold:
                pressure -= threshold
                n_bits = max(1, round(rng.expovariate(inv_bits_mean)))
                for _ in range(n_bits):
                    new_flips.append(
                        BitFlip(
                            socket=socket,
                            bank=bank,
                            row=victim,
                            bit=rng.randrange(row_bits),
                            aggressor_row=aggressor_row,
                            when=when,
                        )
                    )
            press[victim] = pressure
        self.flips.extend(new_flips)
        return new_flips

    # ------------------------------------------------------------------
    # DisturbanceModel interface (scalar-compatible overrides)
    # ------------------------------------------------------------------

    def on_activate(self, socket: int, bank: int, row: int, when: float) -> list[BitFlip]:
        """One ACT: self-refresh the aggressor, spill unit pressure."""
        self.geom.check_row(row)
        press, thresh = self._bank_arrays(socket, bank)
        press[row] = 0.0  # the ACT refreshes the activated row itself
        return self._add_pressure_flat(socket, bank, row, 1.0, when, press, thresh)

    def on_row_open_time(
        self, socket: int, bank: int, row: int, seconds: float, when: float
    ) -> list[BitFlip]:
        """RowPress: extra pressure proportional to row-open time."""
        if seconds < 0:
            raise DramError(f"open time must be non-negative, got {seconds}")
        amount = seconds * self.profile.effective_rowpress_rate
        if amount == 0.0:
            return []
        press, thresh = self._bank_arrays(socket, bank)
        return self._add_pressure_flat(socket, bank, row, amount, when, press, thresh)

    def on_refresh_row(self, socket: int, bank: int, row: int) -> None:
        """Targeted (TRR) refresh: drop the row's accumulated pressure."""
        got = self._banks.get((socket, bank))
        if got is not None:
            got[0][row] = 0.0

    def on_refresh_all(self) -> None:
        """Full refresh window: clear every bank's pressure table."""
        # In-place clear keeps any hoisted references to the pressure
        # arrays (run_activation_batch locals) valid across refreshes.
        for press, _ in self._banks.values():
            press[:] = self._zeros

    def pressure_on(self, socket: int, bank: int, row: int) -> float:
        """Accumulated pressure on one row (test observability)."""
        got = self._banks.get((socket, bank))
        return got[0][row] if got is not None else 0.0


def run_activation_batch(
    dram: "SimulatedDram", socket: int, bank: int, rows: Sequence[int]
) -> list[BitFlip]:
    """Issue *rows* as one batch of ACTs to (socket, bank).

    Requires the module's disturbance model to be a
    :class:`BatchedDisturbanceModel`; callers go through
    :meth:`SimulatedDram.activate_batch`, which dispatches on the
    configured backend.  Every per-ACT side effect of the scalar
    ``activate`` happens here in the same order; fault hooks still fire
    per activation, so injected faults land mid-batch exactly as they
    would mid-loop.
    """
    dist = dram.disturbance
    if not isinstance(dist, BatchedDisturbanceModel):
        raise DramError("run_activation_batch needs the batched backend")
    rows = rows if isinstance(rows, list) else list(rows)
    geom = dram.geom
    check_row = geom.check_row
    for row in rows:
        check_row(row)

    counters = dram.counters
    hooks = dram._hooks
    trr = dram.trr
    act_s = dram.act_seconds
    window = dram.refresh_window
    clock = dram.clock
    last_refresh = dram._last_full_refresh
    bank_key = (socket, bank)
    repairs_all = dram._repairs
    repairs = repairs_all.get(bank_key)
    press, thresh = dist._bank_arrays(socket, bank)
    table = dist._neighbor_table
    rng = dist._rng
    profile = dist.profile
    sigma = profile.threshold_sigma
    mean = profile.threshold_mean
    inv_bits_mean = 1.0 / profile.flip_bits_mean
    row_bits = geom.row_bytes * 8
    flips_model = dist.flips
    apply_flips = dram._apply_internal_flips
    out: list[BitFlip] = []
    # Observability: one module-attribute read per batch, then a local
    # bool per ACT — the zero-cost-when-disabled contract of repro.obs.
    # Event payloads and ordering mirror the scalar path exactly, so
    # traces are backend-independent (tests/test_obs.py asserts this).
    trace_on = obs.ENABLED
    emit = obs.emit

    if trr is not None:
        sampler = trr._sampler(socket, bank)
        trr_random = trr._rng.random
        s_counters = sampler._counters
        cfg = trr.config
        sampled_after = cfg.sampled_acts_after_ref
        sample_prob = cfg.sample_prob
        slots = cfg.slots
        acts_since_ref = sampler._acts_since_ref
        trr_every = dram.trr_ref_every
        bank_acts = dram._acts_by_bank.get(bank_key, 0)

    for row in rows:
        if hooks:
            counters.activations += 1
        clock += act_s
        if clock - last_refresh >= window:
            dist.on_refresh_all()
            last_refresh = clock
            counters.refresh_windows += 1
            if trace_on:
                emit(obs.RefreshWindowEvent(when=clock))
        if hooks:
            dram.clock = clock
            dram._last_full_refresh = last_refresh
            for hook in hooks:
                hook.on_activate(dram, socket, bank, row)
            # A hook may advance time or plant a late repair; re-sync.
            clock = dram.clock
            last_refresh = dram._last_full_refresh
            repairs = repairs_all.get(bank_key)
        internal = repairs.get(row, row) if repairs else row

        if trr is not None:
            # Inlined TrrSampler.observe_maybe (same RNG short-circuit).
            acts_since_ref += 1
            if acts_since_ref <= sampled_after or trr_random() < sample_prob:
                c = s_counters.get(internal)
                if c is not None:
                    s_counters[internal] = c + 1
                elif len(s_counters) < slots:
                    s_counters[internal] = 1
                else:
                    for tracked in list(s_counters):
                        v = s_counters[tracked] - 1
                        if v <= 0:
                            del s_counters[tracked]
                        else:
                            s_counters[tracked] = v
                if trace_on:
                    emit(
                        obs.TrrSampleEvent(
                            socket=socket, bank=bank, row=internal, when=clock
                        )
                    )

        # Inlined disturbance.on_activate: self-refresh, then spill.
        press[internal] = 0.0
        nb = table[internal]
        if nb is None:
            nb = dist._neighbor_tuple(internal)
        new_flips = None
        for victim, weight in nb:
            pressure = press[victim] + weight  # amount == 1.0
            threshold = thresh[victim]
            if threshold != threshold:  # NaN: draw in scalar first-touch order
                threshold = rng.lognormvariate(0.0, sigma) * mean
                thresh[victim] = threshold
            if pressure >= threshold:
                if new_flips is None:
                    new_flips = []
                while pressure >= threshold:
                    pressure -= threshold
                    n_bits = max(1, round(rng.expovariate(inv_bits_mean)))
                    for _ in range(n_bits):
                        new_flips.append(
                            BitFlip(
                                socket=socket,
                                bank=bank,
                                row=victim,
                                bit=rng.randrange(row_bits),
                                aggressor_row=internal,
                                when=clock,
                            )
                        )
            press[victim] = pressure
        if new_flips:
            flips_model.extend(new_flips)
            dram.clock = clock
            out.extend(apply_flips(socket, bank, new_flips))

        if trr is not None:
            bank_acts += 1
            if bank_acts % trr_every == 0:
                counters.trr_refs += 1
                sampler._acts_since_ref = acts_since_ref
                for victim in trr.on_ref(socket, bank, when=clock):
                    press[victim] = 0.0
                acts_since_ref = sampler._acts_since_ref  # 0 after take_targets

    dram.clock = clock
    dram._last_full_refresh = last_refresh
    if not hooks:
        counters.activations += len(rows)
    if trr is not None:
        sampler._acts_since_ref = acts_since_ref
        dram._acts_by_bank[bank_key] = bank_acts
    return out
