"""The vectorized (numpy) hot-path simulation engine.

Third :class:`~repro.engine.backend.SimBackend`: the batched loop of
:mod:`repro.engine.batch` already flattened the per-ACT call frames, but
it still walks Python bytecode once per activation.  This module moves
the RNG-free bulk math of a whole activation batch into numpy while
keeping the repo's golden equivalence contract — every flip set, TRR
decision, ECC event and health escalation is bit-identical to the scalar
reference.  The design splits each batch into:

1. **Deterministic bulk math (numpy).**  The clock trajectory, refresh
   window detection, TRR tick schedule, per-victim pressure trajectories
   and threshold-crossing detection are all RNG-free, so they vectorize.
   Exactness holds because ``np.cumsum`` on float64 is a sequential left
   fold (identical rounding to the scalar ``+=`` chain), zero terms obey
   ``p + 0.0 == p``, and the refresh-window check replicates the scalar
   subtraction form ``clock - last_refresh >= window`` elementwise.

2. **Rare RNG-consuming events (exact scalar code).**  First-touch
   threshold draws are handled by running the batched per-ACT loop over
   a prefix of the batch until every victim has a drawn threshold;
   threshold-crossing flip emission replays the scalar draw sequence in
   global ``(ACT index, neighbor order)`` order.  Crucially the pressure
   trajectory itself is RNG-free (the crossing loop subtracts the
   threshold deterministically; randomness only picks flipped bits), so
   crossings never invalidate the bulk math of other victims.

3. **TRR sampling via MT19937 state transplant.**  CPython's ``random``
   and numpy's legacy ``RandomState`` share the Mersenne Twister core
   and the 53-bit double recipe, so :func:`bulk_uniforms` generates the
   exact per-ACT sampling stream in one call and resynchronizes the
   Python generator afterwards.  Sampler counter updates (a fraction of
   ACTs) and REF-tick target selection stay scalar, replayed in time
   order.

Attack batches are almost always ``rows * rounds`` tilings of a short
hammer pattern (:func:`repro.attack.hammer.run_pattern`), so the runner
first looks for an exact period.  A periodic batch does its per-ACT
victim math on the period only and folds all rounds with one small
tiled cumsum (:func:`_span_tiled`); everything else — non-periodic
batches, spans containing refresh windows or TRR victim refreshes —
takes the generic whole-batch matrix path (:func:`_finals_generic`).
Both produce identical state.

Batches with registered fault hooks, with tracing enabled, or shorter
than :data:`MIN_VECTOR_BATCH` delegate to the (equivalent) batched loop:
hooks mutate mid-batch state, traces must interleave per ACT, and short
vectors do not amortize the numpy set-up cost.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro import obs
from repro.dram.disturbance import BitFlip, DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.engine.batch import (
    BatchedDisturbanceModel,
    nan_row_template,
    run_activation_batch,
)
from repro.errors import DramError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (module -> engine)
    from repro.dram.module import SimulatedDram

#: Batches shorter than this run through the batched per-ACT loop (still
#: bit-identical, just not vectorized).  Patchable in tests to force the
#: vector path onto tiny batches.
MIN_VECTOR_BATCH: int = 96

#: How far into a batch to look for a repeat of its first row when
#: detecting ``rows * rounds`` tilings; hammer patterns are far shorter.
_PERIOD_WINDOW: int = 128

#: Relative slack used when screening approximate trajectories against
#: thresholds.  The approximation (cumsum minus a segment baseline, or
#: the periodic-case count/gap bounds) can differ from the exact fold by
#: accumulated rounding of order ``n * eps * max|cumsum|``; the screen
#: widens the threshold test by a far larger slack so no exact crossing
#: is ever missed, and every screened victim is re-walked with exact
#: scalar arithmetic anyway.
_SCREEN_SLACK: float = 1e-9

_EMPTY_F64 = np.empty(0, dtype=np.float64)


def bulk_uniforms(rng: random.Random, n: int) -> np.ndarray:
    """Draw *n* doubles bit-identical to ``[rng.random() for _ in range(n)]``.

    Transplants the 624-word MT19937 state into a legacy numpy
    ``RandomState``, bulk-generates, then resynchronizes *rng* from the
    final numpy state so subsequent scalar draws continue the stream
    exactly where the bulk draw left it.
    """
    if n <= 0:
        return _EMPTY_F64
    version, internal, gauss_next = rng.getstate()
    rs = np.random.RandomState()
    rs.set_state(("MT19937", np.asarray(internal[:-1], dtype=np.uint32), internal[-1]))
    out = rs.random_sample(n)
    state: Any = rs.get_state()
    rng.setstate((version, tuple(state[1].tolist()) + (int(state[2]),), gauss_next))
    return out


class VectorizedDisturbanceModel(BatchedDisturbanceModel):
    """Numpy-backed disturbance state, RNG-compatible with both backends.

    Per touched (socket, bank) the model keeps accumulated pressure and
    lazily-drawn victim thresholds (NaN = not drawn) in ``np.float64``
    arrays.  IEEE-754 arithmetic on ``np.float64`` scalars matches
    Python floats bit for bit, so the inherited scalar-compatible
    methods and the batched fallback loop run unchanged on these tables;
    only :func:`run_activation_batch_vectorized` exploits their numpy
    nature.
    """

    def __init__(
        self,
        geom: DRAMGeometry,
        profile: DisturbanceProfile | None = None,
        *,
        seed: int = 0,
    ):
        super().__init__(geom, profile, seed=seed)
        rows = geom.rows_per_bank
        # Reuse the per-geometry template hoisted in repro.engine.batch:
        # frombuffer shares its memory, and .copy() below never mutates it.
        self._np_nans = np.frombuffer(nan_row_template(rows), dtype=np.float64)
        self._np_zeros = np.zeros(rows, dtype=np.float64)
        # Periodic-batch structures keyed on (subarray alignment, edge
        # anchor, shifted period rows): campaigns replay the same hammer
        # pattern at many base rows, so the victim tables and fold
        # templates are reused wholesale across banks and base rows.
        self._tile_cache: dict[tuple[int, int, bytes], dict[str, Any]] = {}

    def _bank_arrays(self, socket: int, bank: int) -> tuple[Any, Any]:
        key = (socket, bank)
        got = self._banks.get(key)
        if got is None:
            got = (self._np_zeros.copy(), self._np_nans.copy())
            self._banks[key] = got
        return got

    def on_refresh_all(self) -> None:
        """Full refresh window: clear every bank's pressure table.

        In-place (like the batched model) so hoisted references held by
        an in-flight batch runner stay valid."""
        for press, _ in self._banks.values():
            press[:] = 0.0

    def pressure_on(self, socket: int, bank: int, row: int) -> float:
        got = self._banks.get((socket, bank))
        return float(got[0][row]) if got is not None else 0.0


def _find_period(arr: np.ndarray) -> int:
    """Smallest ``L`` with ``arr == tile(arr[:L])``, or 0 when none.

    Only periods up to :data:`_PERIOD_WINDOW` are considered (hammer
    patterns are short) and only true tilings qualify: ``n % L == 0``
    plus the full self-overlap check ``arr[L:] == arr[:-L]``.
    """
    n = int(arr.size)
    if n < 2:
        return 0
    win = min(n // 2, _PERIOD_WINDOW)
    cand = np.flatnonzero(arr[1 : win + 1] == arr[0]) + 1
    for L in cand.tolist():
        if n % L == 0 and bool((arr[L:] == arr[:-L]).all()):
            return int(L)
    return 0


def run_activation_batch_vectorized(
    dram: "SimulatedDram", socket: int, bank: int, rows: Sequence[int]
) -> list[BitFlip]:
    """Issue *rows* as one batch of ACTs through the vectorized engine.

    Requires the module's disturbance model to be a
    :class:`VectorizedDisturbanceModel`; callers go through
    :meth:`SimulatedDram.activate_batch`.  Produces bit-identical state
    and results to the scalar and batched backends (enforced by
    ``tests/test_differential.py``).
    """
    dist = dram.disturbance
    if not isinstance(dist, VectorizedDisturbanceModel):
        raise DramError("run_activation_batch_vectorized needs the vectorized backend")
    rows = rows if isinstance(rows, list) else list(rows)
    if not rows or len(rows) < MIN_VECTOR_BATCH or dram._hooks or obs.ENABLED:
        # Fault hooks mutate mid-batch state, tracing must interleave
        # events per ACT, and short batches don't amortize the numpy
        # set-up; the batched loop is exact for all three.
        return run_activation_batch(dram, socket, bank, rows)

    geom = dram.geom
    try:
        rows_arr = np.asarray(rows, dtype=np.int64)
    except (OverflowError, TypeError):
        return run_activation_batch(dram, socket, bank, rows)
    minrow = int(rows_arr.min())
    maxrow = int(rows_arr.max())
    if minrow < 0 or maxrow >= geom.rows_per_bank:
        bad = (rows_arr < 0) | (rows_arr >= geom.rows_per_bank)
        geom.check_row(int(rows_arr[np.argmax(bad)]))  # raises the canonical error

    repairs = dram._repairs.get((socket, bank))
    _, thresh = dist._bank_arrays(socket, bank)
    out: list[BitFlip] = []

    period = _find_period(rows_arr)
    if period:
        # Media -> internal rows (vendor repairs); static without hooks.
        base_media = rows_arr[:period]
        if repairs:
            media_distinct, base_inv = np.unique(base_media, return_inverse=True)
            internal_of = np.asarray(
                [repairs.get(int(r), int(r)) for r in media_distinct],
                dtype=np.int64,
            )
            base_internal = internal_of[base_inv]
        else:
            base_internal = base_media
        rounds = len(rows) // period
        if repairs:
            iminrow = int(base_internal.min())
            imaxrow = int(base_internal.max())
        else:
            iminrow, imaxrow = minrow, maxrow
        # The victim structure is translation-invariant: neighbor tables
        # depend only on row deltas, the subarray alignment of the rows,
        # and bank-edge clamping.  Key entries on the shifted pattern so
        # a pattern swept across base rows reuses one entry.
        radius = dist.profile.blast_radius
        lo, hi = iminrow - radius, imaxrow + radius
        if 0 <= lo and hi < geom.rows_per_bank and lo // geom.rows_per_subarray == hi // geom.rows_per_subarray:
            # Whole blast span interior to one subarray: no victim is
            # dropped at a subarray or bank edge, so the entry is fully
            # shift-invariant and every base row shares one key.
            align, anchor = -1, -1
        else:
            align = iminrow % geom.rows_per_subarray
            anchor = iminrow if (lo < 0 or hi >= geom.rows_per_bank) else -1
        key = (align, anchor, (base_internal - iminrow).tobytes())
        entry = dist._tile_cache.get(key)
        if entry is None:
            distinct, base_idx = np.unique(base_internal, return_inverse=True)
            entry = _build_tile_entry(dist, base_internal, base_idx, distinct, iminrow)
            if len(dist._tile_cache) >= 128:
                dist._tile_cache.clear()
            dist._tile_cache[key] = entry
        shift = iminrow - entry["minrow0"]
        if entry["V"]:
            vr = entry["vrows_arr"] + shift if shift else entry["vrows_arr"]
            if bool(np.isnan(thresh[vr]).any()):
                # First-touch threshold draws: run one whole period
                # through the exact per-ACT loop (every aggressor —
                # hence every victim — occurs in it, so every victim
                # threshold gets drawn), then vectorize the other rounds.
                out.extend(run_activation_batch(dram, socket, bank, rows[:period]))
                rounds -= 1
                if not rounds:
                    return out
        out.extend(_span_tiled(dram, dist, socket, bank, entry, rounds, shift))
        return out

    distinct_media, inv = np.unique(rows_arr, return_inverse=True)
    if repairs:
        internal_of = np.asarray(
            [repairs.get(int(r), int(r)) for r in distinct_media], dtype=np.int64
        )
        internal_arr = internal_of[inv]
        distinct, agg_idx = np.unique(internal_arr, return_inverse=True)
    else:
        internal_arr = rows_arr
        distinct, agg_idx = distinct_media, inv

    # First-touch prefix: run the exact per-ACT loop until every victim
    # of every aggressor in the batch has a drawn (non-NaN) threshold,
    # so the vector span below never consumes the disturbance RNG except
    # at crossings.
    k = 0
    for ai, r in enumerate(distinct.tolist()):
        if any(thresh[v] != thresh[v] for v, _w in dist._neighbor_tuple(int(r))):
            k = max(k, int(np.argmax(agg_idx == ai)) + 1)
    if k:
        out.extend(run_activation_batch(dram, socket, bank, rows[:k]))
        if k == len(rows):
            return out
        # Keep the full `distinct`: absent aggressors simply never match
        # in the sliced agg_idx, so their wlut rows go unused.
        internal_arr = internal_arr[k:]
        agg_idx = agg_idx[k:]
    out.extend(_span_generic(dram, dist, socket, bank, internal_arr, distinct, agg_idx))
    return out


def _span_clock(dram: "SimulatedDram", n: int) -> np.ndarray:
    """clk[t] = clock during ACT t; cumsum is a sequential left fold, so
    every partial sum matches the scalar ``clock += act_s`` chain bit
    for bit."""
    clk = np.empty(n + 1, dtype=np.float64)
    clk[0] = dram.clock
    clk[1:] = dram.act_seconds
    np.cumsum(clk, out=clk)
    return clk[1:]


def _span_head(
    dram: "SimulatedDram",
    socket: int,
    bank: int,
    n: int,
    clk: np.ndarray,
    row_at: Callable[[int], int],
) -> tuple[list[int], list[tuple[int, list[int]]], float]:
    """Per-span refresh-window scan and TRR pass, shared by both spans.

    Returns ``(window_pos, trr_victims, last_refresh)`` and mutates the
    TRR sampler/RNG/counter state exactly like the batched loop would.
    Disturbance state never feeds back into TRR, so this whole pass is
    valid regardless of later crossing events.
    """
    counters = dram.counters

    # Refresh-window events (rare): exact subtraction-form scan.
    window = dram.refresh_window
    last_refresh = dram._last_full_refresh
    window_pos: list[int] = []
    t0 = 0
    while True:
        hit = np.nonzero(clk[t0:] - last_refresh >= window)[0]
        if hit.size == 0:
            break
        t = t0 + int(hit[0])
        window_pos.append(t)
        last_refresh = float(clk[t])
        t0 = t + 1

    # TRR pass: tick schedule, bulk sampling draws, scalar counter/REF
    # replay in time order.
    trr = dram.trr
    bank_key = (socket, bank)
    trr_victims: list[tuple[int, list[int]]] = []
    if trr is not None:
        sampler = trr._sampler(socket, bank)
        cfg = trr.config
        trr_every = dram.trr_ref_every
        bank_acts0 = dram._acts_by_bank.get(bank_key, 0)
        first_tick = trr_every - (bank_acts0 % trr_every) - 1
        ticks = (
            np.arange(first_tick, n, trr_every, dtype=np.int64)
            if first_tick < n
            else np.empty(0, dtype=np.int64)
        )
        tpos = np.arange(n, dtype=np.int64)
        s0 = sampler._acts_since_ref
        if ticks.size:
            prev = np.searchsorted(ticks, tpos, side="left")
            s_arr = np.where(
                prev == 0, s0 + tpos + 1, tpos - ticks[np.maximum(prev - 1, 0)]
            )
        else:
            s_arr = s0 + tpos + 1
        draw_mask = s_arr > cfg.sampled_acts_after_ref
        draws = bulk_uniforms(trr._rng, int(draw_mask.sum()))
        observed = ~draw_mask
        if draws.size:
            observed[draw_mask] = draws < cfg.sample_prob
        olist = np.nonzero(observed)[0].tolist()
        tlist = ticks.tolist()
        s_counters = sampler._counters
        slots = cfg.slots
        oi = ti = 0
        while oi < len(olist) or ti < len(tlist):
            # A sample and a REF tick on the same ACT: sample first.
            if ti >= len(tlist) or (oi < len(olist) and olist[oi] <= tlist[ti]):
                t = olist[oi]
                oi += 1
                row = row_at(t)
                c = s_counters.get(row)
                if c is not None:
                    s_counters[row] = c + 1
                elif len(s_counters) < slots:
                    s_counters[row] = 1
                else:
                    for tracked in list(s_counters):
                        v = s_counters[tracked] - 1
                        if v <= 0:
                            del s_counters[tracked]
                        else:
                            s_counters[tracked] = v
            else:
                t = tlist[ti]
                ti += 1
                counters.trr_refs += 1
                victims = trr.on_ref(socket, bank, when=float(clk[t]))
                if victims:
                    trr_victims.append((t, victims))
        sampler._acts_since_ref = (n - 1 - tlist[-1]) if tlist else s0 + n
        dram._acts_by_bank[bank_key] = bank_acts0 + n
    return window_pos, trr_victims, last_refresh


def _emit_events(
    dram: "SimulatedDram",
    dist: VectorizedDisturbanceModel,
    socket: int,
    bank: int,
    events: list[tuple[int, int, int, int]],
    clk: np.ndarray,
    row_at: Callable[[int], int],
    vrows: list[int],
) -> list[BitFlip]:
    """Replay threshold crossings in global (ACT, neighbor-order) order,
    consuming the disturbance RNG exactly like the scalar path."""
    events.sort()
    rng = dist._rng
    profile = dist.profile
    inv_bits_mean = 1.0 / profile.flip_bits_mean
    row_bits = dram.geom.row_bytes * 8
    flips_out: list[BitFlip] = []
    for t, _order, j, spills in events:
        when = float(clk[t])
        new_flips = []
        for _ in range(spills):
            n_bits = max(1, round(rng.expovariate(inv_bits_mean)))
            for _ in range(n_bits):
                new_flips.append(
                    BitFlip(
                        socket=socket,
                        bank=bank,
                        row=vrows[j],
                        bit=rng.randrange(row_bits),
                        aggressor_row=row_at(t),
                        when=when,
                    )
                )
        dist.flips.extend(new_flips)
        dram.clock = when
        flips_out.extend(dram._apply_internal_flips(socket, bank, new_flips))
    return flips_out


def _span_generic(
    dram: "SimulatedDram",
    dist: VectorizedDisturbanceModel,
    socket: int,
    bank: int,
    internal_arr: np.ndarray,
    distinct: np.ndarray,
    agg_idx: np.ndarray,
) -> list[BitFlip]:
    """Whole-batch matrix path for non-periodic spans."""
    n = int(internal_arr.size)
    clk = _span_clock(dram, n)
    window_pos, trr_victims, last_refresh = _span_head(
        dram, socket, bank, n, clk, lambda t: int(internal_arr[t])
    )
    return _finals_generic(
        dram,
        dist,
        socket,
        bank,
        internal_arr,
        distinct,
        agg_idx,
        clk,
        window_pos,
        trr_victims,
        last_refresh,
    )


def _finals_generic(
    dram: "SimulatedDram",
    dist: VectorizedDisturbanceModel,
    socket: int,
    bank: int,
    internal_arr: np.ndarray,
    distinct: np.ndarray,
    agg_idx: np.ndarray,
    clk: np.ndarray,
    window_pos: list[int],
    trr_victims: list[tuple[int, list[int]]],
    last_refresh: float,
) -> list[BitFlip]:
    """Generic finals: dense (ACT, victim) reset masks, screened cumsum
    trajectories, exact re-walk of screened victims."""
    n = int(internal_arr.size)
    counters = dram.counters
    press, thresh = dist._bank_arrays(socket, bank)

    # Victim structure: per-ACT contribution matrix Wt (n, V) and the
    # neighbor-order table used to sequence same-ACT crossing draws.
    nbs = [dist._neighbor_tuple(int(r)) for r in distinct.tolist()]
    vrows: list[int] = []
    vindex: dict[int, int] = {}
    for nb in nbs:
        for v, _w in nb:
            if v not in vindex:
                vindex[v] = len(vrows)
                vrows.append(v)
    V = len(vrows)
    A = len(nbs)
    wlut = np.zeros((A, max(V, 1)), dtype=np.float64)
    order_lut = np.zeros((A, max(V, 1)), dtype=np.int64)
    for ai, nb in enumerate(nbs):
        for no_, (v, w) in enumerate(nb):
            wlut[ai, vindex[v]] = w
            order_lut[ai, vindex[v]] = no_

    extra_refreshed: list[int] = []
    flips_out: list[BitFlip] = []
    if V:
        Wt = wlut[agg_idx]  # (n, V)
        vrows_arr = np.asarray(vrows, dtype=np.int64)

        # Reset masks.  Before ACT t's adds: the victim's own activation
        # (an ACT refreshes its row) and full refresh windows.  After
        # ACT t's adds: TRR neighbor refreshes at that tick.
        Rb = np.zeros((n, V), dtype=bool)
        for ai, r in enumerate(distinct.tolist()):
            j = vindex.get(int(r))
            if j is not None:
                Rb[:, j] = agg_idx == ai
        for t in window_pos:
            Rb[t, :] = True
        Ra = np.zeros((n, V), dtype=bool)
        for t, victims in trr_victims:
            for v in victims:
                j2 = vindex.get(v)
                if j2 is not None:
                    Ra[t, j2] = True
                else:
                    extra_refreshed.append(v)

        # Approximate trajectories (screening only).  C is nondecreasing
        # per column, so a running maximum over per-reset baselines picks
        # the most recent segment start.
        p0 = press[vrows_arr].copy()
        C = np.cumsum(Wt, axis=0)
        base = np.where(Rb, C - Wt, -np.inf)
        if n > 1:
            after = np.where(Ra[:-1], C[:-1], -np.inf)
            np.maximum(base[1:], after, out=base[1:])
        base[0] = np.maximum(base[0], -p0)
        np.maximum.accumulate(base, axis=0, out=base)
        approx = C - base
        T = thresh[vrows_arr]  # finite: first-touch prefix drew them all
        slack = _SCREEN_SLACK * (
            float(C[-1].max(initial=0.0)) + float(p0.max(initial=0.0)) + 1.0
        )
        suspect_cols = np.nonzero((approx >= T[None, :] - slack).any(axis=0))[0]

        # Exact final pressures for all victims: one padded cumsum over
        # each victim's final segment (crossing-free by screening; any
        # suspect victim is overridden by its exact walk below).
        any_b = Rb.any(axis=0)
        any_a = Ra.any(axis=0)
        last_b = np.where(any_b, n - 1 - np.argmax(Rb[::-1], axis=0), -1)
        last_a = np.where(any_a, n - 1 - np.argmax(Ra[::-1], axis=0), -1)
        seg_start = np.maximum(np.maximum(last_b, last_a + 1), 0)
        p_init = np.where(any_b | any_a, 0.0, p0)
        seg_len = n - seg_start
        max_len = int(seg_len.max())
        pad = np.zeros((V, max_len + 1), dtype=np.float64)
        pad[:, 0] = p_init
        if max_len:
            cols = seg_start[:, None] + np.arange(max_len)[None, :]
            valid = cols < n
            pad[:, 1:] = np.where(
                valid, Wt[np.minimum(cols, n - 1), np.arange(V)[:, None]], 0.0
            )
        np.cumsum(pad, axis=1, out=pad)
        finals = pad[np.arange(V), seg_len]

        # Authoritative exact walk for screened victims: the pressure
        # trajectory is RNG-free (crossings subtract the threshold
        # deterministically), so each column replays independently and
        # only the flip draws below need global ordering.
        events: list[tuple[int, int, int, int]] = []  # (t, order, j, spills)
        for j in suspect_cols.tolist():
            col = Wt[:, j].tolist()
            rb = Rb[:, j].tolist()
            ra = Ra[:, j].tolist()
            p = float(p0[j])
            threshold = float(T[j])
            for t in range(n):
                if rb[t]:
                    p = 0.0
                w = col[t]
                if w != 0.0:
                    p = p + w
                    if p >= threshold:
                        spills = 0
                        while p >= threshold:
                            p -= threshold
                            spills += 1
                        events.append((t, int(order_lut[agg_idx[t], j]), j, spills))
                if ra[t]:
                    p = 0.0
            finals[j] = p

        if events:
            flips_out.extend(
                _emit_events(
                    dram,
                    dist,
                    socket,
                    bank,
                    events,
                    clk,
                    lambda t: int(internal_arr[t]),
                    vrows,
                )
            )
    else:
        for _t, victims in trr_victims:
            extra_refreshed.extend(victims)

    # State write-back.  A refresh window clears *every* bank (matching
    # on_refresh_all); victim finals already account for the in-span
    # resets, and rows whose last touch was a self-activation or a TRR
    # refresh end at zero.
    if window_pos:
        dist.on_refresh_all()
        counters.refresh_windows += len(window_pos)
    if V:
        press[vrows_arr] = finals
    for r in distinct.tolist():
        if int(r) not in vindex:
            press[int(r)] = 0.0
    for v in extra_refreshed:
        if v not in vindex:
            press[v] = 0.0
    counters.activations += n
    dram.clock = float(clk[-1])
    dram._last_full_refresh = last_refresh
    return flips_out


def _build_tile_entry(
    dist: VectorizedDisturbanceModel,
    base_internal: np.ndarray,
    base_idx: np.ndarray,
    distinct: np.ndarray,
    minrow0: int,
) -> dict[str, Any]:
    """Precompute everything about one period pattern that is state-free.

    The entry depends only on the period's internal rows and the model's
    static neighbor table, so it is reused across every batch replaying
    the same pattern — on any bank and (via a row shift) at any base row
    with the same subarray alignment: victim tables, the compressed
    per-period touch matrix, self-reset gap statistics and tail folds.
    Per-call state (pressures, thresholds, clock, TRR phase) stays out.
    """
    L = int(base_internal.size)
    A = int(distinct.size)
    nbs = [dist._neighbor_tuple(int(r)) for r in distinct.tolist()]
    vrows: list[int] = []
    vindex: dict[int, int] = {}
    for nb in nbs:
        for v, _w in nb:
            if v not in vindex:
                vindex[v] = len(vrows)
                vrows.append(v)
    V = len(vrows)
    entry: dict[str, Any] = {
        "L": L,
        "A": A,
        "V": V,
        "minrow0": minrow0,
        "base_internal": base_internal,
        "base_idx": base_idx,
        "base_list": base_internal.tolist(),
        "distinct": distinct,
        "nbs": nbs,
        "vrows": vrows,
        "vindex": vindex,
        "nonvictims": [int(r) for r in distinct.tolist() if int(r) not in vindex],
        "order_lut": None,  # built lazily on the first screened victim
        "pads": {},  # rounds -> tiled fold template
    }
    if not V:
        return entry
    wlut = np.zeros((A, V), dtype=np.float64)
    for ai, nb in enumerate(nbs):
        for v, w in nb:
            wlut[ai, vindex[v]] = w
    base_W = wlut[base_idx]  # (L, V)
    counts = np.bincount(base_idx, minlength=A).astype(np.float64)
    total_add_base = counts @ wlut  # per-round added pressure (bound only)
    wmax = wlut.max(axis=0)
    self_ai = np.searchsorted(distinct, vrows_arr := np.asarray(vrows, dtype=np.int64))
    has_self = (self_ai < A) & (distinct[np.minimum(self_ai, A - 1)] == vrows_arr)

    # Per self-activating victim: (j, first ACT, largest reset-free gap,
    # max weight, tail weights after its last own ACT in a period).
    self_data: list[tuple[int, int, int, float, list[float]]] = []
    for j in np.nonzero(has_self)[0].tolist():
        pos = np.flatnonzero(base_idx == int(self_ai[j]))
        q0 = int(pos[0])
        gap_in = int(np.diff(pos).max()) if pos.size > 1 else 0
        gap_max = max(gap_in, L - int(pos[-1]) + q0)
        tail = [w for w in base_W[int(pos[-1]) + 1 :, j].tolist() if w != 0.0]
        self_data.append((j, q0, gap_max, float(wmax[j]), tail))

    # Compressed per-period touch matrix: each victim's nonzero weights
    # in time order, right-padded with exact-no-op zeros.
    nzj, nzt = np.nonzero(base_W.T)
    cnt = np.bincount(nzj, minlength=V)
    P = int(cnt.max()) if nzj.size else 0
    comp = np.zeros((V, max(P, 1)), dtype=np.float64)
    if P:
        offs = np.cumsum(cnt) - cnt
        rank = np.arange(nzj.size, dtype=np.int64) - offs[nzj]
        comp[nzj, rank] = base_W[nzt, nzj]
    entry.update(
        wlut=wlut,
        base_W=base_W,
        vrows_arr=vrows_arr,
        total_add_base=total_add_base,
        max_total_base=float(total_add_base.max(initial=0.0)),
        self_ai=self_ai,
        has_self=has_self,
        self_data=self_data,
        comp=comp,
        P=P,
    )
    return entry


def _tile_pad_template(entry: dict[str, Any], rounds: int) -> np.ndarray:
    """Fold template for *rounds*: ``[seed, comp, comp, ...]`` per row."""
    pads: dict[int, np.ndarray] = entry["pads"]
    tmpl = pads.get(rounds)
    if tmpl is None:
        V: int = entry["V"]
        P: int = entry["P"]
        tmpl = np.zeros((V, 1 + P * rounds), dtype=np.float64)
        if P:
            tmpl[:, 1:] = np.tile(entry["comp"], rounds)
        if len(pads) >= 8:
            pads.clear()
        pads[rounds] = tmpl
    return tmpl


def _span_tiled(
    dram: "SimulatedDram",
    dist: VectorizedDisturbanceModel,
    socket: int,
    bank: int,
    entry: dict[str, Any],
    rounds: int,
    shift: int,
) -> list[BitFlip]:
    """Periodic-batch fast path: per-ACT math on the period only.

    Exact finals come from one small cumsum over each victim's compact
    per-period touch sequence tiled ``rounds`` times (zero pads are
    rounding no-ops), seeded with the victim's entry pressure.  Victims
    reset by their own activations fold only the tail after the last
    self-ACT, and victims screened as possible threshold crossers are
    re-walked with exact scalar arithmetic.  Spans that contain refresh
    windows or TRR victim refreshes fall back to the generic matrix
    path (same head state, so no RNG divergence).
    """
    L: int = entry["L"]
    n = L * rounds
    clk = _span_clock(dram, n)
    base_list: list[int] = entry["base_list"]
    window_pos, trr_victims, last_refresh = _span_head(
        dram, socket, bank, n, clk, lambda t: base_list[t % L] + shift
    )
    if window_pos or trr_victims:
        internal_arr = np.tile(entry["base_internal"], rounds)
        distinct: np.ndarray = entry["distinct"]
        if shift:
            internal_arr = internal_arr + shift
            distinct = distinct + shift
        agg_idx = np.tile(entry["base_idx"], rounds)
        return _finals_generic(
            dram,
            dist,
            socket,
            bank,
            internal_arr,
            distinct,
            agg_idx,
            clk,
            window_pos,
            trr_victims,
            last_refresh,
        )

    counters = dram.counters
    press, thresh = dist._bank_arrays(socket, bank)
    V: int = entry["V"]
    flips_out: list[BitFlip] = []
    if V:
        vrows_arr: np.ndarray = entry["vrows_arr"]
        if shift:
            vrows_arr = vrows_arr + shift
        p0 = press[vrows_arr]  # fancy indexing gathers a copy
        T = thresh[vrows_arr]  # finite: first-touch period drew them all

        # Screening bounds (upper bounds on the whole trajectory — resets
        # and crossings only ever lower it).  Pure victims: entry
        # pressure plus everything the span can add.  Self-activating
        # victims: their own ACTs reset them, so the largest reset-free
        # gap (in ACTs, each adding at most the victim's max weight)
        # bounds the peak much tighter.
        self_data: list[tuple[int, int, int, float, list[float]]] = entry["self_data"]
        bound = p0 + entry["total_add_base"] * rounds
        for j, q0, gap_max, wm, _tail in self_data:
            b = max(p0[j] + q0 * wm, gap_max * wm)
            if b < bound[j]:
                bound[j] = b
        slack = _SCREEN_SLACK * (
            entry["max_total_base"] * rounds + float(p0.max(initial=0.0)) + 1.0
        )
        suspect_js: list[int] = np.nonzero(bound >= T - slack)[0].tolist()

        # Exact finals for every victim at once: seed the cached tiled
        # touch template with p0, one sequential-fold cumsum.
        pad = _tile_pad_template(entry, rounds).copy()
        pad[:, 0] = p0
        np.cumsum(pad, axis=1, out=pad)
        finals = pad[:, -1]

        # Self-activating victims: reset-before semantics zero them at
        # their last own ACT; only the last period's tail contributes.
        suspect_set = set(suspect_js)
        for j, _q0, _gap, _wm, tail in self_data:
            if j in suspect_set:
                continue
            p = 0.0
            for w in tail:
                p += w
            finals[j] = p

        # Authoritative exact walk for screened victims (cf. the generic
        # path); crossings never invalidate other victims' bulk math.
        events: list[tuple[int, int, int, int]] = []  # (t, order, j, spills)
        if suspect_js:
            base_W: np.ndarray = entry["base_W"]
            base_idx: np.ndarray = entry["base_idx"]
            order_lut = entry["order_lut"]
            if order_lut is None:
                A: int = entry["A"]
                vindex: dict[int, int] = entry["vindex"]
                order_lut = np.zeros((A, V), dtype=np.int64)
                for ai, nb in enumerate(entry["nbs"]):
                    for no_, (v, _w) in enumerate(nb):
                        order_lut[ai, vindex[v]] = no_
                entry["order_lut"] = order_lut
            has_self: np.ndarray = entry["has_self"]
            self_ai: np.ndarray = entry["self_ai"]
            for j in suspect_js:
                col = base_W[:, j].tolist()
                ocol = order_lut[base_idx, j].tolist()
                own = (base_idx == int(self_ai[j])).tolist() if has_self[j] else None
                p = float(p0[j])
                threshold = float(T[j])
                for r in range(rounds):
                    toff = r * L
                    for ti in range(L):
                        if own is not None and own[ti]:
                            p = 0.0
                        w = col[ti]
                        if w != 0.0:
                            p = p + w
                            if p >= threshold:
                                spills = 0
                                while p >= threshold:
                                    p -= threshold
                                    spills += 1
                                events.append((toff + ti, ocol[ti], j, spills))
                finals[j] = p
        if events:
            vrows: list[int] = entry["vrows"]
            if shift:
                vrows = [v + shift for v in vrows]
            flips_out.extend(
                _emit_events(
                    dram,
                    dist,
                    socket,
                    bank,
                    events,
                    clk,
                    lambda t: base_list[t % L] + shift,
                    vrows,
                )
            )

        press[vrows_arr] = finals
    for r in entry["nonvictims"]:
        press[r + shift] = 0.0
    counters.activations += n
    dram.clock = float(clk[-1])
    dram._last_full_refresh = last_refresh
    return flips_out
