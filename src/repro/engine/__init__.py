"""Batched hot-path simulation engine (see :mod:`repro.engine.batch`).

``SimBackend`` selects between the scalar golden-reference path and the
batched fast path; ``run_activation_batch`` is the vectorized ACT loop
used by :meth:`repro.dram.module.SimulatedDram.activate_batch`.
"""

from repro.engine.backend import BackendError, SimBackend
from repro.engine.batch import BatchedDisturbanceModel, run_activation_batch

__all__ = [
    "BackendError",
    "BatchedDisturbanceModel",
    "SimBackend",
    "run_activation_batch",
]
