"""Fast hot-path simulation engines (batched + vectorized).

``SimBackend`` selects between the scalar golden-reference path and the
two fast paths; ``run_activation_batch`` is the inlined per-ACT loop and
``run_activation_batch_vectorized`` the numpy whole-batch kernel, both
used by :meth:`repro.dram.module.SimulatedDram.activate_batch`.

The vectorized names resolve lazily (PEP 562) so importing the engine
package — which the batched path does — never requires numpy.
"""

from typing import Any

from repro.engine.backend import BackendError, SimBackend
from repro.engine.batch import BatchedDisturbanceModel, run_activation_batch

_VECTOR_NAMES = (
    "VectorizedDisturbanceModel",
    "bulk_uniforms",
    "run_activation_batch_vectorized",
)

__all__ = [
    "BackendError",
    "BatchedDisturbanceModel",
    "SimBackend",
    "run_activation_batch",
    *_VECTOR_NAMES,
]


def __getattr__(name: str) -> Any:
    if name in _VECTOR_NAMES:
        from repro.engine import vector

        return getattr(vector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
