"""End-to-end CE-storm scenario: inject → monitor → migrate → verify.

This is the fault-handling subsystem's acceptance test, runnable from
the CLI (``repro health``), pytest, and CI:

1. boot Siloz on a small machine and start two tenants;
2. write sentinel patterns through both guests' RAM;
3. plant a seeded correctable-error storm on a row group backing the
   first tenant and let the health monitor watch the ECC stream while
   simulated time passes and patrol scrubbing runs;
4. the monitor escalates watch → soak → migrate-and-offline;
5. verify the hard claims: every sentinel byte still reads back
   correctly through the remapped EPT, the sick row group is offlined,
   no VM was killed, and the isolation audit is still clean (migration
   stayed inside each VM's own subarray groups).

Everything is keyed off the DRAM module's simulated clock and a caller
seed, so the same seed produces a byte-identical transcript — replays
can be diffed, and :meth:`ScenarioResult.replay_key` collapses a run to
one comparable digest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.policy import audit_hypervisor
from repro.core.siloz import SilozHypervisor
from repro.dram.mapping import AddressRange
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hv.health import HealthPolicy, HealthState
from repro.hv.machine import Machine
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger
from repro.units import CACHE_LINE, MiB

_log = get_logger("faults.scenario")

#: Distance between sentinel probes: one per backing block, so every
#: block (including whichever gets migrated) carries a checked pattern.
_SENTINEL_STRIDE = 64 * 1024
_SENTINEL_BYTES = CACHE_LINE


def _sentinel(vm_name: str, gpa: int) -> bytes:
    """Deterministic per-(VM, gpa) pattern, cheap to recompute."""
    seedling = (gpa // _SENTINEL_STRIDE + sum(vm_name.encode())) & 0xFF
    return bytes((seedling + i * 7) & 0xFF for i in range(_SENTINEL_BYTES))


def _unmediated_extents(vm) -> list[tuple[int, int, int]]:
    """(gpa, hpa, size) extents of the VM's unmediated regions.

    Replicates the pool walk of ``Hypervisor._map_regions`` with pure
    arithmetic instead of EPT walks — translating every page through the
    EPT would cost thousands of DRAM activations and pollute the very
    error counters the scenario is asserting over.
    """
    pool = [(r.start, r.size) for r in vm.backing]
    out: list[tuple[int, int, int]] = []
    for region in vm.regions:
        if not region.unmediated:
            continue
        remaining, gpa = region.size, region.gpa
        while remaining > 0 and pool:
            start, size = pool[0]
            take = min(size, remaining)
            out.append((gpa, start, take))
            gpa += take
            remaining -= take
            if take == size:
                pool.pop(0)
            else:
                pool[0] = (start + take, size - take)
    return out


@dataclass
class ScenarioResult:
    """Everything a run produced, plus the pass/fail verdicts."""

    seed: int
    socket: int
    row: int
    storm_errors: int
    transcript: list[str] = field(default_factory=list)
    #: Verdicts (all must hold for success).
    data_intact: bool = False
    row_group_offlined: bool = False
    no_vm_killed: bool = False
    audit_clean: bool = False
    migrated_blocks: int = 0
    violations: list = field(default_factory=list)

    @property
    def success(self) -> bool:
        """The ISSUE's acceptance criterion, in one boolean."""
        return (
            self.data_intact
            and self.row_group_offlined
            and self.no_vm_killed
            and self.audit_clean
        )

    def replay_key(self) -> str:
        """Digest of the full transcript: equal seeds must yield equal
        keys (the determinism/replay acceptance criterion)."""
        return hashlib.sha256("\n".join(self.transcript).encode()).hexdigest()


def run_ce_storm_scenario(
    *,
    seed: int = 0,
    storm_errors: int = 20,
    interval: float = 0.004,
    vm_bytes: int = 2 * MiB,
    policy: HealthPolicy | None = None,
    backend: str = "scalar",
) -> ScenarioResult:
    """Run the injected CE-storm scenario end to end (see module doc).

    ``backend`` selects the simulation hot path (scalar reference or
    the batched engine); the transcript and replay key are
    backend-independent — the differential tests assert exactly that.
    """
    machine = Machine.small(seed=seed, backend=backend)
    hv = SilozHypervisor.boot(machine)
    tenant = hv.create_vm(VmSpec(name="tenant", memory_bytes=vm_bytes))
    neighbor = hv.create_vm(VmSpec(name="neighbor", memory_bytes=vm_bytes))
    monitor = hv.enable_health_monitoring(policy or HealthPolicy())
    dram = machine.dram

    # Sentinels throughout both guests' RAM (one probe per backing block).
    probes: dict[str, list[tuple[int, bytes]]] = {}
    for vm in (tenant, neighbor):
        vm_probes = []
        ram = next(r for r in vm.regions if r.name == "ram")
        for gpa in range(ram.gpa, ram.gpa + ram.size, _SENTINEL_STRIDE):
            pattern = _sentinel(vm.name, gpa)
            vm.write(gpa, pattern)
            vm_probes.append((gpa, pattern))
        probes[vm.name] = vm_probes

    # Target: the row group behind the tenant's first backing block.
    extents = _unmediated_extents(tenant)
    target_hpa = tenant.backing[0].start
    media = dram.mapping.decode(target_hpa)
    socket, row = media.socket, media.row
    bank = media.socket_bank_index(machine.geom)
    rg = dram.mapping.row_group_ranges(socket, row)[0]
    target_gpas = [
        gpa + off
        for gpa, hpa, size in extents
        for off in range(0, size, _SENTINEL_STRIDE)
        if hpa + off in rg
    ]

    result = ScenarioResult(
        seed=seed, socket=socket, row=row, storm_errors=storm_errors
    )
    say = result.transcript.append
    say(f"scenario seed={seed} storm_errors={storm_errors} interval={interval}")
    say(f"target row group (s{socket} r{row}) at {rg}")

    plan = FaultPlan.ce_storm(
        socket,
        bank,
        row,
        errors=storm_errors,
        words_per_row=machine.geom.row_bytes * 8 // 64,
        start=dram.clock + interval,
        interval=interval,
        seed=seed,
    )
    for spec in plan.specs:
        say(f"plan t={spec.at_clock:.6f} {spec.describe()}")
    injector = FaultInjector(dram, plan).attach()

    # The storm: idle time passes, faults fire, patrol scrubbing finds
    # and heals them — each heal is one corrected-error event feeding
    # the monitor's leaky bucket.
    for _ in range(storm_errors + 2):
        dram.advance_time(interval)
        dram.patrol_scrub()
    monitor.poll()
    injector.detach()

    for event in injector.events:
        say(str(event))
    result.transcript.extend(monitor.timeline)
    for report in monitor.reports:
        say(report.summary())
        result.migrated_blocks += len(report.migrated)

    # -- verification ---------------------------------------------------
    intact = True
    for vm in (tenant, neighbor):
        for gpa, pattern in probes[vm.name]:
            got = vm.read(gpa, len(pattern))
            if got != pattern:
                intact = False
                say(f"DATA LOSS: {vm.name} gpa={gpa:#x}")
    result.data_intact = intact
    say(f"sentinels intact: {intact}")

    for gpa in target_gpas:
        now_hpa = tenant.translate(gpa)
        say(f"tenant gpa {gpa:#x} now backed by hpa {now_hpa:#x}")
        if now_hpa in rg:
            say(f"STALE MAPPING: gpa {gpa:#x} still points into {rg}")

    result.row_group_offlined = (
        hv.offline.is_offline(rg.start)
        and hv.offline.is_offline(rg.end - 1)
        and monitor.state_of(socket, row) is HealthState.OFFLINED
        and all(tenant.translate(g) not in rg for g in target_gpas)
    )
    say(f"row group offlined: {result.row_group_offlined}")

    result.no_vm_killed = (
        tenant.state.value == "running" and neighbor.state.value == "running"
    )
    say(f"no VM killed: {result.no_vm_killed}")

    result.violations = audit_hypervisor(hv)
    result.audit_clean = not result.violations
    for v in result.violations:
        say(f"VIOLATION: {v}")
    say(f"isolation audit clean: {result.audit_clean}")
    say(
        f"verdict: {'PASS' if result.success else 'FAIL'} "
        f"({result.migrated_blocks} block(s) migrated)"
    )
    _log.info("ce-storm scenario: %s", result.transcript[-1])
    return result
