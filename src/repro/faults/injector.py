"""Deterministic fault injection into the simulated DRAM.

:class:`FaultInjector` registers as a :class:`~repro.dram.module.DramHook`
and fires the faults of a :class:`~repro.faults.plan.FaultPlan` when the
module's simulated clock reaches each spec's trigger.  Because the plan
is fully explicit and the hooks run synchronously inside DRAM
operations, two runs with the same plan against same-seeded modules
produce byte-identical DRAM state and event logs — the property the
ISSUE's replay acceptance criterion rests on.

Fault semantics:

- *Stuck-at* cells are enforced continuously: arming asserts the stuck
  value, and every subsequent write that restores the healthy value is
  re-corrupted on the spot (the cell "writes don't stick").
- *Retention-weak* cells decay ``retention_s`` after arming and then
  again ``retention_s`` after each decay — scrubbing heals the flip, the
  cell leaks it back, which is exactly the recurring-CE signature a
  health monitor must ride out or act on.
- *Late repairs* call :meth:`SimulatedDram.add_repair` at trigger time,
  dynamically moving a media row onto spare cells (potentially in a
  different subarray — a runtime isolation break the runtime remediation
  path must handle, where the boot path of §6 no longer can).
- *ECC-word* faults toggle their bits immediately at trigger time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dram.module import DramHook, SimulatedDram
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.log import get_logger

_log = get_logger("faults.injector")


@dataclass(frozen=True)
class FaultEvent:
    """One thing the injector did, timestamped in simulated seconds."""

    when: float
    action: str  # "arm" | "flip" | "repair" | "enforce"
    detail: str

    def __str__(self) -> str:
        return f"t={self.when:.6f} {self.action}: {self.detail}"


@dataclass
class _WeakCell:
    """Armed retention-weak cell state (next decay deadline)."""

    spec: FaultSpec
    next_decay: float


class FaultInjector(DramHook):
    """Replays a :class:`FaultPlan` against one :class:`SimulatedDram`.

    Construct, then :meth:`attach`; every DRAM activation, write, and
    idle-time advance gives the injector a chance to fire due faults and
    re-enforce stuck cells.  ``events`` is the deterministic audit log.
    """

    def __init__(self, dram: SimulatedDram, plan: FaultPlan):
        self.dram = dram
        self.plan = plan
        self._pending: list[FaultSpec] = sorted(
            plan.specs, key=lambda s: s.at_clock, reverse=True
        )  # pop() yields earliest first
        self._stuck: list[FaultSpec] = []
        self._weak: list[_WeakCell] = []
        self.events: list[FaultEvent] = []
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "FaultInjector":
        """Register with the DRAM module; returns self for chaining."""
        if not self._attached:
            self.dram.register_hook(self)
            self._attached = True
            self._service()  # faults due at t=0 fire immediately
        return self

    def detach(self) -> None:
        """Unregister from the DRAM module (armed state is kept)."""
        if self._attached:
            self.dram.unregister_hook(self)
            self._attached = False

    @property
    def exhausted(self) -> bool:
        """True once every planned spec has fired (armed cells may still
        be emitting errors)."""
        return not self._pending

    # ------------------------------------------------------------------
    # DramHook interface
    # ------------------------------------------------------------------

    def on_activate(self, dram: SimulatedDram, socket: int, bank: int, row: int) -> None:
        """Clock moved via an ACT: fire anything that came due."""
        self._service()

    def on_clock(self, dram: SimulatedDram) -> None:
        """Idle time passed: fire due faults and decay weak cells."""
        self._service()

    def on_write(self, dram: SimulatedDram, hpa: int, length: int) -> None:
        """Stores may have overwritten a stuck cell: re-corrupt it."""
        self._enforce_stuck()

    # ------------------------------------------------------------------
    # Firing machinery
    # ------------------------------------------------------------------

    def _service(self) -> None:
        now = self.dram.clock
        while self._pending and self._pending[-1].at_clock <= now:
            self._fire(self._pending.pop())
        self._decay_weak(now)
        self._enforce_stuck()

    def _record(self, action: str, detail: str) -> None:
        event = FaultEvent(when=self.dram.clock, action=action, detail=detail)
        self.events.append(event)
        if obs.ENABLED:
            obs.emit(
                obs.FaultInjectionEvent(
                    action=action, detail=detail, when=event.when
                )
            )
        _log.debug("%s", event)

    def _fire(self, spec: FaultSpec) -> None:
        if spec.kind is FaultKind.STUCK_AT:
            self._stuck.append(spec)
            self._record("arm", spec.describe())
        elif spec.kind is FaultKind.RETENTION_WEAK:
            self._weak.append(
                _WeakCell(spec=spec, next_decay=self.dram.clock + spec.retention_s)
            )
            self._record("arm", spec.describe())
        elif spec.kind is FaultKind.LATE_REPAIR:
            assert spec.spare_row is not None
            self.dram.add_repair(spec.socket, spec.bank, spec.row, spec.spare_row)
            self._record("repair", spec.describe())
        elif spec.kind is FaultKind.ECC_WORD:
            for bit in spec.row_bits:
                self.dram.inject_bit_error(spec.socket, spec.bank, spec.row, bit)
            self._record("flip", spec.describe())

    def _decay_weak(self, now: float) -> None:
        for cell in self._weak:
            spec = cell.spec
            assert spec.bit is not None
            while cell.next_decay <= now:
                flipped = spec.bit in self.dram.flip_bits_at(
                    spec.socket, spec.bank, spec.row
                )
                if not flipped:  # healthy again (scrubbed/rewritten): leak
                    self.dram.inject_bit_error(
                        spec.socket, spec.bank, spec.row, spec.bit
                    )
                    self._record("flip", f"retention decay: {spec.describe()}")
                cell.next_decay += spec.retention_s

    def _enforce_stuck(self) -> None:
        for spec in self._stuck:
            assert spec.bit is not None
            current = self.dram.bit_at(spec.socket, spec.bank, spec.row, spec.bit)
            if current != spec.stuck_value:
                self.dram.inject_bit_error(spec.socket, spec.bank, spec.row, spec.bit)
                self._record("enforce", spec.describe())
