"""Deterministic DRAM fault injection (the runtime-robustness harness).

The package splits cleanly in three:

- :mod:`repro.faults.plan` — declarative, seed-resolved
  :class:`FaultPlan`/:class:`FaultSpec` schedules (what fails, where,
  when), serialisable for replay;
- :mod:`repro.faults.injector` — :class:`FaultInjector`, the
  :class:`~repro.dram.module.DramHook` that fires a plan against a live
  :class:`~repro.dram.module.SimulatedDram`;
- :mod:`repro.faults.scenario` — the end-to-end CE-storm scenario that
  exercises monitoring, live migration, and offlining, and verifies the
  isolation invariant afterwards.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultPlanError, FaultSpec
from repro.faults.scenario import ScenarioResult, run_ce_storm_scenario

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "ScenarioResult",
    "run_ce_storm_scenario",
]
