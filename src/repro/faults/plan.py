"""Declarative fault plans: *what* fails, *where*, and *when*.

A :class:`FaultPlan` is the replayable artifact of the fault-injection
harness: a fully explicit list of :class:`FaultSpec` entries, each
naming a fault kind, its media location, and its simulated-time trigger.
Plans are built either by hand or from the seeded generators
(:meth:`FaultPlan.ce_storm`), and every random choice is resolved at
*plan-construction* time — the plan that comes out is deterministic
data, so the injector replays it byte-identically and a plan can be
serialised (``to_dict``/``from_dict``), stored next to a failing test,
and rerun unchanged.

Fault kinds model the DRAM degradation modes a production host meets
after boot (HammerSim-style system-level fault modeling):

- ``STUCK_AT`` — a cell wedged at 0 or 1; every write is silently
  re-corrupted, so the row emits correctable errors forever.
- ``RETENTION_WEAK`` — a leaky cell that loses its charge every
  ``retention_s`` of simulated time (recurring correctable errors that
  scrubbing heals and the cell re-develops).
- ``LATE_REPAIR`` — a vendor row repair that *appears at runtime*,
  mapping a media row onto spare cells that may sit in a different
  subarray (the §6 isolation hazard, now dynamic).
- ``ECC_WORD`` — ``bits_in_word`` bits of one 64-bit word corrupted at
  once: 1 bit is a correctable error (CE-storm material), 2 bits an
  uncorrectable machine check, 3+ silent corruption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.dram.ecc import WORD_BITS
from repro.errors import ReproError


class FaultPlanError(ReproError):
    """A fault plan is malformed (bad kind parameters, bad schedule)."""


class FaultKind(Enum):
    """The degradation modes the injector can plant."""

    STUCK_AT = "stuck-at"
    RETENTION_WEAK = "retention-weak"
    LATE_REPAIR = "late-repair"
    ECC_WORD = "ecc-word"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: kind + media location + trigger time.

    ``at_clock`` is the simulated time (seconds) at which the fault
    arms; the injector fires it on the first clock/activation hook at or
    after that instant.  Which other fields matter depends on ``kind``
    (validated in ``__post_init__``).
    """

    kind: FaultKind
    socket: int
    bank: int
    row: int
    at_clock: float = 0.0
    #: STUCK_AT / RETENTION_WEAK: the afflicted bit within the row.
    bit: int | None = None
    #: STUCK_AT: the value the cell is wedged at.
    stuck_value: int = 1
    #: RETENTION_WEAK: seconds until the armed cell decays (recurring).
    retention_s: float = 0.0
    #: LATE_REPAIR: the spare row the defective row is remapped onto.
    spare_row: int | None = None
    #: ECC_WORD: word index within the row, and the bit offsets (within
    #: the word) to corrupt simultaneously.
    word: int | None = None
    word_bits: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.at_clock < 0:
            raise FaultPlanError("at_clock must be non-negative")
        if min(self.socket, self.bank, self.row) < 0:
            raise FaultPlanError("socket/bank/row must be non-negative")
        if self.kind in (FaultKind.STUCK_AT, FaultKind.RETENTION_WEAK):
            if self.bit is None or self.bit < 0:
                raise FaultPlanError(f"{self.kind.value} fault needs a bit index")
            if self.kind is FaultKind.STUCK_AT and self.stuck_value not in (0, 1):
                raise FaultPlanError("stuck_value must be 0 or 1")
            if self.kind is FaultKind.RETENTION_WEAK and self.retention_s <= 0:
                raise FaultPlanError("retention_s must be positive")
        elif self.kind is FaultKind.LATE_REPAIR:
            if self.spare_row is None or self.spare_row < 0:
                raise FaultPlanError("late-repair fault needs a spare_row")
        elif self.kind is FaultKind.ECC_WORD:
            if self.word is None or self.word < 0:
                raise FaultPlanError("ecc-word fault needs a word index")
            if not self.word_bits:
                raise FaultPlanError("ecc-word fault needs at least one bit offset")
            if len(set(self.word_bits)) != len(self.word_bits):
                raise FaultPlanError("ecc-word bit offsets must be distinct")
            if any(not 0 <= b < WORD_BITS for b in self.word_bits):
                raise FaultPlanError(f"word bit offsets must be in [0, {WORD_BITS})")

    @property
    def row_bits(self) -> tuple[int, ...]:
        """Absolute bit indexes (within the row) this fault touches."""
        if self.kind is FaultKind.ECC_WORD:
            assert self.word is not None
            return tuple(self.word * WORD_BITS + b for b in self.word_bits)
        if self.bit is not None:
            return (self.bit,)
        return ()

    def describe(self) -> str:
        """One-line human summary used in transcripts and logs."""
        where = f"(s{self.socket} b{self.bank} r{self.row})"
        if self.kind is FaultKind.STUCK_AT:
            return f"stuck-at-{self.stuck_value} bit {self.bit} {where}"
        if self.kind is FaultKind.RETENTION_WEAK:
            return f"retention-weak bit {self.bit} ({self.retention_s}s) {where}"
        if self.kind is FaultKind.LATE_REPAIR:
            return f"late repair row {self.row} -> spare {self.spare_row} {where}"
        return f"ecc-word w{self.word} bits {list(self.word_bits)} {where}"

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) for storage/replay."""
        return {
            "kind": self.kind.value,
            "socket": self.socket,
            "bank": self.bank,
            "row": self.row,
            "at_clock": self.at_clock,
            "bit": self.bit,
            "stuck_value": self.stuck_value,
            "retention_s": self.retention_s,
            "spare_row": self.spare_row,
            "word": self.word,
            "word_bits": list(self.word_bits),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=FaultKind(data["kind"]),
            socket=data["socket"],
            bank=data["bank"],
            row=data["row"],
            at_clock=data.get("at_clock", 0.0),
            bit=data.get("bit"),
            stuck_value=data.get("stuck_value", 1),
            retention_s=data.get("retention_s", 0.0),
            spare_row=data.get("spare_row"),
            word=data.get("word"),
            word_bits=tuple(data.get("word_bits", ())),
        )


@dataclass
class FaultPlan:
    """An ordered, replayable schedule of faults.

    The ``seed`` records which RNG produced any generated specs; it is
    bookkeeping only — the specs themselves are fully explicit, so two
    plans with equal specs behave identically regardless of seed.
    """

    specs: list[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = sorted(self.specs, key=lambda s: s.at_clock)

    def __len__(self) -> int:
        return len(self.specs)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Insert a spec, keeping the schedule time-ordered; returns self
        so plans can be built fluently."""
        self.specs.append(spec)
        self.specs.sort(key=lambda s: s.at_clock)
        return self

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) of the whole plan."""
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            specs=[FaultSpec.from_dict(d) for d in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    # ------------------------------------------------------------------
    # Generators (all randomness resolved here, at build time)
    # ------------------------------------------------------------------

    @classmethod
    def ce_storm(
        cls,
        socket: int,
        bank: int,
        row: int,
        *,
        errors: int,
        words_per_row: int,
        start: float = 0.0,
        interval: float = 0.004,
        seed: int = 0,
    ) -> "FaultPlan":
        """A correctable-error storm: *errors* single-bit ECC_WORD faults
        on one row, one every *interval* seconds, each in a distinct
        word (so no word ever accumulates two bits and machine-checks).
        The per-word bit offset is drawn once from ``seed``.
        """
        if errors <= 0:
            raise FaultPlanError("errors must be positive")
        if errors > words_per_row:
            raise FaultPlanError(
                f"cannot place {errors} single-bit errors in {words_per_row} "
                "distinct words"
            )
        if interval <= 0:
            raise FaultPlanError("interval must be positive")
        rng = random.Random(seed)
        first_word = rng.randrange(words_per_row)
        specs = [
            FaultSpec(
                kind=FaultKind.ECC_WORD,
                socket=socket,
                bank=bank,
                row=row,
                at_clock=start + i * interval,
                word=(first_word + i) % words_per_row,
                word_bits=(rng.randrange(WORD_BITS),),
            )
            for i in range(errors)
        ]
        return cls(specs=specs, seed=seed)

    @classmethod
    def ue_storm(
        cls,
        socket: int,
        bank: int,
        row: int,
        *,
        errors: int,
        words_per_row: int,
        start: float = 0.0,
        interval: float = 0.004,
        seed: int = 0,
    ) -> "FaultPlan":
        """An uncorrectable-error storm: *errors* **two-bit** ECC_WORD
        faults on one row — each word machine-checks on its next scrub
        or read instead of correcting.  Distinct words, like
        :meth:`ce_storm`, so the UE count is exactly *errors*; the DIMM
        UE-storm chaos event drives the health monitor's ``ue_weight``
        escalation with this plan.
        """
        if errors <= 0:
            raise FaultPlanError("errors must be positive")
        if errors > words_per_row:
            raise FaultPlanError(
                f"cannot place {errors} two-bit errors in {words_per_row} "
                "distinct words"
            )
        if interval <= 0:
            raise FaultPlanError("interval must be positive")
        rng = random.Random(seed)
        first_word = rng.randrange(words_per_row)
        specs = []
        for i in range(errors):
            first_bit = rng.randrange(WORD_BITS)
            second_bit = (first_bit + 1 + rng.randrange(WORD_BITS - 1)) % WORD_BITS
            specs.append(
                FaultSpec(
                    kind=FaultKind.ECC_WORD,
                    socket=socket,
                    bank=bank,
                    row=row,
                    at_clock=start + i * interval,
                    word=(first_word + i) % words_per_row,
                    word_bits=(first_bit, second_bit),
                )
            )
        return cls(specs=specs, seed=seed)
