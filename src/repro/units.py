"""Size and time units used throughout the Siloz reproduction.

All byte quantities in this code base are plain ``int`` counts of bytes;
all wall-clock quantities are ``float`` seconds unless a name says
otherwise (e.g. ``_ns`` suffixes in the DDR4 timing tables).  Keeping the
constants in one module avoids the classic off-by-2**10 bugs that plague
memory-geometry code.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: Bytes covered by one x86-64 cache line.
CACHE_LINE: int = 64

#: Base (small) page size on x86-64.
PAGE_4K: int = 4 * KiB

#: Huge page size used to back guests (paper §5, "2 MiB host huge pages").
PAGE_2M: int = 2 * MiB

#: Gigantic page size discussed in paper §4.2.
PAGE_1G: int = 1 * GiB

#: DDR4 refresh window: every cell is refreshed within this period (§2.3).
REFRESH_WINDOW_MS: float = 64.0

MS: float = 1e-3
US: float = 1e-6
NS: float = 1e-9


def align_down(value: int, alignment: int) -> int:
    """Return the largest multiple of *alignment* that is <= *value*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value // alignment) * alignment


def align_up(value: int, alignment: int) -> int:
    """Return the smallest multiple of *alignment* that is >= *value*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return -(-value // alignment) * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """True when *value* is a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ...; False for zero, negatives and the rest."""
    return value > 0 and (value & (value - 1)) == 0


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (binary units), e.g. ``fmt_bytes(1536 * MiB)
    == '1.5 GiB'``.  Exact integers print without a decimal point."""
    if n < 0:
        return "-" + fmt_bytes(-n)
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= unit:
            scaled = n / unit
            if scaled == int(scaled):
                return f"{int(scaled)} {name}"
            return f"{scaled:.6g} {name}"
    return f"{n} B"
