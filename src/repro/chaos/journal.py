"""Checkpoint journal for fleet campaigns: JSONL of completed shards.

A campaign writing a journal appends one line per completed host shard,
flushed and fsynced before the supervisor moves on — so a campaign that
is SIGKILLed mid-run leaves a journal holding exactly the shards that
finished.  ``repro fleet --resume <journal>`` then replays: placement
re-runs deterministically (it is a pure function of the config), the
journaled shards are loaded instead of re-executed, and only the
missing shards run.  Because every shard result is a pure function of
``(host seed, vm specs, scenario, chaos plan)``, the resumed campaign's
merged report is bit-identical to an uninterrupted run's.

The journal's header line carries a digest of the campaign config
(minus the execution-detail fields, ``workers``/``backend``) so a
journal can never silently resume a *different* campaign; a mismatch
raises :class:`~repro.errors.ChaosError`.  A truncated final line —
the SIGKILL landed mid-write — is tolerated and simply dropped.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import ChaosError
from repro.log import get_logger

_log = get_logger("chaos.journal")

#: Journal format tag + version (header line).
JOURNAL_MAGIC = "repro.fleet.chaos-journal"
JOURNAL_VERSION = 1


def config_digest(config_doc: Dict[str, Any]) -> str:
    """Identity of a campaign for journal matching: sha256 over the
    canonical config JSON minus execution details (worker count and
    engine backend do not change results, so a journal written at
    ``--workers 4`` resumes fine at ``--workers 1``)."""
    doc = {
        k: v for k, v in config_doc.items() if k not in ("workers", "backend")
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class CampaignJournal:
    """Append-only JSONL checkpoint log for one campaign."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def open(self, digest: str) -> "CampaignJournal":
        """Open for appending; a fresh file gets the header line, an
        existing one (resume) must match *digest*."""
        if self.path.exists() and self.path.stat().st_size > 0:
            self._validate_header(digest)
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(
                {
                    "journal": JOURNAL_MAGIC,
                    "version": JOURNAL_VERSION,
                    "config_digest": digest,
                }
            )
        return self

    def record(self, result: Dict[str, Any]) -> None:
        """Checkpoint one completed shard (flushed + fsynced: the line
        survives a SIGKILL that lands right after)."""
        if self._fh is None:
            raise ChaosError("journal is not open")
        self._write_line(
            {
                "shard": result["host_id"],
                "seed": result.get("seed"),
                "result": result,
            }
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _write_line(self, doc: Dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _validate_header(self, digest: str) -> None:
        header = _read_header(self.path)
        if header.get("config_digest") != digest:
            raise ChaosError(
                f"journal {self.path} was written by a different campaign "
                f"(config digest {header.get('config_digest')!r} != {digest!r})"
            )

    @classmethod
    def load(
        cls, path: str | Path, digest: Optional[str] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Completed shard results keyed by host id.

        Validates the header against *digest* when given; tolerates a
        truncated final line (mid-write SIGKILL); a later checkpoint for
        the same host wins (re-run after a resume race).
        """
        p = Path(path)
        if not p.exists():
            raise ChaosError(f"journal {p} does not exist")
        header = _read_header(p)
        if digest is not None and header.get("config_digest") != digest:
            raise ChaosError(
                f"journal {p} was written by a different campaign "
                f"(config digest {header.get('config_digest')!r} != {digest!r})"
            )
        completed: Dict[int, Dict[str, Any]] = {}
        with open(p, encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                if i == 0:
                    continue  # header, validated above
                try:
                    doc = json.loads(line)
                except ValueError:
                    _log.warning(
                        "journal %s: dropping truncated line %d", p, i + 1
                    )
                    break
                if not isinstance(doc, dict) or "shard" not in doc:
                    continue
                completed[int(doc["shard"])] = doc["result"]
        return completed


def _read_header(path: Path) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        first = fh.readline()
    try:
        header = json.loads(first)
    except ValueError as exc:
        raise ChaosError(f"journal {path} has a corrupt header line") from exc
    if not isinstance(header, dict) or header.get("journal") != JOURNAL_MAGIC:
        raise ChaosError(f"{path} is not a campaign journal")
    if header.get("version") != JOURNAL_VERSION:
        raise ChaosError(
            f"journal {path} has unsupported version {header.get('version')!r}"
        )
    return header
