"""The isolation-invariant auditor: Siloz's claims, checked under fire.

:class:`IsolationAuditor` re-verifies the paper's two load-bearing
invariants across every *surviving* host of a fleet — after each chaos
event the driver handles (crash evacuations, queue stalls) and once
more at campaign end:

1. **One tenant per subarray group** — no subarray group is reserved by
   two VMs, and the full single-host placement audit
   (:func:`repro.core.policy.audit_hypervisor`) is clean: backing
   inside reserved groups, no tenant/host group sharing, mediated
   memory on host-reserved nodes.
2. **Guard rows stay retired** — every boot-time guard-row range is
   still registered offline and no VM's backing overlaps one (a guard
   row handed back to a tenant would reopen the cross-group disturbance
   channel the reservation exists to close).

Unlike :meth:`Host.assert_isolation`, which raises on first violation,
the auditor *collects* findings into a deterministic
:class:`AuditReport` — chaos campaigns want the full damage picture in
the merged report, not a dead campaign — and emits ``audit`` events +
metrics through :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro import obs
from repro.core.policy import audit_hypervisor
from repro.mm.offline import OfflineReason


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation on one host."""

    host_id: int
    check: str  # "tenant-groups" | "guard-rows" | "policy-audit"
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"host": self.host_id, "check": self.check, "detail": self.detail}


@dataclass
class AuditReport:
    """One audit pass over the surviving fleet."""

    phase: str
    hosts_audited: int
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-data form (hashed into the merge digest)."""
        return {
            "phase": self.phase,
            "hosts_audited": self.hosts_audited,
            "violations": len(self.findings),
            "findings": [f.to_dict() for f in self.findings],
        }


class IsolationAuditor:
    """Audits every surviving host of a fleet, collecting findings."""

    def __init__(self, fleet, *, exclude: Tuple[int, ...] = ()):
        self.fleet = fleet
        #: Host ids to skip (crashed hosts: their state is moot).
        self.exclude = tuple(exclude)
        self.reports: List[AuditReport] = []

    def audit(self, phase: str) -> AuditReport:
        """One full pass; records, emits, and returns the report."""
        findings: List[AuditFinding] = []
        hosts = [
            h
            for h in sorted(self.fleet.hosts, key=lambda h: h.host_id)
            if h.host_id not in self.exclude
        ]
        for host in hosts:
            findings.extend(self._audit_host(host))
        report = AuditReport(
            phase=phase, hosts_audited=len(hosts), findings=findings
        )
        self.reports.append(report)
        if obs.ENABLED:
            when = max(
                (h.hv.machine.dram.clock for h in hosts), default=None
            )
            obs.emit(
                obs.AuditEvent(
                    phase=phase,
                    hosts=len(hosts),
                    violations=len(findings),
                    when=when,
                )
            )
        return report

    # ------------------------------------------------------------------
    # Per-host checks
    # ------------------------------------------------------------------

    def _audit_host(self, host) -> List[AuditFinding]:
        findings: List[AuditFinding] = []
        findings.extend(self._check_tenant_groups(host))
        findings.extend(self._check_guard_rows(host))
        # Only the audit kinds the host's mitigation *enforces* are
        # violations; the rest (e.g. co-location under a shared-pool
        # baseline) are that mitigation's documented exposure, measured
        # by the attack scenarios rather than flagged here.
        mitigation = getattr(host, "mitigation", None)
        for violation in (
            audit_hypervisor(host.hv)
            if mitigation is None
            else mitigation.audit(host.hv)
        ):
            findings.append(
                AuditFinding(
                    host_id=host.host_id,
                    check="policy-audit",
                    detail=str(violation),
                )
            )
        return findings

    @staticmethod
    def _check_tenant_groups(host) -> List[AuditFinding]:
        """One-tenant-per-group: no subarray group reserved twice."""
        findings: List[AuditFinding] = []
        claimed: Dict[Any, str] = {}
        for name in sorted(host.hv.vms):
            vm = host.hv.vms[name]
            for group in sorted(vm.reserved_groups):
                other = claimed.get(group)
                if other is not None and other != vm.name:
                    findings.append(
                        AuditFinding(
                            host_id=host.host_id,
                            check="tenant-groups",
                            detail=(
                                f"subarray group {group} reserved by both "
                                f"{other!r} and {vm.name!r}"
                            ),
                        )
                    )
                claimed[group] = vm.name
        return findings

    @staticmethod
    def _check_guard_rows(host) -> List[AuditFinding]:
        """Guard rows stay retired and un-backed."""
        findings: List[AuditFinding] = []
        guards = host.hv.offline.ranges_for(OfflineReason.GUARD_ROW)
        for r in guards:
            if not host.hv.offline.is_offline(r.start) or not host.hv.offline.is_offline(r.end - 1):
                findings.append(
                    AuditFinding(
                        host_id=host.host_id,
                        check="guard-rows",
                        detail=(
                            f"guard range {r.start:#x}-{r.end:#x} no longer "
                            "registered offline"
                        ),
                    )
                )
        for name in sorted(host.hv.vms):
            vm = host.hv.vms[name]
            for block in vm.backing:
                for r in guards:
                    if block.start < r.end and r.start < block.end:
                        findings.append(
                            AuditFinding(
                                host_id=host.host_id,
                                check="guard-rows",
                                detail=(
                                    f"VM {vm.name!r} backing "
                                    f"{block.start:#x}-{block.end:#x} overlaps "
                                    f"guard range {r.start:#x}-{r.end:#x}"
                                ),
                            )
                        )
        return findings
