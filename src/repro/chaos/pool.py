"""Persistent worker pools: long-lived shard workers with warm state.

The original supervised parallel path (:mod:`repro.chaos.supervisor`)
spawned **one process per shard attempt**.  That bought clean failure
isolation but paid the full process tax on every host task: a fork, an
interpreter teardown, and — the expensive part at fleet scale — stone
cold per-process caches (Skylake decode LUTs, geometry tables, memoized
mapping state) rebuilt for every single host.

A :class:`PersistentWorkerPool` keeps ``workers`` processes alive for
the whole campaign (and, via :func:`shared_pool`, across campaigns in
the same driver process).  Workers loop on a private duplex pipe pulling
``(task, attempt)`` messages and pushing result dicts back, so the
per-task cost drops to one pickle round-trip while the decode caches
stay warm from the first task onward.

The chaos contracts survive unchanged — the pool is a drop-in for the
per-task spawn path behind ``CampaignSupervisor``:

- a planned ``WorkerDeathError`` still becomes a **real**
  ``os._exit(WORKER_DEATH_EXIT)`` inside the worker, so the parent's
  dead-worker detection is exercised, not simulated;
- an unexpected exception in the shard function still crash-exits the
  worker (``WORKER_CRASH_EXIT``) rather than risking a poisoned loop;
- a dead worker is **respawned** and its task requeued with an
  incremented attempt counter, under the same bounded retry ladder and
  doubling backoff;
- a hung task is terminated at ``task_timeout_s`` and requeued the same
  way (the replacement worker starts cold — chaos costs chaos);
- results are returned in task order and the ``workers=1 ≡ workers=N``
  merge-digest invariant holds because the shard function is pure in
  ``(task, attempt)``.

Because per-process observability state is frozen at fork time, the
parent ships its current ``obs.ENABLED`` flag with every task message
and the worker syncs before running — a pool created before ``--trace``
still produces per-host trace summaries afterwards.
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass
from multiprocessing import connection, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ChaosError
from repro.log import get_logger

from repro.chaos.supervisor import (
    SupervisionReport,
    SupervisorPolicy,
    TaskOutcome,
    WORKER_CRASH_EXIT,
    WORKER_DEATH_EXIT,
    WorkerDeathError,
    gave_up_result,
    note_death,
    note_timeout,
)

_log = get_logger("chaos.pool")

#: Message sent to a worker to make it exit its loop cleanly.
_SHUTDOWN = None


def _pool_worker_main(
    conn: Any, run_fn: Callable[..., dict], warmup: Optional[Callable[[], None]]
) -> None:
    """Worker process body: warm up once, then loop on the task pipe.

    The chaos exits are deliberate: a planned :class:`WorkerDeathError`
    and an unexpected shard exception both kill the *process* (not just
    the task) so the parent exercises true dead-worker detection and a
    fresh worker replaces any possibly-corrupted interpreter state.
    """
    if warmup is not None:
        try:
            warmup()
        except Exception:  # noqa: BLE001 — warmup is best-effort by design
            pass
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if msg is _SHUTDOWN:
            conn.close()
            os._exit(0)
        task, attempt, obs_on = msg
        if obs_on and not obs.ENABLED:
            obs.enable()
        elif not obs_on and obs.ENABLED:
            obs.disable()
        try:
            result = run_fn(task, attempt=attempt)
        except WorkerDeathError:
            os._exit(WORKER_DEATH_EXIT)
        except Exception:  # noqa: BLE001 — any shard bug is a crash exit
            os._exit(WORKER_CRASH_EXIT)
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            os._exit(0)


@dataclass
class _Assigned:
    """One in-flight task on one worker."""

    task: Any
    attempt: int
    deadline: float
    outcome: TaskOutcome
    index: int


class _Worker:
    """Parent-side handle for one pooled process."""

    __slots__ = ("proc", "conn", "busy")

    def __init__(self, proc: Any, conn: Any):
        self.proc = proc
        self.conn = conn
        self.busy: Optional[_Assigned] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid


class PersistentWorkerPool:
    """``workers`` long-lived shard processes plus the dispatch loop.

    Construct once, call :meth:`run` per campaign, :meth:`close` when
    done (or let :func:`shutdown_shared_pools` / process exit reap the
    daemonized workers).  Workers created by an earlier :meth:`run`
    survive into the next one with their caches warm — the whole point.
    """

    def __init__(
        self,
        run_fn: Callable[..., dict],
        workers: int,
        *,
        warmup: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise ChaosError("a worker pool needs at least one worker")
        self.run_fn = run_fn
        self.workers = workers
        self.warmup = warmup
        self._pool: List[_Worker] = []
        self._ctx = get_context()
        self._closed = False
        #: Lifetime respawn count (worker deaths + timeout kills).
        self.respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def ensure_started(self) -> None:
        if self._closed:
            raise ChaosError("pool is closed")
        while len(self._pool) < self.workers:
            self._pool.append(self._spawn())

    def _spawn(self) -> _Worker:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child, self.run_fn, self.warmup),
            daemon=True,
        )
        proc.start()
        child.close()
        return _Worker(proc, parent)

    def _respawn(self, worker: _Worker) -> None:
        """Replace a dead or killed worker in place."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join()
        fresh = self._spawn()
        worker.proc, worker.conn, worker.busy = fresh.proc, fresh.conn, None
        self.respawns += 1

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (stable across campaigns unless chaos or
        timeouts forced respawns) — the pool-reuse tests key off this."""
        return [w.pid for w in self._pool if w.pid is not None]

    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self._pool:
            try:
                w.conn.send(_SHUTDOWN)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for w in self._pool:
            w.proc.join(max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join()
            try:
                w.conn.close()
            except OSError:
                pass
        self._pool.clear()

    # ------------------------------------------------------------------
    # Campaign execution
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        policy: SupervisorPolicy,
        *,
        on_result: Optional[Callable[[dict], None]] = None,
        collect: bool = True,
    ) -> Tuple[List[dict], SupervisionReport]:
        """Execute every task on the pool under *policy*.

        Same contract as ``CampaignSupervisor._run_parallel``: results
        in task order (empty list when ``collect=False`` — the
        streaming-merge path folds via *on_result* instead), plus the
        supervision report.  Tasks must carry ``.spec.host_id``.
        """
        self.ensure_started()
        report = SupervisionReport()
        outcomes: Dict[int, TaskOutcome] = {}
        for task in tasks:
            outcome = TaskOutcome(host_id=task.spec.host_id)
            outcomes[id(task)] = outcome
            report.outcomes.append(outcome)
        pending: List[Tuple[Any, int]] = [(t, 1) for t in tasks]
        index_of = {id(t): i for i, t in enumerate(tasks)}
        results: Dict[int, dict] = {}
        done = 0

        def finish(task: Any, result: dict) -> None:
            nonlocal done
            done += 1
            if collect:
                results[index_of[id(task)]] = result
            if on_result is not None:
                on_result(result)

        def retire(assigned: _Assigned, *, timed_out: bool, detail: str) -> None:
            if timed_out:
                assigned.outcome.timeouts += 1
                note_timeout(assigned.task.spec.host_id, assigned.attempt)
            else:
                assigned.outcome.worker_deaths += 1
                note_death(assigned.task.spec.host_id, assigned.attempt, detail)
            if assigned.attempt >= policy.max_attempts:
                assigned.outcome.gave_up = True
                finish(
                    assigned.task,
                    gave_up_result(assigned.task, assigned.outcome, policy),
                )
                return
            self._sleep_backoff(policy, assigned.attempt)
            assigned.outcome.attempts = assigned.attempt + 1
            pending.append((assigned.task, assigned.attempt + 1))

        def dispatch(worker: _Worker, task: Any, attempt: int) -> bool:
            """Send one task; ``False`` means the worker was dead (it is
            respawned and the caller should try again)."""
            try:
                worker.conn.send((task, attempt, obs.ENABLED))
            except (BrokenPipeError, OSError):
                self._respawn(worker)
                return False
            worker.busy = _Assigned(
                task=task,
                attempt=attempt,
                deadline=time.monotonic() + policy.task_timeout_s,
                outcome=outcomes[id(task)],
                index=index_of[id(task)],
            )
            return True

        total = len(tasks)
        while done < total:
            # Hand pending work to idle workers.
            for worker in self._pool:
                if not pending:
                    break
                if worker.busy is None:
                    task, attempt = pending.pop(0)
                    if not dispatch(worker, task, attempt):
                        pending.insert(0, (task, attempt))
            busy = [w for w in self._pool if w.busy is not None]
            if not busy:
                if pending:
                    continue  # a dispatch just failed; retry the loop
                break  # nothing in flight and nothing pending
            now = time.monotonic()
            wait_s = max(
                0.001, min(w.busy.deadline for w in busy) - now
            )
            waitables: Dict[Any, _Worker] = {}
            for w in busy:
                waitables[w.conn] = w
                waitables[w.proc.sentinel] = w
            ready = connection.wait(list(waitables), timeout=wait_s)
            seen: set[int] = set()
            for obj in ready:
                worker = waitables[obj]
                if id(worker) in seen or worker.busy is None:
                    continue
                seen.add(id(worker))
                assigned = worker.busy
                got: Optional[dict] = None
                try:
                    if worker.conn.poll():
                        got = worker.conn.recv()
                except (EOFError, OSError):
                    got = None
                if got is not None:
                    worker.busy = None
                    finish(assigned.task, got)
                elif not worker.proc.is_alive():
                    exitcode = worker.proc.exitcode
                    self._respawn(worker)
                    retire(
                        assigned,
                        timed_out=False,
                        detail=f"pooled worker exit code {exitcode}",
                    )
                # else: spurious wake (e.g. sentinel raced a result that
                # has not landed yet) — the next loop pass resolves it.
            # Enforce deadlines on whatever is still running.
            now = time.monotonic()
            for worker in self._pool:
                assigned = worker.busy
                if assigned is not None and assigned.deadline <= now:
                    worker.proc.terminate()
                    self._respawn(worker)
                    retire(assigned, timed_out=True, detail="timeout")
        ordered = [results[i] for i in sorted(results)] if collect else []
        return ordered, report

    @staticmethod
    def _sleep_backoff(policy: SupervisorPolicy, prior_attempts: int) -> None:
        wait = policy.backoff_s * (2 ** (prior_attempts - 1))
        if wait > 0:
            time.sleep(wait)


# ---------------------------------------------------------------------------
# Shared pools: reuse warm workers across campaigns in one process
# ---------------------------------------------------------------------------

_SHARED: Dict[Tuple[str, int], PersistentWorkerPool] = {}


def _pool_key(run_fn: Callable[..., dict], workers: int) -> Tuple[str, int]:
    return (f"{run_fn.__module__}.{run_fn.__qualname__}", workers)


def shared_pool(
    run_fn: Callable[..., dict],
    workers: int,
    *,
    warmup: Optional[Callable[[], None]] = None,
) -> PersistentWorkerPool:
    """The process-wide pool for ``(run_fn, workers)``, created on first
    use and kept warm across campaigns — back-to-back ``repro fleet``
    runs in one driver process (the bake-off, the scaling bench, the
    cluster shards) reuse the same workers and their hot decode caches.
    """
    key = _pool_key(run_fn, workers)
    pool = _SHARED.get(key)
    if pool is None or pool._closed:
        pool = PersistentWorkerPool(run_fn, workers, warmup=warmup)
        _SHARED[key] = pool
    return pool


def shutdown_shared_pools() -> int:
    """Close every shared pool; returns how many were shut down."""
    count = 0
    for pool in list(_SHARED.values()):
        if not pool._closed:
            pool.close()
            count += 1
    _SHARED.clear()
    return count


atexit.register(shutdown_shared_pools)


__all__ = [
    "PersistentWorkerPool",
    "shared_pool",
    "shutdown_shared_pools",
]
