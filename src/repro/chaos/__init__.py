"""``repro.chaos`` — seeded fleet-scale chaos engineering + supervision.

The package makes fleet campaigns survivable, resumable, and
continuously audited while failure is injected:

- :mod:`repro.chaos.plan` — deterministic, seeded :class:`ChaosPlan`
  scheduling host-level events (host crash, worker-process death, DIMM
  UE storm, migration digest corruption, admission-queue stall) at
  simulated timestamps, in the :class:`~repro.faults.plan.FaultPlan`
  idiom: all randomness resolved at build time, plans are replayable
  data.
- :mod:`repro.chaos.supervisor` — :class:`CampaignSupervisor` gives
  each host shard a timeout and bounded retries with backoff, detects
  dead worker processes (a crashed worker used to kill the whole
  ``pool.map`` campaign), and degrades to typed ``ok: False`` results
  instead of crashing.
- :mod:`repro.chaos.pool` — :class:`PersistentWorkerPool`, the default
  parallel execution engine behind the supervisor: long-lived workers
  pulling tasks over pipes with warm per-worker caches, shared across
  campaigns via :func:`shared_pool`, under the same death/timeout/retry
  contracts as the per-task spawn path.
- :mod:`repro.chaos.journal` — :class:`CampaignJournal`, the JSONL
  checkpoint log behind ``repro fleet --resume``: a SIGKILLed campaign
  resumes bit-identically, skipping completed shards.
- :mod:`repro.chaos.audit` — :class:`IsolationAuditor` re-verifies the
  one-tenant-per-group and guard-row invariants across surviving hosts
  after every handled chaos event and at campaign end.
"""

from repro.chaos.audit import AuditFinding, AuditReport, IsolationAuditor
from repro.chaos.journal import CampaignJournal, config_digest
from repro.chaos.plan import (
    ChaosKind,
    ChaosPlan,
    ChaosSpec,
    FLEET_KINDS,
    SHARD_KINDS,
)
from repro.chaos.pool import (
    PersistentWorkerPool,
    shared_pool,
    shutdown_shared_pools,
)
from repro.chaos.supervisor import (
    CampaignSupervisor,
    POOL_MODES,
    SupervisionReport,
    SupervisorPolicy,
    TaskOutcome,
    WORKER_CRASH_EXIT,
    WORKER_DEATH_EXIT,
    WorkerDeathError,
)

__all__ = [
    "AuditFinding",
    "AuditReport",
    "CampaignJournal",
    "CampaignSupervisor",
    "ChaosKind",
    "ChaosPlan",
    "ChaosSpec",
    "FLEET_KINDS",
    "IsolationAuditor",
    "POOL_MODES",
    "PersistentWorkerPool",
    "SHARD_KINDS",
    "SupervisionReport",
    "SupervisorPolicy",
    "TaskOutcome",
    "WORKER_CRASH_EXIT",
    "WORKER_DEATH_EXIT",
    "WorkerDeathError",
    "config_digest",
    "shared_pool",
    "shutdown_shared_pools",
]
