"""Declarative chaos plans: *which host fails, how, and when*.

A :class:`ChaosPlan` is the fleet-scale sibling of
:class:`~repro.faults.plan.FaultPlan`: a fully explicit, time-ordered
list of :class:`ChaosSpec` entries naming a host-level failure, its
target host, and its simulated-time trigger.  Every random choice is
resolved at *plan-construction* time (:meth:`ChaosPlan.generate`), so
the plan that comes out is deterministic data — the same
``--chaos-seed`` produces the same failure schedule on every run, at
any worker count, which is what lets a chaos campaign's merge digest
stay bit-identical across interruption and resume.

Chaos kinds model the fleet-level failure modes a production campaign
meets (CATTmew-style: isolation claims are only credible when the
harness stresses the paths where software isolation historically
breaks):

- ``HOST_CRASH`` — the host dies at ``at_clock``: its shard aborts and
  the supervisor evacuates its tenants to surviving hosts.
- ``WORKER_DEATH`` — the *worker process* simulating the host dies
  mid-shard (the host itself is fine); the supervisor must detect the
  dead worker and requeue the shard.
- ``UE_STORM`` — a DIMM-wide uncorrectable-error storm: multi-bit ECC
  faults rain on the host's rows and the PR 1 health monitor must
  escalate through soak/offline while isolation holds.
- ``DIGEST_CORRUPTION`` — a byte of a cross-host migration's region
  snapshot flips in transit; the sha256 verification in
  :mod:`repro.fleet.migration` must catch it and roll back.
- ``QUEUE_STALL`` — the admission queue freezes for a window of
  arrivals: backpressure must reject instead of wedging placement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ChaosError


class ChaosKind(Enum):
    """The host-level failure modes a chaos plan can schedule."""

    HOST_CRASH = "host-crash"
    WORKER_DEATH = "worker-death"
    UE_STORM = "ue-storm"
    DIGEST_CORRUPTION = "digest-corruption"
    QUEUE_STALL = "queue-stall"


#: Kinds applied inside a host shard (worker side), in ``at_clock`` order.
SHARD_KINDS = (ChaosKind.HOST_CRASH, ChaosKind.WORKER_DEATH, ChaosKind.UE_STORM)
#: Kinds applied by the main process (placement / evacuation phases).
FLEET_KINDS = (ChaosKind.DIGEST_CORRUPTION, ChaosKind.QUEUE_STALL)


@dataclass(frozen=True)
class ChaosSpec:
    """One planned chaos event: kind + target host + trigger.

    ``at_clock`` is the simulated time (seconds) at which the event
    fires within its host's shard; which other fields matter depends on
    ``kind`` (validated in ``__post_init__``).  ``host_id`` is ``-1``
    for fleet-wide events (queue stalls have no single victim host).
    """

    kind: ChaosKind
    host_id: int
    at_clock: float = 0.0
    #: WORKER_DEATH: how many consecutive shard attempts die (retries
    #: after the last death succeed).
    kills: int = 1
    #: UE_STORM: uncorrectable errors injected, one row apart.
    ue_errors: int = 0
    #: DIGEST_CORRUPTION: byte offset flipped in the region snapshot
    #: (taken modulo the snapshot length at fire time).
    flip_offset: int = 0
    #: QUEUE_STALL: the arrival-trace index at which the queue freezes,
    #: for how long (simulated seconds), and over how many arrivals.
    arrival_index: int = 0
    stall_s: float = 0.0
    stall_width: int = 0

    def __post_init__(self) -> None:
        if self.at_clock < 0:
            raise ChaosError("at_clock must be non-negative")
        if self.kind is ChaosKind.QUEUE_STALL:
            if self.host_id != -1:
                raise ChaosError("queue-stall is fleet-wide: host_id must be -1")
            if self.stall_s <= 0 or self.stall_width <= 0:
                raise ChaosError("queue-stall needs positive stall_s and stall_width")
            if self.arrival_index < 0:
                raise ChaosError("arrival_index must be non-negative")
            return
        if self.host_id < 0:
            raise ChaosError(f"{self.kind.value} needs a target host")
        if self.kind is ChaosKind.WORKER_DEATH and self.kills <= 0:
            raise ChaosError("worker-death needs kills >= 1")
        if self.kind is ChaosKind.UE_STORM and self.ue_errors <= 0:
            raise ChaosError("ue-storm needs ue_errors >= 1")
        if self.kind is ChaosKind.DIGEST_CORRUPTION and self.flip_offset < 0:
            raise ChaosError("flip_offset must be non-negative")

    def describe(self) -> str:
        """One-line human summary used in plans, reports, and logs."""
        where = "fleet-wide" if self.host_id < 0 else f"host {self.host_id}"
        if self.kind is ChaosKind.HOST_CRASH:
            return f"t={self.at_clock:.4f} host-crash on {where}"
        if self.kind is ChaosKind.WORKER_DEATH:
            return f"t={self.at_clock:.4f} worker-death on {where} (x{self.kills})"
        if self.kind is ChaosKind.UE_STORM:
            return f"t={self.at_clock:.4f} ue-storm on {where} ({self.ue_errors} UEs)"
        if self.kind is ChaosKind.DIGEST_CORRUPTION:
            return (
                f"t={self.at_clock:.4f} digest-corruption on {where} "
                f"(byte {self.flip_offset})"
            )
        return (
            f"t={self.at_clock:.4f} queue-stall {where} at arrival "
            f"{self.arrival_index} ({self.stall_s}s, {self.stall_width} arrivals)"
        )

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) for storage/replay."""
        return {
            "kind": self.kind.value,
            "host_id": self.host_id,
            "at_clock": self.at_clock,
            "kills": self.kills,
            "ue_errors": self.ue_errors,
            "flip_offset": self.flip_offset,
            "arrival_index": self.arrival_index,
            "stall_s": self.stall_s,
            "stall_width": self.stall_width,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=ChaosKind(data["kind"]),
            host_id=data["host_id"],
            at_clock=data.get("at_clock", 0.0),
            kills=data.get("kills", 1),
            ue_errors=data.get("ue_errors", 0),
            flip_offset=data.get("flip_offset", 0),
            arrival_index=data.get("arrival_index", 0),
            stall_s=data.get("stall_s", 0.0),
            stall_width=data.get("stall_width", 0),
        )


def _order(spec: ChaosSpec) -> tuple:
    return (spec.at_clock, spec.host_id, spec.kind.value)


@dataclass
class ChaosPlan:
    """An ordered, replayable schedule of host-level chaos.

    Like :class:`~repro.faults.plan.FaultPlan`, the ``seed`` records
    which RNG produced any generated specs and is bookkeeping only: the
    specs themselves are fully explicit data.
    """

    specs: list[ChaosSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = sorted(self.specs, key=_order)

    def __len__(self) -> int:
        return len(self.specs)

    def add(self, spec: ChaosSpec) -> "ChaosPlan":
        """Insert a spec, keeping the schedule ordered; returns self."""
        self.specs.append(spec)
        self.specs.sort(key=_order)
        return self

    def for_host(self, host_id: int) -> tuple[ChaosSpec, ...]:
        """Shard-phase specs targeting *host_id*, in trigger order."""
        return tuple(
            s for s in self.specs if s.host_id == host_id and s.kind in SHARD_KINDS
        )

    def stalls(self) -> tuple[ChaosSpec, ...]:
        """Placement-phase queue stalls, in arrival order."""
        return tuple(
            sorted(
                (s for s in self.specs if s.kind is ChaosKind.QUEUE_STALL),
                key=lambda s: s.arrival_index,
            )
        )

    def corruption_for(self, host_id: int) -> ChaosSpec | None:
        """The digest-corruption spec armed for *host_id*, if any."""
        for s in self.specs:
            if s.kind is ChaosKind.DIGEST_CORRUPTION and s.host_id == host_id:
                return s
        return None

    def describe(self) -> list[str]:
        """The whole schedule, one human-readable line per event."""
        return [s.describe() for s in self.specs]

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-serialisable) of the whole plan."""
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            specs=[ChaosSpec.from_dict(d) for d in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    # ------------------------------------------------------------------
    # Generator (all randomness resolved here, at build time)
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        hosts: int,
        *,
        events: int = 4,
        arrivals: int = 12,
        duration_s: float = 0.02,
        kinds: tuple[ChaosKind, ...] = tuple(ChaosKind),
    ) -> "ChaosPlan":
        """A seeded schedule of *events* chaos events over *hosts*.

        At most one event per ``(kind, host)`` pair (a host cannot crash
        twice), and a generated ``DIGEST_CORRUPTION`` always rides with
        a ``HOST_CRASH`` on the same host — corruption only bites during
        the evacuation that a crash triggers, so a lone corruption spec
        would be dead weight in the plan.
        """
        if hosts <= 0:
            raise ChaosError("need at least one host to plan chaos for")
        if events < 0:
            raise ChaosError("events must be non-negative")
        if duration_s <= 0:
            raise ChaosError("duration_s must be positive")
        if not kinds:
            raise ChaosError("need at least one chaos kind to draw from")
        rng = random.Random(seed ^ 0xC4A05)
        taken: set[tuple[ChaosKind, int]] = set()
        plan = cls(seed=seed)
        for _ in range(events):
            kind = rng.choice(kinds)
            host = -1 if kind is ChaosKind.QUEUE_STALL else rng.randrange(hosts)
            if (kind, host) in taken:
                continue  # deterministic skip: one event per (kind, host)
            taken.add((kind, host))
            at = round(rng.uniform(0.0, duration_s), 6)
            if kind is ChaosKind.QUEUE_STALL:
                plan.add(
                    ChaosSpec(
                        kind=kind,
                        host_id=-1,
                        at_clock=at,
                        arrival_index=rng.randrange(max(1, arrivals)),
                        stall_s=round(rng.uniform(0.001, 0.01), 6),
                        stall_width=rng.randint(1, 3),
                    )
                )
            elif kind is ChaosKind.WORKER_DEATH:
                plan.add(ChaosSpec(kind=kind, host_id=host, at_clock=at, kills=1))
            elif kind is ChaosKind.UE_STORM:
                plan.add(
                    ChaosSpec(
                        kind=kind, host_id=host, at_clock=at,
                        ue_errors=rng.randint(2, 4),
                    )
                )
            elif kind is ChaosKind.DIGEST_CORRUPTION:
                plan.add(
                    ChaosSpec(
                        kind=kind, host_id=host, at_clock=at,
                        flip_offset=rng.randrange(1 << 20),
                    )
                )
                if (ChaosKind.HOST_CRASH, host) not in taken:
                    taken.add((ChaosKind.HOST_CRASH, host))
                    plan.add(
                        ChaosSpec(
                            kind=ChaosKind.HOST_CRASH, host_id=host, at_clock=at
                        )
                    )
            else:  # HOST_CRASH
                plan.add(ChaosSpec(kind=kind, host_id=host, at_clock=at))
        return plan
