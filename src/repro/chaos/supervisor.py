"""Supervised execution of fleet host shards: timeouts, retries, and
dead-worker detection.

Before this module, :meth:`FleetCampaign._execute` handed every host
task to ``pool.map`` — and a worker process that *died* (rather than
raising) poisoned the pool and killed the whole campaign.  The
:class:`CampaignSupervisor` replaces the pool with one dedicated
process per in-flight task and a result pipe each, so the supervisor
can tell the three failure modes apart and react:

- **Worker death** (the process exits without sending a result): the
  shard is requeued with an incremented attempt counter, up to
  ``max_attempts``, with doubling wall-clock backoff between attempts.
- **Timeout** (no result within ``task_timeout_s``): the worker is
  terminated and the shard requeued the same way — a hung supervisor
  can never wedge a campaign (or CI).
- **Giving up** (attempts exhausted): the shard resolves to a typed
  ``ok: False`` result dict, so the campaign degrades instead of
  crashing; the driver folds it into the report's ``degraded`` section.

Supervision metadata (attempt counts, deaths, timeouts) is collected in
a :class:`SupervisionReport` which the report layer keeps *out* of the
merge digest: how many times a shard had to run is an execution detail,
the shard's result is the contract.  In the serial path (workers=1) a
planned worker death surfaces as :class:`WorkerDeathError` instead of a
real process exit; the retry ladder is identical, which is what keeps
``--workers 1`` and ``--workers N`` merging bit-identically under the
same chaos plan.

Two parallel execution modes share that contract (``pool=``):

- ``"persistent"`` (default) — a :class:`~repro.chaos.pool.PersistentWorkerPool`
  of long-lived workers pulling tasks from the supervisor, reusing warm
  per-worker state (geometry LUTs, decode caches) across tasks and
  across campaigns.  This is the fast path.
- ``"spawn"`` — the original one-process-per-task path, kept as an
  escape hatch (``repro fleet --pool spawn``) so a pool regression can
  be bisected against the old behaviour.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ChaosError
from repro.log import get_logger

_log = get_logger("chaos.supervisor")

#: Exit code a supervised worker uses for a planned chaos death.
WORKER_DEATH_EXIT = 70
#: Exit code for an unexpected crash inside the supervised entry shim.
WORKER_CRASH_EXIT = 81

#: Parallel execution modes (see module docstring).
POOL_MODES = ("persistent", "spawn")


class WorkerDeathError(ChaosError):
    """A planned worker-process death (chaos), surfaced in-process.

    Raised by the shard function when a ``WORKER_DEATH`` chaos spec
    fires.  In a supervised subprocess the entry shim converts it into a
    real ``os._exit`` so the parent exercises true dead-worker
    detection; in the serial path the supervisor catches it directly.
    """


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/timeout budget for one campaign's shards."""

    #: Wall-clock seconds one shard attempt may run before termination.
    task_timeout_s: float = 120.0
    #: Total attempts per shard (first run + retries).
    max_attempts: int = 3
    #: Base wall-clock backoff before a retry; doubles per prior attempt.
    backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.task_timeout_s <= 0:
            raise ChaosError("task_timeout_s must be positive")
        if self.max_attempts < 1:
            raise ChaosError("max_attempts must be at least 1")
        if self.backoff_s < 0:
            raise ChaosError("backoff_s must be non-negative")


@dataclass
class TaskOutcome:
    """Supervision metadata for one shard (never hashed into digests)."""

    host_id: int
    attempts: int = 1
    worker_deaths: int = 0
    timeouts: int = 0
    gave_up: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the report's ``supervision`` section."""
        return {
            "host_id": self.host_id,
            "attempts": self.attempts,
            "worker_deaths": self.worker_deaths,
            "timeouts": self.timeouts,
            "gave_up": self.gave_up,
        }


@dataclass
class SupervisionReport:
    """What the supervisor did across the whole campaign."""

    outcomes: List[TaskOutcome] = field(default_factory=list)

    @property
    def retried(self) -> int:
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def worker_deaths(self) -> int:
        return sum(o.worker_deaths for o in self.outcomes)

    @property
    def timeouts(self) -> int:
        return sum(o.timeouts for o in self.outcomes)

    def to_dict(self) -> Dict[str, Any]:
        """Aggregates plus per-shard outcomes, sorted by host id."""
        return {
            "retried": self.retried,
            "worker_deaths": self.worker_deaths,
            "timeouts": self.timeouts,
            "outcomes": [
                o.to_dict()
                for o in sorted(self.outcomes, key=lambda o: o.host_id)
            ],
        }


def gave_up_result(task: Any, outcome: TaskOutcome, policy: SupervisorPolicy) -> dict:
    """Typed degraded result for a shard that exhausted its budget.

    Deterministic given the chaos plan: the same plan kills the same
    attempts, so the same shards give up with the same error text — in
    either pool mode, at any worker count.
    """
    _log.warning(
        "host %d shard gave up after %d attempt(s)",
        task.spec.host_id, policy.max_attempts,
    )
    return {
        "host_id": task.spec.host_id,
        "ok": False,
        "gave_up": True,
        "vms": [s.name for s in task.vm_specs],
        "placed_bytes": 0,
        "error": (
            f"supervisor: shard failed {policy.max_attempts} "
            "attempt(s) (worker death/timeout); giving up"
        ),
    }


def note_death(host_id: int, attempt: int, detail: str) -> None:
    """Log + emit one dead-worker observation (shared with the pool)."""
    _log.warning(
        "host %d worker died on attempt %d (%s); requeueing",
        host_id, attempt, detail,
    )
    if obs.ENABLED:
        obs.emit(
            obs.ChaosEvent(
                chaos="worker-death", host=host_id,
                detail=f"attempt {attempt}: {detail}",
            )
        )


def note_timeout(host_id: int, attempt: int) -> None:
    """Log + emit one shard-timeout observation (shared with the pool)."""
    _log.warning(
        "host %d shard timed out on attempt %d; requeueing",
        host_id, attempt,
    )
    if obs.ENABLED:
        obs.emit(
            obs.ChaosEvent(
                chaos="timeout", host=host_id, detail=f"attempt {attempt}",
            )
        )


def _supervised_entry(conn, run_fn, task, attempt: int) -> None:
    """Subprocess shim: run the shard, pipe the result back, and turn a
    planned chaos death into a *real* process death so the parent's
    dead-worker detection is exercised, not simulated."""
    try:
        try:
            result = run_fn(task, attempt=attempt)
        except WorkerDeathError:
            os._exit(WORKER_DEATH_EXIT)
        conn.send(result)
        conn.close()
    except Exception:  # noqa: BLE001 — any shim failure is a crash exit
        os._exit(WORKER_CRASH_EXIT)


@dataclass
class _InFlight:
    proc: Any
    conn: Any
    task: Any
    attempt: int
    deadline: float
    outcome: TaskOutcome


class CampaignSupervisor:
    """Run host shards to completion under a retry/timeout budget.

    ``run_fn(task, attempt=n)`` must be a picklable module-level
    callable returning a result dict with a ``host_id`` key; tasks must
    carry ``.spec.host_id``.  Results are returned in task order.
    """

    def __init__(
        self,
        run_fn: Callable[..., dict],
        *,
        policy: Optional[SupervisorPolicy] = None,
        pool: str = "persistent",
        warmup: Optional[Callable[[], None]] = None,
    ):
        if pool not in POOL_MODES:
            raise ChaosError(f"unknown pool mode {pool!r}; know {POOL_MODES}")
        self.run_fn = run_fn
        self.policy = policy or SupervisorPolicy()
        self.pool = pool
        self.warmup = warmup

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Any],
        workers: int,
        *,
        on_result: Optional[Callable[[dict], None]] = None,
        collect: bool = True,
    ) -> Tuple[List[dict], SupervisionReport]:
        """Execute every task; returns (results, supervision report).

        *on_result* is invoked with each result dict as soon as the
        shard completes (the journal hook) — under SIGKILL the journal
        holds exactly the shards that finished.  With ``collect=False``
        the returned result list is empty and *on_result* is the only
        consumer — the cluster path folds results into a streaming
        merge instead of materializing them all.
        """
        if workers <= 1 or len(tasks) <= 1:
            return self._run_serial(tasks, on_result, collect)
        if self.pool == "persistent":
            from repro.chaos.pool import shared_pool

            worker_pool = shared_pool(self.run_fn, workers, warmup=self.warmup)
            return worker_pool.run(
                tasks, self.policy, on_result=on_result, collect=collect
            )
        return self._run_parallel(tasks, workers, on_result, collect)

    # ------------------------------------------------------------------
    # Serial path (workers=1): in-process, same retry ladder
    # ------------------------------------------------------------------

    def _run_serial(
        self,
        tasks: Sequence[Any],
        on_result: Optional[Callable[[dict], None]],
        collect: bool = True,
    ) -> Tuple[List[dict], SupervisionReport]:
        report = SupervisionReport()
        results: List[dict] = []
        for task in tasks:
            outcome = TaskOutcome(host_id=task.spec.host_id)
            report.outcomes.append(outcome)
            attempt = 1
            while True:
                try:
                    result = self.run_fn(task, attempt=attempt)
                    break
                except WorkerDeathError as exc:
                    outcome.worker_deaths += 1
                    note_death(task.spec.host_id, attempt, str(exc))
                    if attempt >= self.policy.max_attempts:
                        outcome.gave_up = True
                        result = gave_up_result(task, outcome, self.policy)
                        break
                    self._backoff(attempt)
                    attempt += 1
                    outcome.attempts = attempt
            if collect:
                results.append(result)
            if on_result is not None:
                on_result(result)
        return results, report

    # ------------------------------------------------------------------
    # Parallel path: one process + pipe per in-flight shard
    # ------------------------------------------------------------------

    def _run_parallel(
        self,
        tasks: Sequence[Any],
        workers: int,
        on_result: Optional[Callable[[dict], None]],
        collect: bool = True,
    ) -> Tuple[List[dict], SupervisionReport]:
        ctx = get_context()
        report = SupervisionReport()
        outcomes = {}
        for task in tasks:
            outcome = TaskOutcome(host_id=task.spec.host_id)
            outcomes[id(task)] = outcome
            report.outcomes.append(outcome)
        pending: List[Tuple[Any, int]] = [(t, 1) for t in tasks]
        inflight: Dict[Any, _InFlight] = {}  # sentinel -> state
        results: Dict[int, dict] = {}  # index in `tasks` -> result
        index_of = {id(t): i for i, t in enumerate(tasks)}

        def finish(task: Any, result: dict) -> None:
            results[index_of[id(task)]] = result
            if on_result is not None:
                on_result(result)

        def spawn(task: Any, attempt: int) -> None:
            parent, child = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_supervised_entry,
                args=(child, self.run_fn, task, attempt),
                daemon=True,
            )
            proc.start()
            child.close()
            inflight[proc.sentinel] = _InFlight(
                proc=proc,
                conn=parent,
                task=task,
                attempt=attempt,
                deadline=time.monotonic() + self.policy.task_timeout_s,
                outcome=outcomes[id(task)],
            )

        def retire(state: _InFlight, *, timed_out: bool) -> None:
            """A shard attempt failed without a result: retry or give up."""
            if timed_out:
                state.outcome.timeouts += 1
                note_timeout(state.task.spec.host_id, state.attempt)
            else:
                state.outcome.worker_deaths += 1
                note_death(
                    state.task.spec.host_id,
                    state.attempt,
                    f"worker exit code {state.proc.exitcode}",
                )
            if state.attempt >= self.policy.max_attempts:
                state.outcome.gave_up = True
                finish(
                    state.task,
                    gave_up_result(state.task, state.outcome, self.policy),
                )
                return
            self._backoff(state.attempt)
            state.outcome.attempts = state.attempt + 1
            pending.append((state.task, state.attempt + 1))

        while pending or inflight:
            while pending and len(inflight) < workers:
                task, attempt = pending.pop(0)
                spawn(task, attempt)
            now = time.monotonic()
            wait_s = max(
                0.001,
                min((s.deadline for s in inflight.values()), default=now) - now,
            )
            ready = connection.wait(list(inflight), timeout=wait_s)
            for sentinel in ready:
                state = inflight.pop(sentinel)
                got: Optional[dict] = None
                # Drain the pipe *before* join: a dead process with no
                # buffered result is a worker death.
                try:
                    if state.conn.poll():
                        got = state.conn.recv()
                except (EOFError, OSError):
                    got = None
                state.proc.join()
                state.conn.close()
                if got is not None:
                    finish(state.task, got)
                else:
                    retire(state, timed_out=False)
            # Enforce deadlines on whatever is still running.
            now = time.monotonic()
            for sentinel in [
                s for s, st in inflight.items() if st.deadline <= now
            ]:
                state = inflight.pop(sentinel)
                state.proc.terminate()
                state.proc.join()
                state.conn.close()
                retire(state, timed_out=True)

        ordered = [results[i] for i in sorted(results)] if collect else []
        return ordered, report

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _backoff(self, prior_attempts: int) -> None:
        wait = self.policy.backoff_s * (2 ** (prior_attempts - 1))
        if wait > 0:
            time.sleep(wait)
