"""Physical-to-media address decode (paper §2.4, §4.2).

Commodity servers interleave sequential cache lines across a socket's
banks to get bank-level parallelism.  On the paper's Intel Skylake
platform the decode has three levels of structure that Siloz depends on:

1. **Line interleave.**  Within a *row group* (the same row number in
   every bank of the socket, Fig. 2), consecutive cache lines round-robin
   across all banks.
2. **Chunk alternation.**  Ascending physical addresses fill ascending
   row groups, but every ``n`` row groups (n=16, i.e. 24 MiB on the paper
   geometry) alternate between two individually-contiguous physical
   ranges A and B.
3. **768 MiB jumps.**  The A/B pattern restarts with fresh ranges at each
   768 MiB-aligned boundary ("mapping jump"), which is why 1 GiB pages do
   not inherently sit in one subarray group while 2 MiB pages do.

:class:`SkylakeMapping` implements the decode, its exact inverse, and the
boot-time solver Siloz uses to turn a subarray group into host-physical
address ranges (§5.3).  The shape is parametrised so the small test
geometry exercises every branch.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.errors import MappingError
from repro.units import CACHE_LINE, MiB, is_aligned

#: Entries kept in each per-mapping decode LRU.  Sized for the working
#: sets of the perf experiments (thousands of distinct cache lines) while
#: bounding memory on adversarial scans.
DECODE_CACHE_SIZE = 1 << 16

#: Sentinel distinguishing "not computed yet" from a cached ``None``.
_UNSET = object()


@dataclass(frozen=True)
class AddressRange:
    """A half-open host-physical address range [start, end)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise MappingError(f"bad address range [{self.start:#x}, {self.end:#x})")

    @property
    def size(self) -> int:
        return self.end - self.start

    def __contains__(self, hpa: int) -> bool:
        return self.start <= hpa < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.start < other.end and other.start < self.end

    def __str__(self) -> str:
        return f"[{self.start:#x}, {self.end:#x})"


def merge_ranges(ranges: list[AddressRange]) -> list[AddressRange]:
    """Coalesce adjacent/overlapping ranges; result is sorted."""
    out: list[AddressRange] = []
    for r in sorted(ranges, key=lambda r: r.start):
        if out and r.start <= out[-1].end:
            out[-1] = AddressRange(out[-1].start, max(out[-1].end, r.end))
        else:
            out.append(r)
    return out


def subtract_ranges(
    ranges: list[AddressRange], holes: list[AddressRange]
) -> list[AddressRange]:
    """Remove *holes* from *ranges*; both inputs may be unsorted.

    Used when carving the EPT row group out of its host-reserved
    subarray group (§5.4)."""
    result = merge_ranges(ranges)
    for hole in merge_ranges(holes):
        next_result: list[AddressRange] = []
        for r in result:
            if not r.overlaps(hole):
                next_result.append(r)
                continue
            if r.start < hole.start:
                next_result.append(AddressRange(r.start, hole.start))
            if hole.end < r.end:
                next_result.append(AddressRange(hole.end, r.end))
        result = next_result
    return result


@dataclass(frozen=True)
class SkylakeMapping:
    """Invertible physical-to-media decode with chunk alternation.

    ``chunk_row_groups`` is the paper's *n* (16); ``chunks_per_range`` is
    how many chunks each of the A and B ranges contributes to a mapping
    region, so a region spans ``2 * chunks_per_range * chunk_row_groups``
    row groups (512 on the paper geometry = 768 MiB).
    """

    geom: DRAMGeometry
    chunk_row_groups: int = 16
    chunks_per_range: int = 16
    _socket_bases: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        g = self.geom
        if self.chunk_row_groups <= 0 or self.chunks_per_range <= 0:
            raise MappingError("chunk_row_groups and chunks_per_range must be positive")
        if g.rows_per_bank % self.region_row_groups != 0:
            raise MappingError(
                f"rows_per_bank ({g.rows_per_bank}) must be a multiple of the "
                f"mapping region ({self.region_row_groups} row groups)"
            )
        # Ascending sockets own ascending contiguous HPA ranges.
        bases = tuple(s * g.socket_bytes for s in range(g.sockets))
        object.__setattr__(self, "_socket_bases", bases)
        # Hot-path memoization (repro.engine): the chunk permutation as
        # flat lookup tables, the derived shape as plain ints (the
        # properties recompute products on every call), and LRU-wrapped
        # decoders bound as instance attributes.  All are pure functions
        # of the frozen fields, so caching cannot change results — the
        # mapping property tests verify cached == uncached.
        n_chunks = 2 * self.chunks_per_range
        object.__setattr__(
            self,
            "_phys2rg",
            tuple(self._phys_chunk_to_rg_chunk(c) for c in range(n_chunks)),
        )
        object.__setattr__(
            self,
            "_rg2phys",
            tuple(self._rg_chunk_to_phys_chunk(c) for c in range(n_chunks)),
        )
        object.__setattr__(self, "_c_chunk_bytes", self.chunk_bytes)
        object.__setattr__(self, "_c_region_bytes", self.region_bytes)
        object.__setattr__(self, "_c_region_rgs", self.region_row_groups)
        object.__setattr__(self, "_c_rg_bytes", g.row_group_bytes)
        object.__setattr__(self, "_c_banks_per_socket", g.banks_per_socket)
        object.__setattr__(self, "_c_banks_per_channel", g.banks_per_channel)
        object.__setattr__(self, "_c_socket_bytes", g.socket_bytes)
        object.__setattr__(self, "_c_total_bytes", g.total_bytes)
        object.__setattr__(
            self,
            "decode_cached",
            functools.lru_cache(maxsize=DECODE_CACHE_SIZE)(self.decode),
        )
        object.__setattr__(
            self,
            "decode_flat",
            functools.lru_cache(maxsize=DECODE_CACHE_SIZE)(self._decode_flat),
        )

    @classmethod
    def for_small_geometry(cls, geom: DRAMGeometry) -> "SkylakeMapping":
        """A proportionally-scaled mapping for tiny test geometries: two
        row groups per chunk, two chunks per range, so one region is eight
        row groups."""
        return cls(geom, chunk_row_groups=2, chunks_per_range=2)

    # ------------------------------------------------------------------
    # Derived shape
    # ------------------------------------------------------------------

    @property
    def chunk_bytes(self) -> int:
        return self.chunk_row_groups * self.geom.row_group_bytes

    @property
    def region_row_groups(self) -> int:
        """Row groups per mapping region (between 'jumps')."""
        return 2 * self.chunks_per_range * self.chunk_row_groups

    @property
    def region_bytes(self) -> int:
        return self.region_row_groups * self.geom.row_group_bytes

    @property
    def regions_per_socket(self) -> int:
        return self.geom.rows_per_bank // self.region_row_groups

    def socket_base(self, socket: int) -> int:
        self.geom.check_socket(socket)
        return self._socket_bases[socket]

    def socket_of_hpa(self, hpa: int) -> int:
        self._check_hpa(hpa)
        return hpa // self.geom.socket_bytes

    def _check_hpa(self, hpa: int) -> None:
        if not 0 <= hpa < self.geom.total_bytes:
            raise MappingError(
                f"HPA {hpa:#x} outside installed memory [0, {self.geom.total_bytes:#x})"
            )

    # ------------------------------------------------------------------
    # Chunk permutation (physical chunk index <-> row-group chunk index)
    # ------------------------------------------------------------------

    def _phys_chunk_to_rg_chunk(self, phys_chunk: int) -> int:
        """Within one region: range A's k-th chunk lands on row-group
        chunk 2k; range B's k-th chunk on 2k+1 (paper §4.2)."""
        if phys_chunk < self.chunks_per_range:  # range A
            return 2 * phys_chunk
        return 2 * (phys_chunk - self.chunks_per_range) + 1  # range B

    def _rg_chunk_to_phys_chunk(self, rg_chunk: int) -> int:
        if rg_chunk % 2 == 0:
            return rg_chunk // 2
        return self.chunks_per_range + (rg_chunk - 1) // 2

    # ------------------------------------------------------------------
    # Decode / encode
    # ------------------------------------------------------------------

    def decode(self, hpa: int) -> MediaAddress:
        """Translate a host physical address to its media address."""
        g = self.geom
        self._check_hpa(hpa)
        socket, off = divmod(hpa, g.socket_bytes)
        region, roff = divmod(off, self.region_bytes)
        phys_chunk, coff = divmod(roff, self.chunk_bytes)
        rg_chunk = self._phys_chunk_to_rg_chunk(phys_chunk)
        rg_in_chunk, within = divmod(coff, g.row_group_bytes)
        row = (
            region * self.region_row_groups
            + rg_chunk * self.chunk_row_groups
            + rg_in_chunk
        )
        line, line_off = divmod(within, CACHE_LINE)
        socket_bank = line % g.banks_per_socket
        col = (line // g.banks_per_socket) * CACHE_LINE + line_off
        return MediaAddress.from_socket_bank(g, socket, socket_bank, row, col)

    def _decode_flat(self, hpa: int) -> tuple[int, int, int, int]:
        """Decode to ``(socket, socket_bank, channel, row)`` without
        building a :class:`MediaAddress` — the fields the controllers'
        hot loops actually consume.  Exposed (LRU-cached) as
        :meth:`decode_flat`; always agrees with :meth:`decode`."""
        if not 0 <= hpa < self._c_total_bytes:
            raise MappingError(
                f"HPA {hpa:#x} outside installed memory [0, {self._c_total_bytes:#x})"
            )
        socket, off = divmod(hpa, self._c_socket_bytes)
        region, roff = divmod(off, self._c_region_bytes)
        phys_chunk, coff = divmod(roff, self._c_chunk_bytes)
        rg_in_chunk, within = divmod(coff, self._c_rg_bytes)
        row = (
            region * self._c_region_rgs
            + self._phys2rg[phys_chunk] * self.chunk_row_groups
            + rg_in_chunk
        )
        socket_bank = (within // CACHE_LINE) % self._c_banks_per_socket
        return socket, socket_bank, socket_bank // self._c_banks_per_channel, row

    def decode_batch(self, hpas) -> list[MediaAddress]:
        """Decode a vector of HPAs through the shared LRU cache."""
        cached = self.decode_cached
        return [cached(hpa) for hpa in hpas]

    def _np_phys2rg_table(self):
        """Chunk-permutation LUT as an int64 ndarray (lazy; ``None``
        when numpy is unavailable, so callers can fall back)."""
        tab = getattr(self, "_np_phys2rg_cached", _UNSET)
        if tab is _UNSET:
            try:
                import numpy as np

                tab = np.asarray(self._phys2rg, dtype=np.int64)
            except ImportError:  # pragma: no cover - numpy baked into CI
                tab = None
            object.__setattr__(self, "_np_phys2rg_cached", tab)
        return tab

    def decode_media_batch(self, hpas):
        """Vectorized :meth:`decode` over an array of HPAs.

        Returns ``(socket, socket_bank, row, col)`` int64 ndarrays that
        agree element-wise with :meth:`decode` (the mapping property
        tests enforce this).  Raises :class:`ImportError` without numpy
        and :class:`MappingError` on any out-of-range address.
        """
        import numpy as np

        phys2rg = self._np_phys2rg_table()
        arr = np.asarray(hpas, dtype=np.int64)
        if arr.size:
            lo, hi = int(arr.min()), int(arr.max())
            if lo < 0 or hi >= self._c_total_bytes:
                self._check_hpa(lo if lo < 0 else hi)
        # All the divisors here are powers of two (byte sizes and bank
        # counts); shift/mask is several times faster than int64 divmod
        # on large arrays and identical for the non-negative operands
        # validated above.
        def div_mod(a, d):
            if d & (d - 1) == 0:
                return a >> (d.bit_length() - 1), a & (d - 1)
            return np.divmod(a, d)

        socket, off = div_mod(arr, self._c_socket_bytes)
        region, roff = div_mod(off, self._c_region_bytes)
        phys_chunk, coff = div_mod(roff, self._c_chunk_bytes)
        rg_in_chunk, within = div_mod(coff, self._c_rg_bytes)
        row = (
            region * self._c_region_rgs
            + phys2rg[phys_chunk] * self.chunk_row_groups
            + rg_in_chunk
        )
        line, line_off = div_mod(within, CACHE_LINE)
        bank_stride, socket_bank = div_mod(line, self._c_banks_per_socket)
        col = bank_stride * CACHE_LINE + line_off
        return socket, socket_bank, row, col

    def decode_flat_batch(self, hpas):
        """Vectorized :meth:`decode_flat`: ``(socket, socket_bank,
        channel, row)`` int64 ndarrays for an array of HPAs."""
        socket, socket_bank, row, _col = self.decode_media_batch(hpas)
        return socket, socket_bank, socket_bank // self._c_banks_per_channel, row

    def decode_lines_batch(
        self, hpa: int, length: int
    ) -> list[tuple[int, int, int, int, int, int]]:
        """Split ``[hpa, hpa+length)`` into per-cache-line pieces in one
        vectorized decode: a list of ``(socket, socket_bank, row, col,
        offset, take)``.  Raises :class:`ImportError` without numpy."""
        import numpy as np

        first = hpa // CACHE_LINE
        n = (hpa + length - 1) // CACHE_LINE - first + 1
        bounds = np.arange(first, first + n + 1, dtype=np.int64) * CACHE_LINE
        starts = bounds[:-1].copy()
        starts[0] = hpa
        ends = bounds[1:]
        ends[-1] = hpa + length
        socket, socket_bank, row, col = self.decode_media_batch(starts)
        return list(
            zip(
                socket.tolist(),
                socket_bank.tolist(),
                row.tolist(),
                col.tolist(),
                (starts - hpa).tolist(),
                (ends - starts).tolist(),
            )
        )

    def decode_cache_info(self) -> dict[str, object]:
        """Hit/miss statistics of both decode LRUs (perf diagnostics)."""
        return {
            "decode": self.decode_cached.cache_info(),
            "flat": self.decode_flat.cache_info(),
        }

    def encode(self, media: MediaAddress) -> int:
        """Exact inverse of :meth:`decode`."""
        g = self.geom
        media.validate(g)
        region, row_in_region = divmod(media.row, self.region_row_groups)
        rg_chunk, rg_in_chunk = divmod(row_in_region, self.chunk_row_groups)
        phys_chunk = self._rg_chunk_to_phys_chunk(rg_chunk)
        col_line, line_off = divmod(media.col, CACHE_LINE)
        line = col_line * g.banks_per_socket + media.socket_bank_index(g)
        within = line * CACHE_LINE + line_off
        return (
            self.socket_base(media.socket)
            + region * self.region_bytes
            + phys_chunk * self.chunk_bytes
            + rg_in_chunk * g.row_group_bytes
            + within
        )

    # ------------------------------------------------------------------
    # Subarray-group queries (used by Siloz at boot, §5.3)
    # ------------------------------------------------------------------

    def subarray_group_of_hpa(self, hpa: int) -> tuple[int, int]:
        """(socket, group index) containing *hpa*.

        The row-group index equals the bank-local row number, so the
        group is simply row // rows_per_subarray.
        """
        media = self.decode_cached(hpa)
        return media.socket, media.row // self.geom.rows_per_subarray

    def row_group_ranges(self, socket: int, row: int) -> list[AddressRange]:
        """HPA range(s) whose bytes live in row *row* of every bank.

        A single row group is always physically contiguous (it sits
        inside one chunk), so the list has exactly one element; the list
        type keeps the signature uniform with
        :meth:`subarray_group_ranges`.
        """
        g = self.geom
        g.check_socket(socket)
        g.check_row(row)
        region, row_in_region = divmod(row, self.region_row_groups)
        rg_chunk, rg_in_chunk = divmod(row_in_region, self.chunk_row_groups)
        phys_chunk = self._rg_chunk_to_phys_chunk(rg_chunk)
        start = (
            self.socket_base(socket)
            + region * self.region_bytes
            + phys_chunk * self.chunk_bytes
            + rg_in_chunk * g.row_group_bytes
        )
        return [AddressRange(start, start + g.row_group_bytes)]

    def subarray_group_ranges(self, socket: int, group: int) -> list[AddressRange]:
        """All HPA ranges backing subarray group *group* of *socket*,
        coalesced.  This is the boot-time computation Siloz caches."""
        g = self.geom
        if not 0 <= group < g.groups_per_socket:
            raise MappingError(
                f"subarray group {group} out of range [0, {g.groups_per_socket})"
            )
        first_row = group * g.rows_per_subarray
        rows = range(first_row, first_row + g.rows_per_subarray)
        if g.rows_per_subarray % self.chunk_row_groups == 0:
            # Whole chunks: walk per-chunk instead of per-row for speed.
            ranges = []
            for row in rows[:: self.chunk_row_groups]:
                (r,) = self.row_group_ranges(socket, row)
                ranges.append(AddressRange(r.start, r.start + self.chunk_bytes))
        else:
            ranges = [r for row in rows for r in self.row_group_ranges(socket, row)]
        return merge_ranges(ranges)

    def groups_touched_by_range(self, start: int, size: int) -> set[tuple[int, int]]:
        """Set of (socket, group) touched by HPA range [start, start+size).

        Walks chunk- (not byte-) granular because group membership is
        constant within a chunk's row groups only up to subarray-group
        boundaries; sampling at every row-group boundary is sufficient
        because group membership cannot change mid row group.
        """
        if size <= 0:
            raise MappingError(f"range size must be positive, got {size}")
        g = self.geom
        groups: set[tuple[int, int]] = set()
        step = g.row_group_bytes
        hpa = start - (start % step)
        while hpa < start + size:
            probe = max(hpa, start)
            groups.add(self.subarray_group_of_hpa(probe))
            hpa += step
        return groups

    def page_is_isolated(self, page_start: int, page_size: int) -> bool:
        """True when the whole page maps into a single subarray group —
        the precondition for provisioning it to a VM (§4.2)."""
        return len(self.groups_touched_by_range(page_start, page_size)) == 1

    def fraction_of_pages_isolated(self, page_size: int, socket: int = 0) -> float:
        """Fraction of aligned *page_size* pages in *socket* that map to a
        single subarray group.  Reproduces §4.2's observations: 1.0 for
        2 MiB / 4 KiB pages, >= 1/3 for 1 GiB pages grouped into 3 GiB
        sets.
        """
        g = self.geom
        base = self.socket_base(socket)
        total = g.socket_bytes // page_size
        if total == 0:
            raise MappingError(
                f"page size {page_size} exceeds socket capacity {g.socket_bytes}"
            )
        isolated = sum(
            1
            for i in range(total)
            if self.page_is_isolated(base + i * page_size, page_size)
        )
        return isolated / total

    # ------------------------------------------------------------------
    # Structural self-checks
    # ------------------------------------------------------------------

    def verify_invertible(self, stride: int = CACHE_LINE) -> None:
        """Round-trip every *stride*-th address; raises on any mismatch.

        Cheap for the test geometry; paper-scale callers should sample.
        """
        for hpa in range(0, self.geom.total_bytes, stride):
            back = self.encode(self.decode(hpa))
            if back != hpa:
                raise MappingError(f"decode/encode mismatch: {hpa:#x} -> {back:#x}")

    def describe(self) -> str:
        """One-line summary of the mapping shape (chunks/regions)."""
        return (
            f"chunk={self.chunk_row_groups} row groups "
            f"({self.chunk_bytes // MiB if is_aligned(self.chunk_bytes, MiB) else self.chunk_bytes} "
            f"{'MiB' if is_aligned(self.chunk_bytes, MiB) else 'B'}), "
            f"region={self.region_row_groups} row groups, "
            f"{self.regions_per_socket} regions/socket"
        )
