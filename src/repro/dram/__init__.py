"""Simulated server DDR4 DRAM substrate.

This package models everything below the memory controller that Siloz
(SOSP 2023) depends on:

- :mod:`repro.dram.geometry` — module/rank/bank/subarray geometry,
- :mod:`repro.dram.media` — media-address codec,
- :mod:`repro.dram.mapping` — Skylake-like physical-to-media decode,
- :mod:`repro.dram.transforms` — DDR4 mirroring/inversion, vendor
  scrambling, row repairs (paper §6, Table 1),
- :mod:`repro.dram.module` — sparse bit-cell storage with activation
  accounting,
- :mod:`repro.dram.disturbance` — Rowhammer/RowPress victim physics,
- :mod:`repro.dram.trr` / :mod:`repro.dram.ecc` — deployed-but-bypassable
  hardware mitigations.
"""

from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.dram.mapping import SkylakeMapping
from repro.dram.module import SimulatedDram
from repro.dram.disturbance import DisturbanceModel, DisturbanceProfile, BitFlip

__all__ = [
    "DRAMGeometry",
    "MediaAddress",
    "SkylakeMapping",
    "SimulatedDram",
    "DisturbanceModel",
    "DisturbanceProfile",
    "BitFlip",
]
