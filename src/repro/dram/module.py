"""Bit-level simulated server DRAM (paper §2.3-§2.5).

:class:`SimulatedDram` is the device under test for all of the security
experiments: it stores data, counts activations, runs the TRR sampler,
applies the Rowhammer/RowPress disturbance model, and exposes ECC/patrol
scrub.  Storage is sparse — only rows ever written or flipped take
memory — so the paper-scale geometry (384 GiB) is as cheap to model as
the test geometry when the working set is small.

Two coordinate systems appear here:

- *media* rows: what the memory controller (and thus all HPAs) address;
- *internal* rows: where the cells physically sit after vendor row
  repairs (§6).  Disturbance pressure lives in internal space, because
  that is where electrical adjacency is real; flips are mapped back to
  the media row whose data they corrupt.  An inter-subarray repair
  therefore *dynamically* breaks containment in this model, exactly the
  failure mode Siloz offlines pages to avoid.

Mirroring/inversion/scrambling are subarray-preserving bijections for
power-of-2 subarray sizes (proved by
:func:`repro.dram.transforms.subarray_isolation_preserved` and its
tests), so the dynamic simulation runs them as identity; the analysis
path in :mod:`repro.dram.transforms` covers the non-power-of-2 cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.dram.disturbance import BitFlip, DisturbanceModel, DisturbanceProfile
from repro.dram.ecc import WORD_BITS, EccEngine, EccEvent, EccOutcome
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.media import MediaAddress
from repro.dram.trr import Trr, TrrConfig
from repro.engine.backend import SimBackend
from repro.errors import DramError, UncorrectableError
from repro.units import CACHE_LINE, MS


@dataclass
class DramCounters:
    """Aggregate activity counters for one module."""

    activations: int = 0
    reads: int = 0
    writes: int = 0
    refresh_windows: int = 0
    trr_refs: int = 0


class DramHook:
    """Observer interface for module-level events (fault injection).

    Register an instance with :meth:`SimulatedDram.register_hook` to be
    called on activations, clock advances, and writes.  The base class
    implements every callback as a no-op so subclasses override only
    what they need.  Hooks may mutate the module (e.g. plant bit errors
    via :meth:`SimulatedDram.inject_bit_error`); they run synchronously
    inside the triggering operation, so an injected fault is visible to
    the access that tripped the hook.
    """

    def on_activate(self, dram: "SimulatedDram", socket: int, bank: int, row: int) -> None:
        """One ACT was issued (clock already advanced)."""

    def on_clock(self, dram: "SimulatedDram") -> None:
        """Simulated time advanced without an access (idle time)."""

    def on_write(self, dram: "SimulatedDram", hpa: int, length: int) -> None:
        """Data was stored at [hpa, hpa+length) (stores already applied)."""


class SimulatedDram:
    """A full server DRAM complement behind one mapping.

    Parameters
    ----------
    geom, mapping:
        Hardware shape; *mapping* defaults to the proportional test
        mapping for small geometries and the Skylake shape otherwise.
    profile:
        Disturbance susceptibility (per-DIMM in the fleet benches).
    trr_config:
        TRR sampler parameters; pass ``None`` to disable TRR entirely
        (useful to isolate the disturbance model in tests).
    act_seconds:
        Simulated wall-clock cost per activation; drives the 64 ms
        refresh-window bookkeeping.
    trr_ref_every:
        A bank receives a TRR refresh opportunity every N of its ACTs
        (the per-bank share of tREFI ticks).
    backend:
        :class:`~repro.engine.backend.SimBackend` (or its string value)
        selecting the activation hot path: ``SCALAR`` is the golden
        reference, ``BATCHED`` routes :meth:`activate_batch` through the
        array-backed :mod:`repro.engine.batch` loop, ``VECTORIZED``
        through the numpy :mod:`repro.engine.vector` kernels.  All three
        produce bit-identical results (see ``tests/test_differential.py``).
    """

    def __init__(
        self,
        geom: DRAMGeometry,
        mapping: SkylakeMapping | None = None,
        *,
        profile: DisturbanceProfile | None = None,
        trr_config: TrrConfig | None = TrrConfig(),
        seed: int = 0,
        act_seconds: float = 60e-9,
        trr_ref_every: int = 64,
        refresh_window: float = 64 * MS,
        data_dependent_flips: bool = False,
        backend: SimBackend | str = SimBackend.SCALAR,
    ):
        self.geom = geom
        if mapping is None:
            if geom.rows_per_bank < 16 * 2 * 16 * 2:
                mapping = SkylakeMapping.for_small_geometry(geom)
            else:
                mapping = SkylakeMapping(geom)
        if mapping.geom is not geom:
            raise DramError("mapping and module must share a geometry")
        self.mapping = mapping
        # Vectorized whole-span line decode (repro.engine); None when the
        # mapping implementation has no batch decoder or numpy is absent.
        self._lines_fast = getattr(mapping, "decode_lines_batch", None)
        self.backend = SimBackend.parse(backend)
        if self.backend is SimBackend.BATCHED:
            # Imported lazily: repro.engine.batch itself imports the
            # disturbance layer, so a top-level import would cycle.
            from repro.engine.batch import BatchedDisturbanceModel

            self.disturbance: DisturbanceModel = BatchedDisturbanceModel(
                geom, profile, seed=seed
            )
        elif self.backend is SimBackend.VECTORIZED:
            try:
                from repro.engine.vector import VectorizedDisturbanceModel
            except ImportError as exc:  # numpy not installed
                raise DramError(
                    "the vectorized backend requires numpy; install it or "
                    "pick the scalar/batched backend"
                ) from exc

            self.disturbance = VectorizedDisturbanceModel(geom, profile, seed=seed)
        else:
            self.disturbance = DisturbanceModel(geom, profile, seed=seed)
        self.trr = Trr(geom, trr_config, seed=seed + 1) if trr_config else None
        self.ecc = EccEngine()
        self.counters = DramCounters()
        self.clock = 0.0
        self.act_seconds = act_seconds
        self.trr_ref_every = trr_ref_every
        self.refresh_window = refresh_window
        self._last_full_refresh = 0.0
        self._data: dict[tuple[int, int, int], bytearray] = {}
        self._flips: dict[tuple[int, int, int], set[int]] = {}
        self._acts_by_bank: dict[tuple[int, int], int] = {}
        # True-/anti-cell modelling: a disturbance can only *discharge*
        # a cell, so a bit flips only when its stored value differs from
        # the cell's resting value.  Off by default (the containment
        # results are polarity-agnostic); see flips_suppressed.
        self.data_dependent_flips = data_dependent_flips
        self.flips_suppressed = 0
        # Row repairs: (socket, bank) -> {defective media row: spare row},
        # plus the reverse index for mapping victims back to media rows.
        self._repairs: dict[tuple[int, int], dict[int, int]] = {}
        self._spare_owner: dict[tuple[int, int], dict[int, int]] = {}
        self.flips_log: list[BitFlip] = []
        self._hooks: list[DramHook] = []

    # ------------------------------------------------------------------
    # Hooks (fault injection, monitoring)
    # ------------------------------------------------------------------

    def register_hook(self, hook: DramHook) -> None:
        """Attach a :class:`DramHook`; it is called on every activation,
        clock advance, and write until unregistered."""
        if hook in self._hooks:
            raise DramError("hook already registered")
        self._hooks.append(hook)

    def unregister_hook(self, hook: DramHook) -> None:
        """Detach a previously registered hook (no-op if absent)."""
        if hook in self._hooks:
            self._hooks.remove(hook)

    def inject_bit_error(self, socket: int, bank: int, row: int, bit: int) -> None:
        """Fault-injection entry point: toggle one stored bit, exactly as
        a defective cell would corrupt it.  The error is visible to the
        next read/scrub of the row (and, if alone in its 64-bit word,
        correctable by ECC)."""
        self.geom.check_row(row)
        if not 0 <= bit < self.geom.row_bytes * 8:
            raise DramError(f"bit {bit} outside row of {self.geom.row_bytes} bytes")
        self._toggle_bit(socket, bank, row, bit)

    def bit_at(self, socket: int, bank: int, row: int, bit: int) -> int:
        """Current effective value of one cell (stored data XOR flip) —
        what a raw (ECC-off) read of that bit would sense."""
        self.geom.check_row(row)
        return self._effective_bit(socket, bank, row, bit)

    # ------------------------------------------------------------------
    # Row repairs
    # ------------------------------------------------------------------

    def add_repair(self, socket: int, bank: int, defective_row: int, spare_row: int) -> None:
        """Vendor-style repair: media *defective_row* now lives in the
        cells of internal *spare_row* (§6)."""
        self.geom.check_row(defective_row)
        self.geom.check_row(spare_row)
        key = (socket, bank)
        bank_repairs = self._repairs.setdefault(key, {})
        if defective_row in bank_repairs:
            raise DramError(f"row {defective_row} already repaired in bank {key}")
        bank_repairs[defective_row] = spare_row
        self._spare_owner.setdefault(key, {})[spare_row] = defective_row

    def _to_internal(self, socket: int, bank: int, row: int) -> int:
        return self._repairs.get((socket, bank), {}).get(row, row)

    def _to_media_victim(self, socket: int, bank: int, internal_row: int) -> int | None:
        """Media row whose data lives in *internal_row*, or None when the
        internal row's cells are disconnected (a repaired-away row)."""
        key = (socket, bank)
        owner = self._spare_owner.get(key, {}).get(internal_row)
        if owner is not None:
            return owner
        if internal_row in self._repairs.get(key, {}):
            return None  # cells abandoned by the repair
        return internal_row

    # ------------------------------------------------------------------
    # Activation path
    # ------------------------------------------------------------------

    def activate(
        self, socket: int, bank: int, row: int, *, open_seconds: float = 0.0
    ) -> list[BitFlip]:
        """Issue one ACT to (socket, socket-flat bank, media row).

        Returns any disturbance flips caused (already applied to the
        stored data and appended to :attr:`flips_log`)."""
        self.geom.check_row(row)
        self.counters.activations += 1
        self.clock += self.act_seconds
        self._maybe_full_refresh()
        for hook in self._hooks:
            hook.on_activate(self, socket, bank, row)
        internal = self._to_internal(socket, bank, row)

        if self.trr is not None:
            self.trr.on_activate(socket, bank, internal, when=self.clock)
        raw = self.disturbance.on_activate(socket, bank, internal, self.clock)
        if open_seconds:
            self.clock += open_seconds
            raw += self.disturbance.on_row_open_time(
                socket, bank, internal, open_seconds, self.clock
            )
        flips = self._apply_internal_flips(socket, bank, raw)

        if self.trr is not None:
            acts = self._acts_by_bank.get((socket, bank), 0) + 1
            self._acts_by_bank[(socket, bank)] = acts
            if acts % self.trr_ref_every == 0:
                self.counters.trr_refs += 1
                for victim in self.trr.on_ref(socket, bank, when=self.clock):
                    self.disturbance.on_refresh_row(socket, bank, victim)
        return flips

    def activate_batch(self, socket: int, bank: int, rows) -> list[BitFlip]:
        """Issue a vector of ACTs to one (socket, bank).

        Semantically identical to ``for row in rows: activate(...)`` —
        on the batched backend the loop runs through the inlined
        :func:`repro.engine.batch.run_activation_batch` fast path; on
        the scalar backend it falls back to per-access :meth:`activate`.
        Returns the concatenated disturbance flips."""
        rows = rows if isinstance(rows, list) else list(rows)
        if obs.ENABLED:
            obs.emit(
                obs.ActBatchEvent(
                    socket=socket, bank=bank, rows=len(rows), when=self.clock
                )
            )
        if self.backend is SimBackend.BATCHED:
            from repro.engine.batch import run_activation_batch

            return run_activation_batch(self, socket, bank, rows)
        if self.backend is SimBackend.VECTORIZED:
            from repro.engine.vector import run_activation_batch_vectorized

            return run_activation_batch_vectorized(self, socket, bank, rows)
        flips: list[BitFlip] = []
        for row in rows:
            flips.extend(self.activate(socket, bank, row))
        return flips

    @staticmethod
    def _resting_value(socket: int, bank: int, row: int, bit: int) -> int:
        """Deterministic true-/anti-cell polarity: the value a cell
        decays toward (true cells rest at 0, anti cells at 1)."""
        h = (socket * 1009 + bank * 9176 + row * 31 + bit) * 2654435761
        return (h >> 13) & 1

    def _effective_bit(self, socket: int, bank: int, row: int, bit: int) -> int:
        stored = self._data.get((socket, bank, row))
        value = (stored[bit // 8] >> (bit % 8)) & 1 if stored else 0
        if bit in self._flips.get((socket, bank, row), ()):
            value ^= 1
        return value

    def _apply_internal_flips(
        self, socket: int, bank: int, raw: list[BitFlip]
    ) -> list[BitFlip]:
        out: list[BitFlip] = []
        for flip in raw:
            media_row = self._to_media_victim(socket, bank, flip.row)
            if media_row is None:
                continue
            if self.data_dependent_flips:
                resting = self._resting_value(socket, bank, media_row, flip.bit)
                if self._effective_bit(socket, bank, media_row, flip.bit) == resting:
                    self.flips_suppressed += 1
                    continue  # cell already at rest: nothing to lose
            media_flip = BitFlip(
                socket=socket,
                bank=bank,
                row=media_row,
                bit=flip.bit,
                aggressor_row=flip.aggressor_row,
                when=flip.when,
            )
            self._toggle_bit(socket, bank, media_row, flip.bit)
            self.flips_log.append(media_flip)
            out.append(media_flip)
        if obs.ENABLED and out:
            for f in out:
                obs.emit(
                    obs.FlipEvent(
                        socket=f.socket,
                        bank=f.bank,
                        row=f.row,
                        bit=f.bit,
                        aggressor_row=f.aggressor_row,
                        when=f.when,
                    )
                )
        return out

    def _toggle_bit(self, socket: int, bank: int, row: int, bit: int) -> None:
        key = (socket, bank, row)
        flips = self._flips.setdefault(key, set())
        if bit in flips:
            flips.remove(bit)
        else:
            flips.add(bit)
        if not flips:
            del self._flips[key]

    def _maybe_full_refresh(self) -> None:
        if self.clock - self._last_full_refresh >= self.refresh_window:
            self.disturbance.on_refresh_all()
            self._last_full_refresh = self.clock
            self.counters.refresh_windows += 1
            if obs.ENABLED:
                obs.emit(obs.RefreshWindowEvent(when=self.clock))

    def acts_until_trr_ref(self, socket: int, bank: int) -> int | None:
        """ACTs remaining until this bank's next TRR REF opportunity, or
        None when TRR is disabled.  Attackers can estimate this on real
        hardware by timing REF-induced stalls — the synchronization step
        of Blacksmith-class attacks."""
        if self.trr is None:
            return None
        acts = self._acts_by_bank.get((socket, bank), 0)
        return self.trr_ref_every - (acts % self.trr_ref_every)

    def advance_time(self, seconds: float) -> None:
        """Let simulated wall-clock pass (idle time, other work)."""
        if seconds < 0:
            raise DramError("cannot advance time backwards")
        self.clock += seconds
        self._maybe_full_refresh()
        for hook in self._hooks:
            hook.on_clock(self)

    # ------------------------------------------------------------------
    # Data path (by host physical address, through the mapping)
    # ------------------------------------------------------------------

    def _row_store(self, socket: int, bank: int, row: int) -> bytearray:
        key = (socket, bank, row)
        got = self._data.get(key)
        if got is None:
            got = bytearray(self.geom.row_bytes)
            self._data[key] = got
        return got

    def _effective_row(self, socket: int, bank: int, row: int) -> bytearray:
        """Stored bytes with current flips applied (what a read senses)."""
        data = bytearray(self._data.get((socket, bank, row), bytes(self.geom.row_bytes)))
        for bit in self._flips.get((socket, bank, row), ()):
            data[bit // 8] ^= 1 << (bit % 8)
        return data

    def _lines(self, hpa: int, length: int) -> list[tuple[int, int, int, int, int, int]]:
        """Split [hpa, hpa+length) into per-cache-line pieces, decoded to
        ``(socket, socket_bank, row, col, offset, take)`` tuples.

        Multi-line spans go through the mapping's vectorized
        ``decode_lines_batch`` when numpy is available; single lines and
        numpy-less runs use the scalar decode.  Both agree exactly (the
        mapping property tests compare them)."""
        if length <= 0:
            raise DramError(f"length must be positive, got {length}")
        fast = self._lines_fast
        if fast is not None and length > CACHE_LINE:
            try:
                return fast(hpa, length)
            except ImportError:  # pragma: no cover - numpy baked into CI
                self._lines_fast = None
        out = []
        geom = self.geom
        decode = self.mapping.decode
        offset = 0
        while offset < length:
            addr = hpa + offset
            line_off = addr % CACHE_LINE
            take = min(CACHE_LINE - line_off, length - offset)
            media = decode(addr)
            out.append(
                (media.socket, media.socket_bank_index(geom), media.row, media.col, offset, take)
            )
            offset += take
        return out

    def write(self, hpa: int, data: bytes) -> None:
        """Write bytes at *hpa*; clears any flips in the written bits."""
        self.counters.writes += 1
        for socket, bank, row, col, offset, take in self._lines(hpa, len(data)):
            self.activate(socket, bank, row)
            store = self._row_store(socket, bank, row)
            store[col : col + take] = data[offset : offset + take]
            flips = self._flips.get((socket, bank, row))
            if flips:
                low, high = col * 8, (col + take) * 8
                for bit in [b for b in flips if low <= b < high]:
                    flips.remove(bit)
                if not flips:
                    del self._flips[(socket, bank, row)]
        for hook in self._hooks:
            hook.on_write(self, hpa, len(data))

    def read(self, hpa: int, length: int, *, ecc: bool = True) -> bytes:
        """Read bytes at *hpa*.

        With ECC on, single-bit-per-word errors in the touched words are
        corrected in the returned data (and logged); a double-bit word
        raises :class:`UncorrectableError` (machine check, §2.5)."""
        self.counters.reads += 1
        out = bytearray(length)
        for socket, bank, row, col, offset, take in self._lines(hpa, length):
            self.activate(socket, bank, row)
            chunk = self._effective_row(socket, bank, row)[col : col + take]
            if ecc:
                chunk = self._ecc_correct_chunk(socket, bank, row, col, take, chunk)
            out[offset : offset + take] = chunk
        return bytes(out)

    def read_region(self, hpa: int, length: int, *, ecc: bool = True) -> bytes:
        """Bulk read of ``[hpa, hpa+length)`` with open-row semantics.

        Decodes the whole span in one vectorized pass, activates each
        touched row once (a burst reader keeps a row open across its
        columns instead of re-activating per cache line), senses it
        once, and runs a single ECC sweep per row over every touched
        word.  Returned bytes and healed bits match per-line
        :meth:`read` on the same span; only the ACT/clock accounting
        differs (one ACT per touched row), identically across all three
        backends.  Bulk consumers — migration snapshots, remediation
        copies — use this instead of :meth:`read`."""
        self.counters.reads += 1
        out = bytearray(length)
        sensed: dict[tuple[int, int, int], bytearray] = {}
        pieces: dict[tuple[int, int, int], list[tuple[int, int, int]]] = {}
        for socket, bank, row, col, offset, take in self._lines(hpa, length):
            key = (socket, bank, row)
            data = sensed.get(key)
            if data is None:
                self.activate(socket, bank, row)
                data = sensed[key] = self._effective_row(socket, bank, row)
                pieces[key] = []
            out[offset : offset + take] = data[col : col + take]
            pieces[key].append((col, take, offset))
        if not ecc:
            return bytes(out)
        for (socket, bank, row), spans in pieces.items():
            flips = self._flips.get((socket, bank, row))
            if not flips:
                continue
            touched = {
                b
                for col, take, _off in spans
                for b in flips
                if col * 8 <= b < (col + take) * 8
            }
            if not touched:
                continue
            events = self.ecc.check_row_bits(socket, bank, row, touched, self.clock)
            for event in events:
                if event.outcome is EccOutcome.UNCORRECTABLE:
                    byte = event.word * (WORD_BITS // 8)
                    col = next(
                        (c for c, take, _off in spans if c <= byte < c + take),
                        spans[0][0],
                    )
                    media = MediaAddress.from_socket_bank(
                        self.geom, socket, bank, row, col
                    )
                    raise UncorrectableError(
                        f"double-bit error in row {row} word {event.word}",
                        address=self.mapping.encode(media),
                    )
            for bit in self.ecc.correctable_bits(touched):
                byte = bit // 8
                for col, take, off in spans:
                    if col <= byte < col + take:
                        out[off + (byte - col)] ^= 1 << (bit % 8)
                        break
        return bytes(out)

    def _ecc_correct_chunk(
        self, socket: int, bank: int, row: int, col: int, take: int, chunk: bytearray
    ) -> bytearray:
        flips = self._flips.get((socket, bank, row))
        if not flips:
            return chunk
        low, high = col * 8, (col + take) * 8
        touched = {b for b in flips if low <= b < high}
        if not touched:
            return chunk
        events = self.ecc.check_row_bits(socket, bank, row, touched, self.clock)
        for event in events:
            if event.outcome is EccOutcome.UNCORRECTABLE:
                media = MediaAddress.from_socket_bank(self.geom, socket, bank, row, col)
                raise UncorrectableError(
                    f"double-bit error in row {row} word {event.word}",
                    address=self.mapping.encode(media),
                )
        chunk = bytearray(chunk)
        for bit in self.ecc.correctable_bits(touched):
            chunk[bit // 8 - col] ^= 1 << (bit % 8)
        return chunk

    # ------------------------------------------------------------------
    # Patrol scrub and flip accounting (§7.1's 24 h scrub pass)
    # ------------------------------------------------------------------

    def patrol_scrub(self) -> list[EccEvent]:
        """Scan every row carrying flips: heal correctable bits in place,
        log uncorrectable words.  Returns all events from the pass."""
        events: list[EccEvent] = []
        for (socket, bank, row), flips in sorted(self._flips.items()):
            events.extend(
                self.ecc.check_row_bits(socket, bank, row, set(flips), self.clock)
            )
            # Healing = rewriting the corrected value; the sparse store
            # already holds the written data, so dropping the flip is the
            # whole repair.
            for bit in self.ecc.correctable_bits(set(flips)):
                flips.discard(bit)
        self._flips = {k: v for k, v in self._flips.items() if v}
        return events

    def flip_bits_at(self, socket: int, bank: int, row: int) -> set[int]:
        return set(self._flips.get((socket, bank, row), ()))

    def flips_by_group(self) -> dict[tuple[int, int], int]:
        """Flip counts per (socket, subarray group) — Table 3's unit of
        accounting."""
        out: dict[tuple[int, int], int] = {}
        for flip in self.flips_log:
            key = (flip.socket, flip.row // self.geom.rows_per_subarray)
            out[key] = out.get(key, 0) + 1
        return out

    def flips_outside_groups(self, groups: set[tuple[int, int]]) -> list[BitFlip]:
        """Flips that landed outside the given (socket, group) set — the
        quantity Table 3 shows is zero under Siloz."""
        return [
            f
            for f in self.flips_log
            if (f.socket, f.row // self.geom.rows_per_subarray) not in groups
        ]
