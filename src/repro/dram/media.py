"""Media addresses: the coordinates memory controllers use to reach DRAM
cells (paper §2.4).

A :class:`MediaAddress` names one byte inside the module hierarchy:
``(socket, channel, dimm, rank, bank, row, col)`` where *bank* is the
rank-local bank index, *row* is the bank-local row and *col* is the byte
offset inside the row.  Because much of the stack only cares about "which
of the socket's N banks", the codec between the tuple form and a flat
socket-local bank index lives here too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DRAMGeometry
from repro.errors import AddressError


@dataclass(frozen=True, order=True)
class MediaAddress:
    """One byte of DRAM, named by its position in the module hierarchy."""

    socket: int
    channel: int
    dimm: int
    rank: int
    bank: int
    row: int
    col: int

    def validate(self, geom: DRAMGeometry) -> "MediaAddress":
        """Raise :class:`AddressError` unless every field is in range for
        *geom*; returns self for chaining."""
        checks = (
            ("socket", self.socket, geom.sockets),
            ("channel", self.channel, geom.channels_per_socket),
            ("dimm", self.dimm, geom.dimms_per_channel),
            ("rank", self.rank, geom.ranks_per_dimm),
            ("bank", self.bank, geom.banks_per_rank),
            ("row", self.row, geom.rows_per_bank),
            ("col", self.col, geom.row_bytes),
        )
        for name, value, bound in checks:
            if not 0 <= value < bound:
                raise AddressError(
                    f"media address {self}: {name}={value} out of range [0, {bound})"
                )
        return self

    # ------------------------------------------------------------------
    # Flat bank indices
    # ------------------------------------------------------------------

    def socket_bank_index(self, geom: DRAMGeometry) -> int:
        """Flat index of this bank among the socket's banks, ordering
        channels outermost, then DIMMs, ranks, and rank-local banks."""
        idx = self.channel
        idx = idx * geom.dimms_per_channel + self.dimm
        idx = idx * geom.ranks_per_dimm + self.rank
        idx = idx * geom.banks_per_rank + self.bank
        return idx

    def global_bank_index(self, geom: DRAMGeometry) -> int:
        """Flat index among all banks in the machine."""
        return self.socket * geom.banks_per_socket + self.socket_bank_index(geom)

    @classmethod
    def from_socket_bank(
        cls,
        geom: DRAMGeometry,
        socket: int,
        socket_bank: int,
        row: int,
        col: int = 0,
    ) -> "MediaAddress":
        """Inverse of :meth:`socket_bank_index` (plus row/col)."""
        if not 0 <= socket_bank < geom.banks_per_socket:
            raise AddressError(
                f"socket bank {socket_bank} out of range [0, {geom.banks_per_socket})"
            )
        bank = socket_bank % geom.banks_per_rank
        rest = socket_bank // geom.banks_per_rank
        rank = rest % geom.ranks_per_dimm
        rest //= geom.ranks_per_dimm
        dimm = rest % geom.dimms_per_channel
        channel = rest // geom.dimms_per_channel
        return cls(
            socket=socket,
            channel=channel,
            dimm=dimm,
            rank=rank,
            bank=bank,
            row=row,
            col=col,
        ).validate(geom)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def bank_key(self, geom: DRAMGeometry) -> tuple[int, int]:
        """Hashable identity of the containing bank: (socket, flat bank)."""
        return (self.socket, self.socket_bank_index(geom))

    def subarray(self, geom: DRAMGeometry) -> int:
        """Bank-local subarray index of this address's row."""
        return geom.subarray_of_row(self.row)

    def same_bank(self, other: "MediaAddress") -> bool:
        """True when both addresses resolve to the same physical bank."""
        return (
            self.socket == other.socket
            and self.channel == other.channel
            and self.dimm == other.dimm
            and self.rank == other.rank
            and self.bank == other.bank
        )

    def with_row(self, row: int, col: int | None = None) -> "MediaAddress":
        """Same bank, different row (and optionally column)."""
        return MediaAddress(
            socket=self.socket,
            channel=self.channel,
            dimm=self.dimm,
            rank=self.rank,
            bank=self.bank,
            row=row,
            col=self.col if col is None else col,
        )

    def __str__(self) -> str:  # compact, log-friendly
        return (
            f"s{self.socket}.c{self.channel}.d{self.dimm}.r{self.rank}"
            f".b{self.bank}.row{self.row}+{self.col:#x}"
        )
