"""Server DRAM geometry (paper §2.3, Table 2).

A geometry pins down the hierarchy *socket -> channel -> DIMM -> rank ->
bank -> subarray -> row* and all the derived quantities that the rest of
the stack needs: bank capacity, rows per bank, subarray-group size, and
so on.

The paper's evaluation server (Table 2) is a dual-socket Intel Xeon Gold
6230 with, per socket, 192 GiB of DDR4 as six 32 GiB 2Rx4 DIMMs: 6
channels x 2 ranks x 16 banks = 192 banks per socket, 1 GiB banks, 8 KiB
rows, 1024-row subarrays.  That configuration is
:meth:`DRAMGeometry.paper_default`.  Tests mostly use
:meth:`DRAMGeometry.small` so that whole-module simulations stay fast.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

from repro.errors import GeometryError
from repro.units import KiB, fmt_bytes, is_power_of_two


@dataclass(frozen=True)
class DRAMGeometry:
    """Immutable description of a server's DRAM layout.

    Parameters mirror what BIOS/SPD reports to system software, plus the
    subarray size, which DDR4 does not report: Siloz receives it as a boot
    parameter (paper §5.3) obtained from the vendor or inferred via mFIT.
    """

    sockets: int = 2
    channels_per_socket: int = 6
    dimms_per_channel: int = 1
    ranks_per_dimm: int = 2
    banks_per_rank: int = 16
    row_bytes: int = 8 * KiB
    rows_per_bank: int = 131072  # 1 GiB bank / 8 KiB rows
    rows_per_subarray: int = 1024

    def __post_init__(self) -> None:
        for name in (
            "sockets",
            "channels_per_socket",
            "dimms_per_channel",
            "ranks_per_dimm",
            "banks_per_rank",
            "row_bytes",
            "rows_per_bank",
            "rows_per_subarray",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise GeometryError(f"{name} must be a positive int, got {value!r}")
        if self.rows_per_bank % self.rows_per_subarray != 0:
            raise GeometryError(
                f"rows_per_bank ({self.rows_per_bank}) must be a multiple of "
                f"rows_per_subarray ({self.rows_per_subarray})"
            )
        if not is_power_of_two(self.row_bytes):
            raise GeometryError(f"row_bytes must be a power of two, got {self.row_bytes}")

    # ------------------------------------------------------------------
    # Canonical configurations
    # ------------------------------------------------------------------

    @classmethod
    def paper_default(cls) -> "DRAMGeometry":
        """The evaluation server from Table 2 (192 banks/socket, 1.5 GiB
        subarray groups)."""
        return cls()

    @classmethod
    def small(
        cls,
        *,
        sockets: int = 1,
        banks_per_rank: int = 4,
        channels_per_socket: int = 2,
        ranks_per_dimm: int = 1,
        rows_per_bank: int = 64,
        rows_per_subarray: int = 8,
        row_bytes: int = 8 * KiB,
    ) -> "DRAMGeometry":
        """A tiny geometry for tests: 8 banks/socket, 64 rows/bank.

        Socket capacity is 8 banks * 64 rows * 8 KiB = 4 MiB, small enough
        to simulate bit-for-bit, while still having multiple subarrays per
        bank and multiple banks per socket so every isolation property is
        exercised.
        """
        return cls(
            sockets=sockets,
            channels_per_socket=channels_per_socket,
            dimms_per_channel=1,
            ranks_per_dimm=ranks_per_dimm,
            banks_per_rank=banks_per_rank,
            row_bytes=row_bytes,
            rows_per_bank=rows_per_bank,
            rows_per_subarray=rows_per_subarray,
        )

    @classmethod
    def medium(cls, *, sockets: int = 2, rows_per_subarray: int = 128) -> "DRAMGeometry":
        """A scaled-down server for performance experiments: 32 banks and
        256 MiB per socket, 1024 rows per bank.

        The perf-relevant shape (many banks, deep rows, multi-chunk
        mapping regions) matches the paper server; only capacity is
        scaled, which the timing model never depends on.  128-row
        subarrays are the scale analogue of the paper's 1024 (same 1/8
        rows-per-bank ratio); 64 and 256 play the roles of 512 and 2048
        in the §7.4 sensitivity sweep.
        """
        return cls(
            sockets=sockets,
            channels_per_socket=4,
            dimms_per_channel=1,
            ranks_per_dimm=2,
            banks_per_rank=4,
            row_bytes=8 * KiB,
            rows_per_bank=1024,
            rows_per_subarray=rows_per_subarray,
        )

    def with_subarray_rows(self, rows_per_subarray: int) -> "DRAMGeometry":
        """The same hardware re-described with a different presumed
        subarray size (paper §7.4's Siloz-512 / Siloz-2048 variants)."""
        return replace(self, rows_per_subarray=rows_per_subarray)

    def with_sub_numa_clustering(self, clusters: int = 2) -> "DRAMGeometry":
        """The same hardware under sub-NUMA clustering (paper §8.1).

        SNC splits each socket into *clusters* NUMA domains, each
        interleaving over 1/clusters of the channels — so a page touches
        proportionally fewer banks and the subarray-group size shrinks
        by the same factor (1.5 GiB -> 768 MiB at SNC-2).  Modelled as
        more, narrower 'sockets', which is exactly how the OS sees it.
        """
        if clusters <= 0 or self.channels_per_socket % clusters != 0:
            raise GeometryError(
                f"cannot split {self.channels_per_socket} channels into "
                f"{clusters} clusters"
            )
        return replace(
            self,
            sockets=self.sockets * clusters,
            channels_per_socket=self.channels_per_socket // clusters,
        )

    @classmethod
    def ddr5_server(cls, *, sockets: int = 2) -> "DRAMGeometry":
        """A DDR5-generation server (paper §8.2): 32 banks per rank
        (vs DDR4's 16) doubles banks/socket to 384, so subarray groups
        grow to 3 GiB at 1024-row subarrays — coarser management, same
        isolation math (and no mirroring/inversion to undo, see
        :class:`repro.dram.transforms.TransformConfig` ``ddr5``)."""
        return cls(
            sockets=sockets,
            channels_per_socket=6,
            dimms_per_channel=1,
            ranks_per_dimm=2,
            banks_per_rank=32,
            row_bytes=8 * KiB,
            rows_per_bank=65536,  # 512 MiB banks (denser, narrower banks)
            rows_per_subarray=1024,
        )

    @classmethod
    def hbm2_stack(cls, *, sockets: int = 1) -> "DRAMGeometry":
        """An HBM2-class device (paper §8.2): many narrow channels with
        high bank counts; subarray groups follow the same algebra."""
        return cls(
            sockets=sockets,
            channels_per_socket=8,
            dimms_per_channel=1,
            ranks_per_dimm=1,
            banks_per_rank=16,
            row_bytes=2 * KiB,
            rows_per_bank=16384,
            rows_per_subarray=1024,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @functools.cached_property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @functools.cached_property
    def banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    @functools.cached_property
    def banks_per_socket(self) -> int:
        return self.channels_per_socket * self.banks_per_channel

    @functools.cached_property
    def total_banks(self) -> int:
        return self.sockets * self.banks_per_socket

    @functools.cached_property
    def bank_bytes(self) -> int:
        return self.rows_per_bank * self.row_bytes

    @functools.cached_property
    def socket_bytes(self) -> int:
        return self.banks_per_socket * self.bank_bytes

    @functools.cached_property
    def total_bytes(self) -> int:
        return self.sockets * self.socket_bytes

    @functools.cached_property
    def dimm_bytes(self) -> int:
        return self.ranks_per_dimm * self.banks_per_rank * self.bank_bytes

    @functools.cached_property
    def subarrays_per_bank(self) -> int:
        return self.rows_per_bank // self.rows_per_subarray

    @functools.cached_property
    def row_group_bytes(self) -> int:
        """One row from every bank in a socket (paper Fig. 2)."""
        return self.banks_per_socket * self.row_bytes

    @functools.cached_property
    def subarray_group_bytes(self) -> int:
        """Size of one subarray group: one subarray per bank per socket
        (paper §4.1: 192 * 1024 * 8 KiB = 1.5 GiB on the default)."""
        return self.banks_per_socket * self.rows_per_subarray * self.row_bytes

    @functools.cached_property
    def groups_per_socket(self) -> int:
        return self.subarrays_per_bank

    @functools.cached_property
    def total_groups(self) -> int:
        return self.sockets * self.groups_per_socket

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def subarray_of_row(self, row: int) -> int:
        """Subarray index within a bank for a bank-local *row*."""
        self.check_row(row)
        return row // self.rows_per_subarray

    def subarray_row_range(self, subarray: int) -> range:
        """Bank-local rows belonging to *subarray*."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise GeometryError(
                f"subarray {subarray} out of range [0, {self.subarrays_per_bank})"
            )
        start = subarray * self.rows_per_subarray
        return range(start, start + self.rows_per_subarray)

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise GeometryError(f"row {row} out of range [0, {self.rows_per_bank})")

    def check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.sockets:
            raise GeometryError(f"socket {socket} out of range [0, {self.sockets})")

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """True when two bank-local rows share a subarray — the necessary
        condition for one to disturb the other (paper §2.5)."""
        return self.subarray_of_row(row_a) == self.subarray_of_row(row_b)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by bench headers to
        reproduce the spirit of Table 2)."""
        return (
            f"{self.sockets} socket(s), {self.channels_per_socket} ch/socket, "
            f"{self.dimms_per_channel} DIMM/ch, {self.ranks_per_dimm} ranks/DIMM, "
            f"{self.banks_per_rank} banks/rank\n"
            f"  banks/socket={self.banks_per_socket}, bank={fmt_bytes(self.bank_bytes)}, "
            f"row={fmt_bytes(self.row_bytes)}, rows/bank={self.rows_per_bank}\n"
            f"  subarray={self.rows_per_subarray} rows -> "
            f"{self.subarrays_per_bank} subarrays/bank, "
            f"subarray group={fmt_bytes(self.subarray_group_bytes)} "
            f"({self.groups_per_socket} groups/socket)\n"
            f"  capacity: {fmt_bytes(self.socket_bytes)}/socket, "
            f"{fmt_bytes(self.total_bytes)} total"
        )
