"""Rowhammer / RowPress disturbance physics (paper §2.5).

The model follows the experimentally-established facts Siloz relies on:

- Activating an aggressor row leaks disturbance *pressure* into nearby
  rows, with weight decaying over row distance (Half-Double-style spill
  to distance 2).
- Keeping a row open for a long time (RowPress) adds pressure too.
- **Pressure never crosses a subarray boundary** — subarrays are
  electrically isolated (mFIT), which is the entire basis of Siloz.
- A victim flips bits once its accumulated pressure since its last
  refresh exceeds its per-row threshold; thresholds vary across rows and
  DIMMs (lognormal spread around a per-DIMM mean).
- Refreshing a row drains its pressure; an ACT also refreshes the
  activated row itself.

Thresholds are expressed in *equivalent single-aggressor activations*
(HC_first in the literature; ~50K for the weakest rows of modern DDR4).
Test-scale profiles use much smaller numbers so simulations stay fast —
the containment result is threshold-agnostic, as the paper stresses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dram.geometry import DRAMGeometry
from repro.errors import DramError

#: Pressure contributed by one aggressor ACT at each row distance.
DEFAULT_DISTANCE_WEIGHTS: tuple[float, ...] = (1.0, 0.2)

#: RowPress: cumulative aggressor-open time that equals one threshold's
#: worth of disturbance (RowPress flips bits after tens of ms of open
#: time within a refresh window).
ROWPRESS_SATURATION_S: float = 0.032


@dataclass(frozen=True)
class DisturbanceProfile:
    """Per-DIMM susceptibility parameters.

    ``threshold_mean`` is the mean HC_first; individual rows draw their
    own threshold from lognormal(mean, sigma).  ``flip_bits_mean`` is the
    expected number of bit flips per threshold crossing.
    """

    name: str = "default"
    threshold_mean: float = 50_000.0
    threshold_sigma: float = 0.15
    distance_weights: tuple[float, ...] = DEFAULT_DISTANCE_WEIGHTS
    #: Pressure per second of extra row-open time; None derives it from
    #: the threshold so ~ROWPRESS_SATURATION_S of open time within one
    #: refresh window crosses it (the RowPress regime).
    rowpress_rate: float | None = None
    flip_bits_mean: float = 1.5

    def __post_init__(self) -> None:
        if self.threshold_mean <= 0:
            raise DramError("threshold_mean must be positive")
        if not self.distance_weights or self.distance_weights[0] <= 0:
            raise DramError("distance_weights must start with a positive weight")

    @property
    def blast_radius(self) -> int:
        return len(self.distance_weights)

    @property
    def effective_rowpress_rate(self) -> float:
        if self.rowpress_rate is not None:
            return self.rowpress_rate
        return self.threshold_mean / ROWPRESS_SATURATION_S

    @classmethod
    def test_scale(cls, name: str = "test", threshold_mean: float = 64.0) -> "DisturbanceProfile":
        """Low-threshold profile so tests flip bits in a few dozen ACTs."""
        return cls(name=name, threshold_mean=threshold_mean)

    @classmethod
    def dimm_fleet(cls, count: int = 6, *, test_scale: bool = True) -> list["DisturbanceProfile"]:
        """Profiles for the paper's DIMMs A..F (Table 3): same physics,
        different susceptibility means."""
        base = 48.0 if test_scale else 45_000.0
        names = [chr(ord("A") + i) for i in range(count)]
        return [
            cls(
                name=names[i],
                threshold_mean=base * (1.0 + 0.25 * i),
                threshold_sigma=0.1 + 0.02 * i,
            )
            for i in range(count)
        ]


@dataclass(frozen=True)
class BitFlip:
    """One disturbance-induced bit flip, in media coordinates."""

    socket: int
    bank: int  # socket-local flat bank index
    row: int  # bank-local row
    bit: int  # bit index within the row (0 .. row_bytes*8-1)
    aggressor_row: int
    when: float  # simulation seconds

    def subarray(self, geom: DRAMGeometry) -> int:
        return geom.subarray_of_row(self.row)


class DisturbanceModel:
    """Tracks per-victim pressure for one DRAM module and emits flips.

    One instance covers every bank; state is keyed by (socket, flat bank,
    row) and created lazily, so paper-scale geometries cost memory only
    proportional to rows actually touched.
    """

    def __init__(
        self,
        geom: DRAMGeometry,
        profile: DisturbanceProfile | None = None,
        *,
        seed: int = 0,
    ):
        self.geom = geom
        self.profile = profile or DisturbanceProfile()
        self._rng = random.Random(seed)
        self._pressure: dict[tuple[int, int, int], float] = {}
        self._threshold: dict[tuple[int, int, int], float] = {}
        self.flips: list[BitFlip] = []

    # ------------------------------------------------------------------

    def _victim_threshold(self, key: tuple[int, int, int]) -> float:
        got = self._threshold.get(key)
        if got is None:
            p = self.profile
            got = self._rng.lognormvariate(0.0, p.threshold_sigma) * p.threshold_mean
            self._threshold[key] = got
        return got

    def _neighbors(self, row: int) -> list[tuple[int, float]]:
        """(victim row, weight) pairs inside the aggressor's subarray.

        This is where the paper's central physical fact is enforced:
        candidates outside the aggressor's subarray are dropped.
        """
        geom = self.geom
        subarray = geom.subarray_of_row(row)
        out: list[tuple[int, float]] = []
        for distance, weight in enumerate(self.profile.distance_weights, start=1):
            for victim in (row - distance, row + distance):
                if not 0 <= victim < geom.rows_per_bank:
                    continue
                if geom.subarray_of_row(victim) != subarray:
                    continue  # electrically isolated (§2.5)
                out.append((victim, weight))
        return out

    def _add_pressure(
        self,
        socket: int,
        bank: int,
        aggressor_row: int,
        amount: float,
        when: float,
    ) -> list[BitFlip]:
        new_flips: list[BitFlip] = []
        for victim, weight in self._neighbors(aggressor_row):
            key = (socket, bank, victim)
            pressure = self._pressure.get(key, 0.0) + amount * weight
            threshold = self._victim_threshold(key)
            while pressure >= threshold:
                pressure -= threshold
                n_bits = max(1, round(self._rng.expovariate(1.0 / self.profile.flip_bits_mean)))
                for _ in range(n_bits):
                    bit = self._rng.randrange(self.geom.row_bytes * 8)
                    flip = BitFlip(
                        socket=socket,
                        bank=bank,
                        row=victim,
                        bit=bit,
                        aggressor_row=aggressor_row,
                        when=when,
                    )
                    new_flips.append(flip)
            self._pressure[key] = pressure
        self.flips.extend(new_flips)
        return new_flips

    # ------------------------------------------------------------------
    # Events fed by the DRAM module
    # ------------------------------------------------------------------

    def on_activate(self, socket: int, bank: int, row: int, when: float) -> list[BitFlip]:
        """An ACT hit (socket, bank, row); returns any fresh flips.

        The activated row itself is refreshed as a side effect (§2.5)."""
        self.geom.check_row(row)
        self._pressure.pop((socket, bank, row), None)
        return self._add_pressure(socket, bank, row, 1.0, when)

    def on_row_open_time(
        self, socket: int, bank: int, row: int, seconds: float, when: float
    ) -> list[BitFlip]:
        """RowPress: the row stayed open *seconds* beyond the nominal
        restore time."""
        if seconds < 0:
            raise DramError(f"open time must be non-negative, got {seconds}")
        amount = seconds * self.profile.effective_rowpress_rate
        if amount == 0.0:
            return []
        return self._add_pressure(socket, bank, row, amount, when)

    def on_refresh_row(self, socket: int, bank: int, row: int) -> None:
        """A refresh (periodic or TRR) drained this row's charge."""
        self._pressure.pop((socket, bank, row), None)

    def on_refresh_all(self) -> None:
        """Full refresh window elapsed: every row refreshed."""
        self._pressure.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def pressure_on(self, socket: int, bank: int, row: int) -> float:
        return self._pressure.get((socket, bank, row), 0.0)

    def flips_in_rows(self, socket: int, bank: int, rows: range) -> list[BitFlip]:
        return [
            f
            for f in self.flips
            if f.socket == socket and f.bank == bank and f.row in rows
        ]
