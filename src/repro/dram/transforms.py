"""Media-to-internal row address transforms (paper §6, Table 1).

A memory controller addresses DRAM by *media* address, but server DIMMs
may transform the row bits internally.  Siloz must ensure its subarray
groups survive these transforms.  Three sources are modelled:

**DDR4 mirroring** (easier signal routing): on *odd ranks*, the bit pairs
<b3,b4>, <b5,b6> and <b7,b8> are each swapped.

**DDR4 inversion** (signal integrity): each 8 KiB row is split into an
A-side and a B-side half-row (§2.3); on the *B side*, row-address bits
b3..b10 are inverted.  (The registering clock driver inverts a wider bus
range; only bits inside the paper's considered row-bit range [b0, b10]
matter for subarray sizes up to 2048 rows.)

**Vendor scrambling**: some vendors XOR b1 and b2 with b3, reordering
rows inside each aligned 8-row block without affecting its contiguity.

**Row repairs**: manufacturing defects remap individual rows to spare
rows at vendor-chosen internal addresses; inter-subarray repairs would
silently break isolation, so Siloz offlines the affected pages (§6).

The analysis helpers at the bottom reproduce the paper's overhead
arithmetic: power-of-2 subarray sizes are unaffected; other sizes cost
~1.56 % (512 rows) down to ~0.39 % (2048 rows) of DRAM, whether handled
by removing boundary rows or by guarded "artificial" subarray groups; and
ZebRAM-style whole-memory guard rows cost 50-80 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.dram.geometry import DRAMGeometry
from repro.errors import DramError
from repro.units import is_power_of_two

#: Bit pairs swapped by DDR4 address mirroring on odd ranks.
MIRROR_PAIRS: tuple[tuple[int, int], ...] = ((3, 4), (5, 6), (7, 8))

#: Row-address bits inverted on B-side half-rows (within [b0, b10]).
INVERT_BITS: tuple[int, ...] = (3, 4, 5, 6, 7, 8, 9, 10)

#: Vendor scrambling: these bits are XOR-ed with bit SCRAMBLE_SOURCE.
SCRAMBLE_TARGETS: tuple[int, ...] = (1, 2)
SCRAMBLE_SOURCE: int = 3


class Side(Enum):
    """The two half-rows of a DDR4 rank (paper §2.3)."""

    A = "A"
    B = "B"


def _swap_bits(value: int, i: int, j: int) -> int:
    bi = (value >> i) & 1
    bj = (value >> j) & 1
    if bi == bj:
        return value
    return value ^ ((1 << i) | (1 << j))


def mirror_row(row: int, rank: int) -> int:
    """Apply DDR4 address mirroring: odd ranks swap the MIRROR_PAIRS."""
    if rank % 2 == 0:
        return row
    for i, j in MIRROR_PAIRS:
        row = _swap_bits(row, i, j)
    return row


def invert_row(row: int, side: Side) -> int:
    """Apply DDR4 address inversion: B-side half-rows invert INVERT_BITS."""
    if side is Side.A:
        return row
    mask = 0
    for bit in INVERT_BITS:
        mask |= 1 << bit
    return row ^ mask


def scramble_row(row: int) -> int:
    """Apply vendor row scrambling: b1 ^= b3, b2 ^= b3.

    Self-inverse, and only permutes rows within aligned 8-row blocks.
    """
    src = (row >> SCRAMBLE_SOURCE) & 1
    if not src:
        return row
    mask = 0
    for bit in SCRAMBLE_TARGETS:
        mask |= 1 << bit
    return row ^ mask


@dataclass(frozen=True)
class TransformConfig:
    """Which internal transforms a DIMM applies.

    ``ddr5`` models DDR5's rule that mirroring/inversion must be undone
    at each device (§8.2), i.e. they become no-ops.
    """

    mirroring: bool = True
    inversion: bool = True
    scrambling: bool = False
    ddr5: bool = False

    def internal_row(self, row: int, rank: int, side: Side) -> int:
        """Media row -> DIMM-internal row for the given rank/side."""
        if row < 0:
            raise DramError(f"row must be non-negative, got {row}")
        out = row
        if not self.ddr5:
            if self.mirroring:
                out = mirror_row(out, rank)
            if self.inversion:
                out = invert_row(out, side)
        if self.scrambling:
            out = scramble_row(out)
        return out


def transform_table(max_bit: int = 10) -> list[dict[str, object]]:
    """Reproduce Table 1: per (rank parity, side), what each row-address
    bit b0..b_max_bit becomes.  Entries are strings like ``'b4'`` or
    ``'!b7'`` (``!`` = boolean NOT, as in the paper's caption)."""
    rows: list[dict[str, object]] = []
    for rank, side in ((0, Side.A), (0, Side.B), (1, Side.A), (1, Side.B)):
        entry: dict[str, object] = {
            "rank": "even" if rank % 2 == 0 else "odd",
            "side": side.value,
        }
        for bit in range(max_bit + 1):
            source = bit
            if rank % 2 == 1:
                for i, j in MIRROR_PAIRS:
                    if bit == i:
                        source = j
                    elif bit == j:
                        source = i
            inverted = side is Side.B and bit in INVERT_BITS
            entry[f"b{bit}"] = f"{'!' if inverted else ''}b{source}"
        rows.append(entry)
    return rows


# ----------------------------------------------------------------------
# Row repairs (§6)
# ----------------------------------------------------------------------


@dataclass
class RepairMap:
    """Vendor row repairs for one bank: media row -> internal spare row.

    The memory controller keeps using the media address; only the DIMM
    knows the remap, so Siloz treats inter-subarray repairs as holes to
    offline rather than something it can re-route.
    """

    geom: DRAMGeometry
    remaps: dict[int, int] = field(default_factory=dict)

    def add(self, defective_row: int, spare_row: int) -> None:
        self.geom.check_row(defective_row)
        self.geom.check_row(spare_row)
        if defective_row in self.remaps:
            raise DramError(f"row {defective_row} already repaired")
        self.remaps[defective_row] = spare_row

    def resolve(self, row: int) -> int:
        """Internal row actually holding data addressed at media *row*."""
        return self.remaps.get(row, row)

    def inter_subarray_repairs(self) -> list[tuple[int, int]]:
        """(defective, spare) pairs whose spare lives in a different
        subarray — the isolation-threatening subset."""
        return [
            (bad, spare)
            for bad, spare in sorted(self.remaps.items())
            if not self.geom.same_subarray(bad, spare)
        ]

    def rows_to_offline(self) -> list[int]:
        """Media rows Siloz must remove from allocatable memory to keep
        subarray-group isolation sound despite repairs."""
        return [bad for bad, _ in self.inter_subarray_repairs()]


# ----------------------------------------------------------------------
# Isolation analysis (§6 "Key Takeaways" arithmetic)
# ----------------------------------------------------------------------


def subarray_isolation_preserved(
    rows_per_subarray: int, config: TransformConfig
) -> bool:
    """Do the configured transforms keep every media subarray inside a
    single internal subarray (for all rank/side combinations)?

    Checked constructively over one subarray-size-aligned period; the
    paper's claim is that power-of-2 sizes in [512, 2048] always pass.
    """
    period = rows_per_subarray * 2  # at least two subarrays to cross-check
    sides = (Side.A, Side.B)
    for rank in (0, 1):
        for side in sides:
            for subarray_start in range(0, period, rows_per_subarray):
                internal_subarrays = {
                    config.internal_row(r, rank, side) // rows_per_subarray
                    for r in range(subarray_start, subarray_start + rows_per_subarray)
                }
                if len(internal_subarrays) != 1:
                    return False
    return True


def scrambling_offline_fraction(rows_per_subarray: int) -> float:
    """Fraction of DRAM removed to tolerate vendor scrambling when the
    subarray size is not a multiple of 8: one 8-row block per boundary
    (§6).  Zero for multiple-of-8 sizes."""
    if rows_per_subarray % 8 == 0:
        return 0.0
    return 8 / rows_per_subarray


#: Guard rows needed per artificial-subarray boundary on modern DIMMs.
ARTIFICIAL_GUARD_ROWS: int = 4


def artificial_group_reservation(rows_per_subarray: int) -> tuple[int, float]:
    """(rows reserved per artificial subarray, fraction of DRAM) when a
    non-power-of-2 subarray size forces artificial groups (§6).

    Sizes are rounded up to the next power of two; n=4 guard rows protect
    each artificial boundary, doubled to account for the mirrored/
    inverted placements on other ranks and sides — 8 rows per artificial
    subarray, i.e. ~1.56 % at 512 rows down to ~0.39 % at 2048.
    """
    size = rows_per_subarray
    if not is_power_of_two(size):
        size = 1 << (size - 1).bit_length()
    reserved = 2 * ARTIFICIAL_GUARD_ROWS
    return reserved, reserved / size


def zebram_overhead(guard_rows_per_normal_row: int) -> float:
    """DRAM overhead of ZebRAM-style whole-memory guard rows (§3):
    g guards per normal row waste g/(g+1) of memory — 50 % at g=1,
    80 % at g=4."""
    g = guard_rows_per_normal_row
    if g < 0:
        raise DramError(f"guard rows must be non-negative, got {g}")
    return g / (g + 1)
