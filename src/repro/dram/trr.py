"""Target Row Refresh (TRR) model (paper §2.5).

Deployed in-DRAM TRR watches activations and refreshes the neighbours of
suspected aggressors ahead of schedule.  Real implementations are
sampler-based with a small number of tracking slots, which is exactly
what Blacksmith exploits: patterns with more aggressors than slots and
carefully-phased decoys evade the sampler.

The model here reproduces those dynamics:

- Per bank, the sampler has ``slots`` Misra-Gries-style counters.
- Only a fraction of ACTs are *observed*: the sampler always observes
  the first ``sampled_acts`` activations after each REF tick (real TRRs
  concentrate sampling near refreshes — Blacksmith's insight), plus each
  other ACT with probability ``sample_prob``.
- On each REF tick the sampler refreshes the neighbours of its top
  ``refreshes_per_ref`` candidates and clears them.

A uniform double-sided hammer gets caught reliably; a many-sided pattern
with decoy rows placed right after REF slips through — matching §7.1,
where Blacksmith flips bits *despite* TRR on every DIMM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import obs
from repro.dram.geometry import DRAMGeometry


@dataclass(frozen=True)
class TrrConfig:
    slots: int = 4
    sampled_acts_after_ref: int = 2
    #: Probability of observing any other ACT.  Real samplers are sparse
    #: — this sparseness is the blind spot Blacksmith-style REF-synced
    #: patterns exploit.
    sample_prob: float = 0.002
    refreshes_per_ref: int = 2
    neighbor_distance: int = 2


class TrrSampler:
    """Sampler state for a single bank."""

    def __init__(self, config: TrrConfig, rng: random.Random):
        self.config = config
        self._rng = rng
        self._counters: dict[int, int] = {}
        self._acts_since_ref = 0

    def observe_maybe(self, row: int) -> bool:
        """Feed one ACT to the sampler (observed per the config's rules).
        Returns whether the ACT was observed (trace instrumentation)."""
        cfg = self.config
        self._acts_since_ref += 1
        observed = (
            self._acts_since_ref <= cfg.sampled_acts_after_ref
            or self._rng.random() < cfg.sample_prob
        )
        if not observed:
            return False
        if row in self._counters:
            self._counters[row] += 1
        elif len(self._counters) < cfg.slots:
            self._counters[row] = 1
        else:
            # Misra-Gries decrement: heavy hitters survive, noise decays.
            for tracked in list(self._counters):
                self._counters[tracked] -= 1
                if self._counters[tracked] <= 0:
                    del self._counters[tracked]
        return True

    def take_targets(self) -> list[int]:
        """Rows whose neighbours get refreshed at this REF tick."""
        self._acts_since_ref = 0
        if not self._counters:
            return []
        top = sorted(self._counters, key=self._counters.get, reverse=True)
        targets = top[: self.config.refreshes_per_ref]
        for row in targets:
            del self._counters[row]
        return targets


class Trr:
    """Whole-module TRR: one sampler per (socket, flat bank)."""

    def __init__(
        self,
        geom: DRAMGeometry,
        config: TrrConfig | None = None,
        *,
        seed: int = 0,
    ):
        self.geom = geom
        self.config = config or TrrConfig()
        self._rng = random.Random(seed)
        self._samplers: dict[tuple[int, int], TrrSampler] = {}
        self.neighbor_refreshes = 0

    def _sampler(self, socket: int, bank: int) -> TrrSampler:
        key = (socket, bank)
        got = self._samplers.get(key)
        if got is None:
            got = TrrSampler(self.config, self._rng)
            self._samplers[key] = got
        return got

    def on_activate(
        self, socket: int, bank: int, row: int, *, when: float | None = None
    ) -> None:
        """Feed one ACT on (socket, bank, row) to that bank's sampler;
        emits a trace event when the sampler observed it."""
        observed = self._sampler(socket, bank).observe_maybe(row)
        if obs.ENABLED and observed:
            obs.emit(
                obs.TrrSampleEvent(socket=socket, bank=bank, row=row, when=when)
            )

    def on_ref(
        self, socket: int, bank: int, *, when: float | None = None
    ) -> list[int]:
        """REF tick for one bank; returns victim rows to refresh (the
        neighbours of sampled aggressors), clipped to the bank."""
        targets = self._sampler(socket, bank).take_targets()
        victims: list[int] = []
        d = self.config.neighbor_distance
        for row in targets:
            for victim in range(row - d, row + d + 1):
                if victim != row and 0 <= victim < self.geom.rows_per_bank:
                    victims.append(victim)
        self.neighbor_refreshes += len(victims)
        if obs.ENABLED:
            obs.emit(
                obs.TrrRefEvent(
                    socket=socket,
                    bank=bank,
                    targets=len(targets),
                    victims=len(victims),
                    when=when,
                )
            )
        return victims
