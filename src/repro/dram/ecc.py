"""Server ECC model (paper §2.5, §7.1).

Server DIMMs use SEC-DED codes per 64-bit word: a single flipped bit per
word is corrected (and logged — the signal Copy-on-Flip keys off, and the
side channel §3 warns about), two flipped bits are detected but
uncorrectable (machine-check material), three or more may escape
silently.  A patrol scrubber walks memory in the background so flips are
found even without demand reads — the paper leaves the system idle for
24 h so scrubbing catches stragglers (§7.1).

The model works on *flip sets* rather than codewords: the DRAM module
tracks exactly which bits differ from written data, so ECC's job reduces
to counting flipped bits per aligned 64-bit word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro import obs
from repro.errors import DramError

#: Bits per ECC codeword (data portion).
WORD_BITS: int = 64

#: Flip sets at least this large take the vectorized word-count path
#: (bulk reads: migration snapshots, remediation scans, patrol scrub).
#: Below it the dict fold wins on constant factors.
VECTOR_BITS_CUTOFF: int = 32

_np = None  # lazy numpy handle; False once an import failed


def _numpy():
    global _np
    if _np is None:
        try:
            import numpy

            _np = numpy
        except ImportError:  # pragma: no cover - numpy baked into CI
            _np = False
    return _np if _np is not False else None


def _words_and_counts(flipped_bit_indexes: set[int]) -> list[tuple[int, int]]:
    """``(word, flip count)`` pairs in ascending word order.

    The numpy path (``np.unique`` on ``bit // WORD_BITS``) returns
    exactly what the dict fold plus sort returns — both are exercised
    by the ECC tests on the same flip sets."""
    np = _numpy()
    n = len(flipped_bit_indexes)
    if np is not None and n >= VECTOR_BITS_CUTOFF:
        arr = np.fromiter(flipped_bit_indexes, dtype=np.int64, count=n)
        words, counts = np.unique(arr // WORD_BITS, return_counts=True)
        return list(zip(words.tolist(), counts.tolist()))
    by_word: dict[int, int] = {}
    for bit in flipped_bit_indexes:
        by_word[bit // WORD_BITS] = by_word.get(bit // WORD_BITS, 0) + 1
    return sorted(by_word.items())


class EccOutcome(Enum):
    """SEC-DED verdict for one 64-bit word."""
    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"
    SILENT = "silent"  # >= 3 flips: miscorrection / undetected


@dataclass
class EccEvent:
    """One ECC observation on a word (socket, bank, row, word index)."""

    socket: int
    bank: int
    row: int
    word: int
    outcome: EccOutcome
    flipped_bits: int
    when: float


@dataclass
class EccStats:
    corrected: int = 0
    uncorrectable: int = 0
    silent: int = 0
    events: list[EccEvent] = field(default_factory=list)

    def record(self, event: EccEvent) -> None:
        """Fold one event into the counters and the event log."""
        if event.outcome is EccOutcome.CORRECTED:
            self.corrected += 1
        elif event.outcome is EccOutcome.UNCORRECTABLE:
            self.uncorrectable += 1
        elif event.outcome is EccOutcome.SILENT:
            self.silent += 1
        self.events.append(event)


def classify_word(flipped_bits: int) -> EccOutcome:
    """SEC-DED outcome for a word with *flipped_bits* flipped bits."""
    if flipped_bits < 0:
        raise DramError(f"flipped_bits must be non-negative, got {flipped_bits}")
    if flipped_bits == 0:
        return EccOutcome.CLEAN
    if flipped_bits == 1:
        return EccOutcome.CORRECTED
    if flipped_bits == 2:
        return EccOutcome.UNCORRECTABLE
    return EccOutcome.SILENT


class EccEngine:
    """Counts flips per 64-bit word and classifies SEC-DED outcomes.

    Listeners registered via :meth:`subscribe` receive every non-clean
    :class:`EccEvent` as it is classified — the EDAC/mcelog firehose the
    runtime health monitor (:mod:`repro.hv.health`) consumes."""

    def __init__(self) -> None:
        self.stats = EccStats()
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Register a callable invoked with each new :class:`EccEvent`
        (corrected and uncorrectable alike) — the correctable-error
        reporting channel a kernel gets from EDAC."""
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def check_row_bits(
        self,
        socket: int,
        bank: int,
        row: int,
        flipped_bit_indexes: set[int],
        when: float,
    ) -> list[EccEvent]:
        """Classify every word of a row given its flipped-bit set.

        Returns events for non-clean words only (clean words are the
        overwhelming majority and not interesting to log)."""
        events = []
        for word, count in _words_and_counts(flipped_bit_indexes):
            outcome = classify_word(count)
            event = EccEvent(
                socket=socket,
                bank=bank,
                row=row,
                word=word,
                outcome=outcome,
                flipped_bits=count,
                when=when,
            )
            self.stats.record(event)
            events.append(event)
            if obs.ENABLED:
                obs.emit(
                    obs.EccWordEvent(
                        socket=socket,
                        bank=bank,
                        row=row,
                        word=word,
                        outcome=outcome.value,
                        flipped_bits=count,
                        when=when,
                    )
                )
            for listener in self._listeners:
                listener(event)
        return events

    def correctable_bits(self, flipped_bit_indexes: set[int]) -> set[int]:
        """The subset of flipped bits that SEC-DED would repair (exactly
        one flip in their word) — what a patrol scrub can heal."""
        np = _numpy()
        n = len(flipped_bit_indexes)
        if np is not None and n >= VECTOR_BITS_CUTOFF:
            arr = np.sort(np.fromiter(flipped_bit_indexes, dtype=np.int64, count=n))
            _words, first, counts = np.unique(
                arr // WORD_BITS, return_index=True, return_counts=True
            )
            return set(arr[first[counts == 1]].tolist())
        by_word: dict[int, list[int]] = {}
        for bit in flipped_bit_indexes:
            by_word.setdefault(bit // WORD_BITS, []).append(bit)
        healable: set[int] = set()
        for bits in by_word.values():
            if len(bits) == 1:
                healable.add(bits[0])
        return healable
