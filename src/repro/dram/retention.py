"""Refresh scheduling and data retention (paper §2.3).

DDR4 guarantees every cell is refreshed within 64 ms: the controller
issues a REF command per rank every tREFI (7.8 us), each covering a
slice of rows.  Two consequences matter for Siloz's world:

- the 64 ms window bounds how long disturbance pressure can accumulate
  (Rowhammer thresholds are per-window quantities), and
- *postponing* refreshes (a real controller optimisation, allowed up to
  8 tREFI by the standard) stretches the window, lowering the effective
  threshold and risking retention failures in weak cells.

:class:`RefreshScheduler` models the per-rank REF stream with optional
postponement; :class:`RetentionModel` tracks weak cells whose data
decays if their refresh is late.  Together they let tests quantify the
window-stretch interaction that motivates conservative thresholds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dram.geometry import DRAMGeometry
from repro.errors import DramError
from repro.units import MS, US

#: DDR4 average refresh interval per rank.
TREFI_S: float = 7.8 * US
#: Maximum REFs the standard allows a controller to postpone.
MAX_POSTPONED: int = 8
#: REF commands needed to cover a full device (8192 per 64 ms window).
REFS_PER_WINDOW: int = 8192


@dataclass
class RefreshScheduler:
    """Per-rank REF stream: which row slice is refreshed when.

    Rows are covered round-robin in ``REFS_PER_WINDOW`` slices, so the
    gap between consecutive refreshes of one row is
    ``REFS_PER_WINDOW * TREFI_S`` = 64 ms, plus any postponement debt.
    """

    geom: DRAMGeometry
    postpone_budget: int = 0  # REFs the controller may delay
    clock: float = 0.0
    next_ref_due: float = field(default=TREFI_S)
    ref_index: int = 0
    postponed: int = 0
    refs_issued: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.postpone_budget <= MAX_POSTPONED:
            raise DramError(
                f"postpone budget must be within [0, {MAX_POSTPONED}]"
            )

    def rows_in_slice(self, ref_index: int) -> range:
        """Bank-local rows covered by the ref_index-th REF of a window."""
        slice_rows = max(1, self.geom.rows_per_bank // REFS_PER_WINDOW)
        start = (ref_index % REFS_PER_WINDOW) * slice_rows % self.geom.rows_per_bank
        return range(start, min(start + slice_rows, self.geom.rows_per_bank))

    def advance(self, seconds: float) -> list[range]:
        """Let time pass; returns the row slices refreshed in order.

        A busy controller postpones up to its budget, then must catch up
        (the standard's debt rule)."""
        if seconds < 0:
            raise DramError("cannot advance backwards")
        self.clock += seconds
        refreshed: list[range] = []
        while self.next_ref_due <= self.clock:
            if self.postponed < self.postpone_budget:
                # Model a controller that defers while it can.
                self.postponed += 1
                self.next_ref_due += TREFI_S
                continue
            # Issue this REF and repay one unit of debt per issue.
            refreshed.append(self.rows_in_slice(self.ref_index))
            self.ref_index += 1
            self.refs_issued += 1
            if self.postponed > 0:
                self.postponed -= 1
            else:
                self.next_ref_due += TREFI_S
        return refreshed

    def window_seconds(self) -> float:
        """Effective worst-case refresh window for one row, including
        postponement stretch."""
        return REFS_PER_WINDOW * TREFI_S + self.postpone_budget * TREFI_S


@dataclass(frozen=True)
class WeakCell:
    """A cell whose retention time is below the nominal window."""

    socket: int
    bank: int
    row: int
    bit: int
    retention_s: float


class RetentionModel:
    """Tracks weak cells and reports retention failures.

    ``check(row_gap_s)`` answers: given the worst-case gap between two
    refreshes of a row, which weak cells lose their data?  Real fleets
    profile these cells and either scrub or offline them — the same
    remediation path Siloz reuses for isolation-violating rows (§6).
    """

    def __init__(self, geom: DRAMGeometry, *, seed: int = 0, weak_ppm: float = 1.0):
        if weak_ppm < 0:
            raise DramError("weak_ppm must be non-negative")
        self.geom = geom
        self._rng = random.Random(seed)
        self.cells: list[WeakCell] = []
        total_bits = geom.rows_per_bank * geom.row_bytes * 8
        count = max(1, int(total_bits * weak_ppm / 1e6)) if weak_ppm else 0
        for _ in range(count):
            self.cells.append(
                WeakCell(
                    socket=0,
                    bank=self._rng.randrange(geom.banks_per_socket),
                    row=self._rng.randrange(geom.rows_per_bank),
                    bit=self._rng.randrange(geom.row_bytes * 8),
                    # Retention between 0.8x and 3x the nominal window.
                    retention_s=64 * MS * self._rng.uniform(0.8, 3.0),
                )
            )

    def failures(self, row_gap_s: float) -> list[WeakCell]:
        """Weak cells that decay if rows go *row_gap_s* unrefreshed."""
        if row_gap_s < 0:
            raise DramError("gap must be non-negative")
        return [c for c in self.cells if c.retention_s < row_gap_s]

    def failure_rate(self, row_gap_s: float) -> float:
        if not self.cells:
            return 0.0
        return len(self.failures(row_gap_s)) / len(self.cells)
