"""DDR4 memory-controller timing model (paper §2.4).

This package turns memory-access traces into time: per-bank row buffers,
bank-level parallelism, channel bus occupancy, refresh overhead, and
NUMA-distance penalties.  It is the measurement substrate behind the
paper's performance results (Figures 4-7) and the bank-parallelism
ablation that motivates subarray *groups* over single-subarray placement
(§4.1).
"""

from repro.memctrl.timings import DDR4Timings, quantize_ns
from repro.memctrl.controller import AccessKind, MemoryAccess, MemoryController, TraceResult
from repro.memctrl.frfcfs import FrFcfsController
from repro.memctrl.interleave import RestrictedInterleaveMapping

__all__ = [
    "AccessKind",
    "DDR4Timings",
    "FrFcfsController",
    "MemoryAccess",
    "MemoryController",
    "RestrictedInterleaveMapping",
    "TraceResult",
    "quantize_ns",
]
