"""Per-bank and per-channel scheduling state (paper §2.4).

The controller keeps one :class:`BankState` per bank (open row + busy
horizon) and one :class:`ChannelState` per channel (data-bus occupancy +
refresh bookkeeping).  Accesses are issued in trace order — an FR-FCFS
scheduler would reorder within a window, but for the throughput/latency
aggregates the paper reports, in-order issue against accurate bank/bus
occupancy reproduces the relevant contrasts (row hits vs conflicts,
parallel vs serialized banks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memctrl.timings import DDR4Timings


@dataclass
class BankState:
    """Row buffer and availability of a single bank."""

    open_row: int | None = None
    ready_at: float = 0.0  # ns; earliest next command issue
    hits: int = 0
    misses: int = 0

    def access(self, row: int, start: float, timings: DDR4Timings) -> tuple[float, bool]:
        """Issue an access to *row* no earlier than *start*.

        Returns (data-ready time, row-buffer hit?).  The bank serializes:
        the command cannot begin before ``ready_at``.
        """
        begin = max(start, self.ready_at)
        hit = self.open_row == row
        if hit:
            self.hits += 1
            done = begin + timings.hit_latency
            self.ready_at = begin + timings.t_burst
        else:
            self.misses += 1
            if self.open_row is None:
                # Bank idle/precharged: activate without a precharge.
                done = begin + timings.t_rcd + timings.t_cl + timings.t_burst
            else:
                done = begin + timings.miss_latency
            self.open_row = row
            # Respect tRAS before the row could be closed again.
            self.ready_at = begin + max(
                timings.t_rcd + timings.t_burst, timings.t_ras - timings.t_rp
            )
        return done, hit


@dataclass
class ChannelState:
    """Data bus occupancy and refresh schedule for one channel."""

    timings: DDR4Timings
    bus_free_at: float = 0.0
    next_refresh_at: float = field(default=0.0)
    refreshes: int = 0

    def claim_bus(self, start: float) -> float:
        """Reserve the data bus for one burst beginning no earlier than
        *start*; returns the actual burst start time."""
        begin = max(start, self.bus_free_at)
        self.bus_free_at = begin + self.timings.t_burst
        return begin

    def refresh_delay(self, now: float) -> float:
        """If a refresh is due at *now*, charge tRFC and schedule the
        next one; returns the stall added to the current access."""
        if now < self.next_refresh_at:
            return 0.0
        self.refreshes += 1
        self.next_refresh_at = max(self.next_refresh_at, now) + self.timings.t_refi
        return self.timings.t_rfc
