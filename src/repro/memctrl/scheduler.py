"""Per-bank and per-channel scheduling state (paper §2.4).

The scalar controller keeps one :class:`BankState` per bank (open row +
busy horizon) and one :class:`ChannelState` per channel (data-bus
occupancy + refresh bookkeeping).  Accesses are issued in trace order —
the FR-FCFS subclass reorders within a window — and for the
throughput/latency aggregates the paper reports, in-order issue against
accurate bank/bus occupancy reproduces the relevant contrasts (row hits
vs conflicts, parallel vs serialized banks).

Two properties make these recurrences vectorizable with *bit-identical*
results (:mod:`repro.memctrl.pipeline`):

- every time value is dyadic (a multiple of the
  :data:`~repro.memctrl.timings.TICKS_PER_NS` grid), so float64
  arithmetic on them is exact and the max-plus chains below have
  closed forms (``cumsum`` + running max) equal to the scalar fold;
- refresh is a *fixed-grid blackout*: the rank is unavailable during
  ``[k*tREFI, k*tREFI + tRFC)`` for every integer ``k``, making the
  refresh adjustment a pure function of the access time instead of
  traffic-dependent mutable state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.memctrl.timings import DDR4Timings


@dataclass
class BankState:
    """Row buffer and availability of a single bank."""

    open_row: int | None = None
    ready_at: float = 0.0  # ns; earliest next command issue
    hits: int = 0
    misses: int = 0

    def access(self, row: int, start: float, timings: DDR4Timings) -> tuple[float, bool]:
        """Issue an access to *row* no earlier than *start*.

        Returns (data-ready time, row-buffer hit?).  The bank serializes:
        the command cannot begin before ``ready_at``.
        """
        begin = max(start, self.ready_at)
        hit = self.open_row == row
        if hit:
            self.hits += 1
            done = begin + timings.hit_latency
            self.ready_at = begin + timings.t_burst
        else:
            self.misses += 1
            if self.open_row is None:
                # Bank idle/precharged: activate without a precharge.
                done = begin + timings.idle_latency
            else:
                done = begin + timings.miss_latency
            self.open_row = row
            # Respect tRAS before the row could be closed again.
            self.ready_at = begin + timings.bank_hold
        return done, hit


@dataclass
class ChannelState:
    """Data bus occupancy and refresh schedule for one channel."""

    timings: DDR4Timings
    bus_free_at: float = 0.0
    #: Refresh-blackout indices that stalled at least one access.
    stalled_windows: set[int] = field(default_factory=set)

    def claim_bus(self, start: float) -> float:
        """Reserve the data bus for one burst beginning no earlier than
        *start*; returns the actual burst start time."""
        begin = max(start, self.bus_free_at)
        self.bus_free_at = begin + self.timings.t_burst
        return begin

    def refresh_adjust(self, start: float) -> float:
        """Push *start* out of the refresh blackout it falls in, if any.

        The rank refreshes on a fixed grid: window ``k`` blocks
        ``[k*tREFI, k*tREFI + tRFC)``.  An access landing inside a
        window is delayed to its end; one landing outside is untouched.
        Pure in time (counter aside), so estimate passes can share it.
        """
        t = self.timings
        k = math.floor(start / t.t_refi)
        if start - k * t.t_refi < t.t_rfc:
            self.stalled_windows.add(k)
            return k * t.t_refi + t.t_rfc
        return start

    @property
    def refreshes(self) -> int:
        """Distinct refresh windows that delayed traffic on this channel."""
        return len(self.stalled_windows)
