"""FR-FCFS scheduling (paper §2.4's scheduler family).

Real memory controllers reorder requests: *first-ready* (row-buffer
hits) before *first-come first-served* (oldest first).  The base
:class:`~repro.memctrl.controller.MemoryController` issues strictly in
order, which is sufficient for the paper's relative comparisons; this
subclass adds a reorder window so studies of scheduler interaction
(e.g. how much locality the scheduler recovers from interleaved
streams) are possible.  The Siloz-relevant invariant is unchanged:
nothing in scheduling depends on subarray indices.

The reorder rule is a *static window permutation*: within each
consecutive block of ``window`` requests (in arrival order), requests
to the same (bank, row) issue back-to-back at the position where the
group's first request arrived; groups keep first-come order, blocks do
not interleave.  The rule is timing-independent — a pure function of
the decoded trace — which is exactly what lets the vectorized backend
compute the same permutation with a couple of ``lexsort`` calls
(:func:`repro.memctrl.pipeline.frfcfs_permutation`) and stay
bit-identical to this scalar loop.  Latency is measured from arrival
(queueing included): the FR-FCFS read queue is fed by a request
firehose, so there is no per-core MLP throttle here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.backend import SimBackend
from repro.errors import MemCtrlError
from repro.memctrl.controller import (
    AccessKind,
    DecodesToMedia,
    MemoryAccess,
    MemoryController,
    TraceResult,
)
from repro.memctrl.scheduler import ChannelState
from repro.memctrl.timings import DDR4Timings, quantize_ns

if TYPE_CHECKING:  # pragma: no cover - typing-only import (numpy layer)
    from repro.memctrl.pipeline import AccessBatch


class FrFcfsController(MemoryController):
    """MemoryController with a first-ready / first-come scheduler.

    ``window`` bounds how far ahead of the oldest request the scheduler
    may look (the read-queue depth).
    """

    def __init__(
        self,
        mapping: DecodesToMedia,
        timings: DDR4Timings | None = None,
        *,
        window: int = 16,
        max_outstanding: int = 10,
        backend: SimBackend | str = SimBackend.BATCHED,
    ):
        super().__init__(
            mapping, timings, max_outstanding=max_outstanding, backend=backend
        )
        if window < 1:
            raise MemCtrlError("window must be >= 1")
        self.window = window

    def _issue_order(
        self, decoded: list[tuple[int, int, int, int]]
    ) -> list[int]:
        """The static window permutation (see module docstring)."""
        order: list[int] = []
        n = len(decoded)
        for base in range(0, n, self.window):
            groups: dict[tuple[tuple[int, int], int], list[int]] = {}
            for i in range(base, min(base + self.window, n)):
                socket, socket_bank, _channel, row = decoded[i]
                groups.setdefault(((socket, socket_bank), row), []).append(i)
            for members in groups.values():
                order.extend(members)
        return order

    def _run_scalar(self, accesses: list[MemoryAccess]) -> TraceResult:
        t = self.timings
        decoded = self._decode_all(accesses)
        arrivals: list[float] = []
        arrival = 0.0
        for access in accesses:
            arrival += quantize_ns(access.cpu_gap_ns)
            arrivals.append(arrival)

        prev_row: dict[tuple[int, int], int] = {}
        chans: dict[tuple[int, int], ChannelState] = {}
        banks_free: dict[tuple[int, int], float] = {}
        result = TraceResult()
        per_tag = result.per_tag
        now = 0.0
        for i in self._issue_order(decoded):
            access = accesses[i]
            socket, socket_bank, channel, row = decoded[i]
            bank_key = (socket, socket_bank)
            chan_key = (socket, channel)
            remote = socket != access.home_socket
            penalty = t.t_remote if remote else 0.0
            hit, latency, hold = self._classify(prev_row, bank_key, row)

            now = max(now, arrivals[i])
            chan = chans.get(chan_key)
            if chan is None:
                chan = chans[chan_key] = ChannelState(t)
            bus = chan.claim_bus(chan.refresh_adjust(now + penalty))
            begin = max(bus, banks_free.get(bank_key, 0.0))
            banks_free[bank_key] = begin + hold
            done = begin + latency

            result.accesses += 1
            if access.kind is AccessKind.READ:
                result.reads += 1
            else:
                result.writes += 1
            if hit:
                result.row_hits += 1
            else:
                result.row_misses += 1
            if remote:
                result.remote_accesses += 1
            result.total_latency_ns += done - arrivals[i]
            count, total = per_tag.get(access.tag, (0, 0.0))
            per_tag[access.tag] = (count + 1, total + (done - arrivals[i]))
            result.bytes_transferred += self.LINE_BYTES
            if done > result.total_time_ns:
                result.total_time_ns = done

        result.banks_touched = len(prev_row)
        result.refreshes = sum(c.refreshes for c in chans.values())
        return result

    def _run_vectorized(self, batch: "AccessBatch") -> TraceResult:
        from repro.memctrl import pipeline

        return pipeline.run_pipeline(self, batch, window=self.window)
