"""FR-FCFS scheduling (paper §2.4's scheduler family).

Real memory controllers reorder requests: *first-ready* (row-buffer
hits) before *first-come first-served* (oldest first).  The base
:class:`~repro.memctrl.controller.MemoryController` issues strictly in
order, which is sufficient for the paper's relative comparisons; this
subclass adds a reorder window so studies of scheduler interaction
(e.g. how much locality the scheduler recovers from interleaved
streams) are possible.  The Siloz-relevant invariant is unchanged:
nothing in scheduling depends on subarray indices.
"""

from __future__ import annotations

from collections import deque

from repro.errors import MemCtrlError
from repro.memctrl.controller import (
    AccessKind,
    MemoryController,
    TraceResult,
)
from repro.memctrl.scheduler import BankState, ChannelState


class FrFcfsController(MemoryController):
    """MemoryController with a first-ready / first-come scheduler.

    ``window`` bounds how far ahead of the oldest request the scheduler
    may look (the read-queue depth).
    """

    def __init__(self, mapping, timings=None, *, window: int = 16, max_outstanding: int = 10):
        super().__init__(mapping, timings, max_outstanding=max_outstanding)
        if window < 1:
            raise MemCtrlError("window must be >= 1")
        self.window = window

    def run_trace(self, trace) -> TraceResult:
        """Replay *trace* with first-ready-first reordering in the window."""
        t = self.timings
        banks: dict[tuple[int, int], BankState] = {}
        channels: dict[tuple[int, int], ChannelState] = {}
        result = TraceResult()
        now = 0.0

        # Pre-decode into a pending queue of
        # (arrival, socket, bank_key, channel, row, access); _decode_all
        # vectorizes long traces and falls back to the flat LRU decoder
        # for short ones (repeated lines are the common case in the perf
        # traces).
        accesses = trace if isinstance(trace, list) else list(trace)
        pending: deque = deque()
        arrival = 0.0
        for access, (socket, socket_bank, channel, row) in zip(
            accesses, self._decode_all(accesses)
        ):
            arrival += access.cpu_gap_ns
            pending.append(
                (arrival, socket, (socket, socket_bank), channel, row, access)
            )
        if not pending:
            raise MemCtrlError("empty trace")

        def issue(entry) -> None:
            nonlocal now
            arrival_ns, socket, bank_key, channel, row, access = entry
            chan_key = (socket, channel)
            bank = banks.setdefault(bank_key, BankState())
            chan = channels.setdefault(chan_key, ChannelState(t))
            start = max(now, arrival_ns)
            start += chan.refresh_delay(start)
            if socket != access.home_socket:
                start += t.t_remote
                result.remote_accesses += 1
            start = chan.claim_bus(start)
            done, hit = bank.access(row, start, t)
            now = max(now, start)
            result.accesses += 1
            if access.kind is AccessKind.READ:
                result.reads += 1
            else:
                result.writes += 1
            if hit:
                result.row_hits += 1
            else:
                result.row_misses += 1
            result.total_latency_ns += done - arrival_ns
            result.bytes_transferred += self.LINE_BYTES
            if done > result.total_time_ns:
                result.total_time_ns = done

        while pending:
            # Look at the window; prefer the first request whose bank's
            # open row matches (first-ready), else the oldest.
            chosen = 0
            for i in range(min(self.window, len(pending))):
                entry = pending[i]
                bank = banks.get(entry[2])
                if bank is not None and bank.open_row == entry[4]:
                    chosen = i
                    break
            entry = pending[chosen]
            del pending[chosen]
            issue(entry)

        result.banks_touched = len(banks)
        result.refreshes = sum(c.refreshes for c in channels.values())
        return result
