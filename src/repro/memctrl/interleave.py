"""Alternative interleave shapes for ablation studies (paper §4.1, §8.1).

The paper motivates subarray *groups* (one subarray per bank) over
single-subarray placement by the cost of losing bank-level parallelism
(">= 18 % execution time for some workloads").
:class:`RestrictedInterleaveMapping` models the counterfactual: the same
physical node, but sequential cache lines confined to a subset of banks,
as a hypothetical bank-partitioned isolation scheme would do.  It also
models sub-NUMA clustering (§8.1) by halving the interleave set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.errors import MappingError
from repro.units import CACHE_LINE


@dataclass(frozen=True)
class RestrictedInterleaveMapping:
    """Interleave an address range over only ``banks`` banks of a socket.

    Addresses fill ascending rows of the restricted bank set; this is the
    geometry a "one VM per subarray / per bank subset" design would see.
    """

    geom: DRAMGeometry
    banks: tuple[int, ...]
    socket: int = 0

    def __post_init__(self) -> None:
        if not self.banks:
            raise MappingError("need at least one bank")
        for bank in self.banks:
            if not 0 <= bank < self.geom.banks_per_socket:
                raise MappingError(f"bank {bank} out of range")
        if len(set(self.banks)) != len(self.banks):
            raise MappingError("duplicate banks in restriction set")

    @classmethod
    def first_n_banks(
        cls, geom: DRAMGeometry, n: int, socket: int = 0
    ) -> "RestrictedInterleaveMapping":
        return cls(geom, tuple(range(n)), socket)

    @property
    def capacity(self) -> int:
        return len(self.banks) * self.geom.bank_bytes

    def decode(self, hpa: int) -> MediaAddress:
        """HPA -> media address over the restricted bank set."""
        g = self.geom
        if not 0 <= hpa < self.capacity:
            raise MappingError(
                f"HPA {hpa:#x} outside restricted capacity {self.capacity:#x}"
            )
        line, line_off = divmod(hpa, CACHE_LINE)
        which, round_ = line % len(self.banks), line // len(self.banks)
        lines_per_row = g.row_bytes // CACHE_LINE
        row, col_line = divmod(round_, lines_per_row)
        return MediaAddress.from_socket_bank(
            g, self.socket, self.banks[which], row, col_line * CACHE_LINE + line_off
        )
