"""The memory controller: traces in, time out (paper §2.4, §7.2-§7.3).

:class:`MemoryController` replays a memory-access trace against per-bank
row-buffer state and per-channel bus/refresh state, producing execution
time, average latency, bandwidth, and hit-rate statistics.  The model
captures exactly the effects the paper's performance arguments rest on:

- **Bank-level parallelism**: independent banks overlap; a trace confined
  to few banks serializes (the §4.1 ">= 18 %" motivation for subarray
  groups spanning every bank).
- **Row-buffer locality**: sequential traffic hits open rows; random
  traffic pays conflict latency.
- **NUMA distance**: accesses from a vCPU's socket to the other socket
  pay ``t_remote`` (why Siloz maps logical nodes to physical nodes,
  §5.2).
- **Subarray-size independence**: nothing in the timing path depends on
  the row or subarray index (§7.4's expectation of no trend).

The replay is structured as three feed-forward passes so that the
vectorized backend (:mod:`repro.memctrl.pipeline`) can compute it with
numpy closed forms while staying bit-identical to this scalar loop:

1. **Classify** — row-buffer hit/idle/conflict per access.  Under the
   fixed-grid refresh model this depends only on the per-bank access
   *sequence*, never on timing.
2. **Estimate** — an unthrottled service-completion estimate ``D0`` per
   access: arrival + NUMA + refresh blackout + bus chain + bank chain.
3. **Issue & serve** — the issue clock advances by CPU gaps but may not
   run more than ``max_outstanding`` requests ahead of completed
   service: ``now_i = max(now_{i-1} + gap_i, max_{j<=i-K} D0_j)``
   (the core's MLP backpressure).  The final service chains (refresh,
   bus, bank) then run against the throttled issue times.

Every quantity lives on the :data:`~repro.memctrl.timings.TICKS_PER_NS`
dyadic grid, so all float arithmetic here is exact — the property that
makes scalar fold and vectorized closed form agree bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterable, Protocol

from repro import obs
from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.engine.backend import SimBackend
from repro.errors import MemCtrlError
from repro.memctrl.scheduler import ChannelState
from repro.memctrl.timings import DDR4Timings, quantize_ns

if TYPE_CHECKING:  # pragma: no cover - typing-only import (numpy layer)
    from repro.memctrl.pipeline import AccessBatch


class AccessKind(Enum):
    """Read or write (writes matter for the MLC ratio workloads)."""
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One cache-line-sized memory request.

    ``cpu_gap_ns`` is the CPU "think time" since the previous request —
    the compute/memory balance knob the workload generators use.
    ``home_socket`` is the socket of the issuing vCPU, for NUMA distance.
    ``tag`` attributes the access to a requester (VM id) when several
    streams share one controller run (interference studies).
    """

    hpa: int
    kind: AccessKind = AccessKind.READ
    cpu_gap_ns: float = 0.0
    home_socket: int = 0
    tag: int = 0


class DecodesToMedia(Protocol):
    """Anything that can translate an HPA to a media address."""

    geom: DRAMGeometry

    def decode(self, hpa: int) -> MediaAddress: ...


@dataclass
class TraceResult:
    """Aggregates from replaying one trace."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    remote_accesses: int = 0
    total_time_ns: float = 0.0
    total_latency_ns: float = 0.0
    bytes_transferred: int = 0
    banks_touched: int = 0
    refreshes: int = 0
    #: tag -> (accesses, cumulative latency ns) for shared-run studies.
    per_tag: dict[int, tuple[int, float]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def avg_latency_ns(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_latency_ns / self.accesses

    @property
    def execution_seconds(self) -> float:
        return self.total_time_ns * 1e-9

    @property
    def bandwidth_gib_s(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return (self.bytes_transferred / 2**30) / (self.total_time_ns * 1e-9)

    def tag_latency_ns(self, tag: int) -> float:
        """Average latency of the accesses carrying *tag*."""
        count, total = self.per_tag.get(tag, (0, 0.0))
        if count == 0:
            return 0.0
        return total / count


class MemoryController:
    """Replays traces through the bank/channel timing model."""

    LINE_BYTES = 64

    def __init__(
        self,
        mapping: DecodesToMedia,
        timings: DDR4Timings | None = None,
        *,
        max_outstanding: int = 10,
        page_policy: str = "open",
        backend: SimBackend | str = SimBackend.BATCHED,
    ):
        if max_outstanding < 1:
            raise MemCtrlError("max_outstanding must be >= 1")
        if page_policy not in ("open", "closed"):
            raise MemCtrlError(f"unknown page policy {page_policy!r}")
        self.mapping = mapping
        self.geom = mapping.geom
        # Fast decode (repro.engine): SkylakeMapping exposes an LRU-cached
        # flat decoder; other DecodesToMedia implementations (e.g. the
        # restricted-interleave mapping in tests) fall back to .decode.
        self._decode_flat: Callable[[int], tuple[int, int, int, int]] | None = getattr(
            mapping, "decode_flat", None
        )
        self.timings = timings or DDR4Timings.ddr4_2933()
        self.max_outstanding = max_outstanding
        #: "open" keeps rows in the buffer (hits possible, conflicts pay
        #: tRP); "closed" auto-precharges after every access (no hits,
        #: no conflicts — better for random traffic, worse for streams).
        self.page_policy = page_policy
        #: SCALAR decodes per access; BATCHED bulk-decodes but keeps the
        #: scalar timing loop; VECTORIZED runs the whole pipeline in
        #: numpy.  All three are bit-identical (tests/test_differential).
        self.backend = SimBackend.parse(backend)

    # ------------------------------------------------------------------
    # public entry points

    def run_trace(self, trace: Iterable[MemoryAccess]) -> TraceResult:
        """Replay *trace* in order; returns aggregate statistics.

        The issuer models a core with ``max_outstanding`` in-flight
        requests (its MLP): issue may not run further ahead than the
        completion estimate of the request ``max_outstanding`` back, so
        memory backpressure reaches the CPU — that is how bank
        serialization turns into execution time.  State (row buffers,
        bus occupancy) is fresh per call, so results are deterministic
        functions of the trace.
        """
        accesses = trace if isinstance(trace, list) else list(trace)
        if not accesses:
            raise MemCtrlError("empty trace")
        with obs.span("memctrl.run_trace"):
            if self.backend is SimBackend.VECTORIZED:
                from repro.memctrl.pipeline import AccessBatch

                return self._finish(self._run_vectorized(AccessBatch.from_accesses(accesses)))
            return self._finish(self._run_scalar(accesses))

    def run_batch(self, batch: "AccessBatch") -> TraceResult:
        """Replay a structure-of-arrays trace (the fast-path entry).

        On the vectorized backend the batch feeds numpy directly; other
        backends expand it to :class:`MemoryAccess` objects and take the
        scalar loop — same results either way.
        """
        if len(batch) == 0:
            raise MemCtrlError("empty trace")
        with obs.span("memctrl.run_trace"):
            if self.backend is SimBackend.VECTORIZED:
                return self._finish(self._run_vectorized(batch))
            return self._finish(self._run_scalar(batch.to_accesses()))

    # ------------------------------------------------------------------
    # shared helpers

    def _finish(self, result: TraceResult) -> TraceResult:
        if obs.ENABLED:
            obs.emit(
                obs.MemTraceEvent(
                    accesses=result.accesses,
                    row_hits=result.row_hits,
                    row_misses=result.row_misses,
                    remote=result.remote_accesses,
                    total_time_ns=result.total_time_ns,
                    bytes_transferred=result.bytes_transferred,
                )
            )
        return result

    def _decode_all(
        self, accesses: list[MemoryAccess]
    ) -> list[tuple[int, int, int, int]]:
        """Decode every access to ``(socket, socket_bank, channel, row)``.

        Decode is a pure function of the HPA, so hoisting it out of the
        issue loop cannot change results; on the batched/vectorized
        backends long traces go through the mapping's vectorized
        ``decode_flat_batch`` (repro.engine), others through the flat
        LRU or the MediaAddress reference path."""
        if self.backend is not SimBackend.SCALAR and len(accesses) >= 8:
            batch = getattr(self.mapping, "decode_flat_batch", None)
            if batch is not None and self._decode_flat is not None:
                try:
                    socket, sbank, chan, row = batch([a.hpa for a in accesses])
                except ImportError:  # pragma: no cover - numpy baked into CI
                    pass
                else:
                    return list(
                        zip(socket.tolist(), sbank.tolist(), chan.tolist(), row.tolist())
                    )
        decode_flat = self._decode_flat
        if decode_flat is not None:
            return [decode_flat(a.hpa) for a in accesses]
        geom = self.geom
        decode = self.mapping.decode
        return [
            (m.socket, m.socket_bank_index(geom), m.channel, m.row)
            for m in (decode(a.hpa) for a in accesses)
        ]

    def _classify(
        self,
        prev_row: dict[tuple[int, int], int],
        bank_key: tuple[int, int],
        row: int,
    ) -> tuple[bool, float, float]:
        """(hit?, service latency L, bank hold R) for the next access.

        Timing-free: depends only on the per-bank row sequence and the
        page policy, which is what lets the vectorized path screen row
        hits with one sorted pass."""
        t = self.timings
        if self.page_policy == "closed":
            # Auto-precharge: every access activates an idle bank.
            prev_row[bank_key] = row
            return False, t.idle_latency, t.bank_hold
        prev = prev_row.get(bank_key)
        prev_row[bank_key] = row
        if prev is None:
            return False, t.idle_latency, t.bank_hold
        if prev == row:
            return True, t.hit_latency, t.t_burst
        return False, t.miss_latency, t.bank_hold

    # ------------------------------------------------------------------
    # scalar reference

    def _run_scalar(self, accesses: list[MemoryAccess]) -> TraceResult:
        t = self.timings
        decoded = self._decode_all(accesses)
        prev_row: dict[tuple[int, int], int] = {}
        # Estimate-pass chains (discarded counters) and final chains.
        chans_est: dict[tuple[int, int], ChannelState] = {}
        banks_est: dict[tuple[int, int], float] = {}
        chans: dict[tuple[int, int], ChannelState] = {}
        banks_free: dict[tuple[int, int], float] = {}
        result = TraceResult()
        per_tag = result.per_tag
        k_lag = self.max_outstanding
        d0_hist: list[float] = []
        throttle = float("-inf")  # running max of D0 up to i - k_lag
        now = 0.0
        arrival = 0.0
        for i, (access, (socket, socket_bank, channel, row)) in enumerate(
            zip(accesses, decoded)
        ):
            gap = quantize_ns(access.cpu_gap_ns)
            arrival += gap
            bank_key = (socket, socket_bank)
            chan_key = (socket, channel)
            remote = socket != access.home_socket
            penalty = t.t_remote if remote else 0.0
            hit, latency, hold = self._classify(prev_row, bank_key, row)

            # Pass 2: unthrottled completion estimate D0.
            chan_est = chans_est.get(chan_key)
            if chan_est is None:
                chan_est = chans_est[chan_key] = ChannelState(t)
            bus_est = chan_est.claim_bus(chan_est.refresh_adjust(arrival + penalty))
            begin_est = max(bus_est, banks_est.get(bank_key, 0.0))
            banks_est[bank_key] = begin_est + hold
            d0_hist.append(begin_est + latency)

            # Pass 3: MLP-throttled issue, then the final service chains.
            if i >= k_lag and d0_hist[i - k_lag] > throttle:
                throttle = d0_hist[i - k_lag]
            now = max(now + gap, throttle)
            chan = chans.get(chan_key)
            if chan is None:
                chan = chans[chan_key] = ChannelState(t)
            bus = chan.claim_bus(chan.refresh_adjust(now + penalty))
            begin = max(bus, banks_free.get(bank_key, 0.0))
            banks_free[bank_key] = begin + hold
            done = begin + latency

            result.accesses += 1
            if access.kind is AccessKind.READ:
                result.reads += 1
            else:
                result.writes += 1
            if hit:
                result.row_hits += 1
            else:
                result.row_misses += 1
            if remote:
                result.remote_accesses += 1
            result.total_latency_ns += done - now
            count, total = per_tag.get(access.tag, (0, 0.0))
            per_tag[access.tag] = (count + 1, total + (done - now))
            result.bytes_transferred += self.LINE_BYTES
            if done > result.total_time_ns:
                result.total_time_ns = done

        result.banks_touched = len(prev_row)
        result.refreshes = sum(c.refreshes for c in chans.values())
        return result

    # ------------------------------------------------------------------
    # vectorized fast path

    def _run_vectorized(self, batch: "AccessBatch") -> TraceResult:
        from repro.memctrl import pipeline

        return pipeline.run_pipeline(self, batch, window=None)
