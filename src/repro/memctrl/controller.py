"""The memory controller: traces in, time out (paper §2.4, §7.2-§7.3).

:class:`MemoryController` replays a memory-access trace against per-bank
row-buffer state and per-channel bus/refresh state, producing execution
time, average latency, bandwidth, and hit-rate statistics.  The model
captures exactly the effects the paper's performance arguments rest on:

- **Bank-level parallelism**: independent banks overlap; a trace confined
  to few banks serializes (the §4.1 ">= 18 %" motivation for subarray
  groups spanning every bank).
- **Row-buffer locality**: sequential traffic hits open rows; random
  traffic pays conflict latency.
- **NUMA distance**: accesses from a vCPU's socket to the other socket
  pay ``t_remote`` (why Siloz maps logical nodes to physical nodes,
  §5.2).
- **Subarray-size independence**: nothing in the timing path depends on
  the row or subarray index (§7.4's expectation of no trend).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Protocol

from repro import obs
from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.errors import MemCtrlError
from repro.memctrl.scheduler import BankState, ChannelState
from repro.memctrl.timings import DDR4Timings


class AccessKind(Enum):
    """Read or write (writes matter for the MLC ratio workloads)."""
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """One cache-line-sized memory request.

    ``cpu_gap_ns`` is the CPU "think time" since the previous request —
    the compute/memory balance knob the workload generators use.
    ``home_socket`` is the socket of the issuing vCPU, for NUMA distance.
    ``tag`` attributes the access to a requester (VM id) when several
    streams share one controller run (interference studies).
    """

    hpa: int
    kind: AccessKind = AccessKind.READ
    cpu_gap_ns: float = 0.0
    home_socket: int = 0
    tag: int = 0


class DecodesToMedia(Protocol):
    """Anything that can translate an HPA to a media address."""

    geom: DRAMGeometry

    def decode(self, hpa: int) -> MediaAddress: ...


@dataclass
class TraceResult:
    """Aggregates from replaying one trace."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    remote_accesses: int = 0
    total_time_ns: float = 0.0
    total_latency_ns: float = 0.0
    bytes_transferred: int = 0
    banks_touched: int = 0
    refreshes: int = 0
    #: tag -> (accesses, cumulative latency ns) for shared-run studies.
    per_tag: dict = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses

    @property
    def avg_latency_ns(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_latency_ns / self.accesses

    @property
    def execution_seconds(self) -> float:
        return self.total_time_ns * 1e-9

    @property
    def bandwidth_gib_s(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return (self.bytes_transferred / 2**30) / (self.total_time_ns * 1e-9)

    def tag_latency_ns(self, tag: int) -> float:
        """Average latency of the accesses carrying *tag*."""
        count, total = self.per_tag.get(tag, (0, 0.0))
        if count == 0:
            return 0.0
        return total / count


class MemoryController:
    """Replays traces through the bank/channel timing model."""

    LINE_BYTES = 64

    def __init__(
        self,
        mapping: DecodesToMedia,
        timings: DDR4Timings | None = None,
        *,
        max_outstanding: int = 10,
        page_policy: str = "open",
    ):
        if max_outstanding < 1:
            raise MemCtrlError("max_outstanding must be >= 1")
        if page_policy not in ("open", "closed"):
            raise MemCtrlError(f"unknown page policy {page_policy!r}")
        self.mapping = mapping
        self.geom = mapping.geom
        # Fast decode (repro.engine): SkylakeMapping exposes an LRU-cached
        # flat decoder; other DecodesToMedia implementations (e.g. the
        # restricted-interleave mapping in tests) fall back to .decode.
        self._decode_flat = getattr(mapping, "decode_flat", None)
        self.timings = timings or DDR4Timings.ddr4_2933()
        self.max_outstanding = max_outstanding
        #: "open" keeps rows in the buffer (hits possible, conflicts pay
        #: tRP); "closed" auto-precharges after every access (no hits,
        #: no conflicts — better for random traffic, worse for streams).
        self.page_policy = page_policy

    def run_trace(self, trace: Iterable[MemoryAccess]) -> TraceResult:
        """Replay *trace* in order; returns aggregate statistics.

        The issuer models a core with ``max_outstanding`` in-flight
        requests (its MLP): issue stalls until the oldest outstanding
        request completes, so memory backpressure reaches the CPU —
        that is how bank serialization turns into execution time.
        State (row buffers, bus occupancy) is fresh per call, so results
        are deterministic functions of the trace.
        """
        with obs.span("memctrl.run_trace"):
            return self._run_trace(trace)

    def _decode_all(
        self, accesses: list[MemoryAccess]
    ) -> list[tuple[int, int, int, int]]:
        """Decode every access to ``(socket, socket_bank, channel, row)``.

        Decode is a pure function of the HPA, so hoisting it out of the
        issue loop cannot change results; long traces go through the
        mapping's vectorized ``decode_flat_batch`` (repro.engine) when
        numpy is available, others through the flat LRU or the
        MediaAddress reference path."""
        if len(accesses) >= 8:
            batch = getattr(self.mapping, "decode_flat_batch", None)
            if batch is not None and self._decode_flat is not None:
                try:
                    socket, sbank, chan, row = batch([a.hpa for a in accesses])
                except ImportError:  # pragma: no cover - numpy baked into CI
                    pass
                else:
                    return list(
                        zip(socket.tolist(), sbank.tolist(), chan.tolist(), row.tolist())
                    )
        decode_flat = self._decode_flat
        if decode_flat is not None:
            return [decode_flat(a.hpa) for a in accesses]
        geom = self.geom
        decode = self.mapping.decode
        return [
            (m.socket, m.socket_bank_index(geom), m.channel, m.row)
            for m in (decode(a.hpa) for a in accesses)
        ]

    def _run_trace(self, trace: Iterable[MemoryAccess]) -> TraceResult:
        from collections import deque

        t = self.timings
        accesses = trace if isinstance(trace, list) else list(trace)
        decoded = self._decode_all(accesses)
        banks: dict[tuple[int, int], BankState] = {}
        channels: dict[tuple[int, int], ChannelState] = {}
        in_flight: deque[float] = deque()
        result = TraceResult()
        now = 0.0  # ns; issue clock
        for access, (socket, socket_bank, channel, row) in zip(accesses, decoded):
            now += access.cpu_gap_ns
            while in_flight and in_flight[0] <= now:
                in_flight.popleft()
            if len(in_flight) >= self.max_outstanding:
                now = in_flight.popleft()
            bank_key = (socket, socket_bank)
            chan_key = (socket, channel)
            bank = banks.get(bank_key)
            if bank is None:
                bank = banks[bank_key] = BankState()
            chan = channels.get(chan_key)
            if chan is None:
                chan = channels[chan_key] = ChannelState(t)

            start = now + chan.refresh_delay(now)
            if socket != access.home_socket:
                start += t.t_remote
                result.remote_accesses += 1
            start = chan.claim_bus(start)
            done, hit = bank.access(row, start, t)
            if self.page_policy == "closed":
                bank.open_row = None  # auto-precharge

            result.accesses += 1
            if access.kind is AccessKind.READ:
                result.reads += 1
            else:
                result.writes += 1
            if hit:
                result.row_hits += 1
            else:
                result.row_misses += 1
            result.total_latency_ns += done - now
            count, total = result.per_tag.get(access.tag, (0, 0.0))
            result.per_tag[access.tag] = (count + 1, total + (done - now))
            result.bytes_transferred += self.LINE_BYTES
            if done > result.total_time_ns:
                result.total_time_ns = done
            # Keep the completion queue ordered: insert preserving order.
            if in_flight and done < in_flight[-1]:
                items = sorted([*in_flight, done])
                in_flight.clear()
                in_flight.extend(items)
            else:
                in_flight.append(done)

        if result.accesses == 0:
            raise MemCtrlError("empty trace")
        result.banks_touched = len(banks)
        result.refreshes = sum(c.refreshes for c in channels.values())
        if obs.ENABLED:
            obs.emit(
                obs.MemTraceEvent(
                    accesses=result.accesses,
                    row_hits=result.row_hits,
                    row_misses=result.row_misses,
                    remote=result.remote_accesses,
                    total_time_ns=result.total_time_ns,
                    bytes_transferred=result.bytes_transferred,
                )
            )
        return result
