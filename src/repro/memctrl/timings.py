"""DDR4 timing parameters (JEDEC DDR4, paper Table 2's 2933 MHz parts).

All values are in nanoseconds.  The defaults model DDR4-2933 with
typical server CAS latencies; exact vendor values differ by fractions of
a nanosecond, which is irrelevant for the paper's *relative* claims
(Siloz-vs-baseline ratios).  Crucially, the DDR standard specifies that
access timings do **not** vary across subarrays (§7.4), which this model
honours by construction: timing depends only on bank/row-buffer state,
never on row or subarray index.

**The tick-grid contract.**  Every timing constant must sit on a grid of
``1 / TICKS_PER_NS`` nanoseconds (a dyadic rational).  Sums, differences
and maxima of dyadic float64 values of this magnitude are *exact* IEEE
arithmetic — no rounding ever occurs — so float addition becomes
associative again and the vectorized controller pipeline
(:mod:`repro.memctrl.pipeline`, cumsum/running-max closed forms) is
bit-identical to the scalar reference loop by construction rather than
by luck.  ``__post_init__`` enforces the grid so a drive-by edit cannot
silently reintroduce rounding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MemCtrlError

#: Timing resolution: 64 ticks per nanosecond (2**-6 ns grid).  Chosen
#: so every JEDEC quarter-nanosecond constant is representable and
#: quantized CPU gaps keep sub-2 % resolution at the shortest real gap.
TICKS_PER_NS: float = 64.0


def quantize_ns(value: float) -> float:
    """Snap *value* (ns) down onto the tick grid.

    ``floor(x * 64) / 64`` uses only exactly-rounded IEEE ops, so the
    scalar path (``math.floor``) and the numpy path (``np.floor``) agree
    bit for bit on every input.
    """
    return math.floor(value * TICKS_PER_NS) / TICKS_PER_NS


def _on_grid(value: float) -> bool:
    scaled = value * TICKS_PER_NS
    return scaled == math.floor(scaled)


@dataclass(frozen=True)
class DDR4Timings:
    """Timing set for one DRAM generation/speed bin (nanoseconds)."""

    #: Row activate to column command (RAS-to-CAS) delay.
    t_rcd: float = 13.75
    #: Row precharge time.
    t_rp: float = 13.75
    #: CAS latency (column command to first data).
    t_cl: float = 13.75
    #: Minimum row open time (activate to precharge).
    t_ras: float = 32.0
    #: Data burst occupancy of the channel for one 64 B line
    #: (8 beats at 2933 MT/s, snapped to the tick grid).
    t_burst: float = 2.75
    #: Average refresh interval per rank.
    t_refi: float = 7800.0
    #: Refresh cycle time (rank blocked).
    t_rfc: float = 350.0
    #: Extra latency for an access to the remote socket (QPI/UPI hop).
    t_remote: float = 60.0

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_rp", "t_cl", "t_ras", "t_burst", "t_refi", "t_rfc"):
            if getattr(self, name) <= 0:
                raise MemCtrlError(f"{name} must be positive")
        if self.t_remote < 0:
            raise MemCtrlError("t_remote must be non-negative")
        for name in (
            "t_rcd", "t_rp", "t_cl", "t_ras", "t_burst", "t_refi", "t_rfc", "t_remote",
        ):
            if not _on_grid(getattr(self, name)):
                raise MemCtrlError(
                    f"{name} must be a multiple of {1.0 / TICKS_PER_NS} ns "
                    "(the exact-arithmetic tick grid; see module docstring)"
                )

    @property
    def t_rc(self) -> float:
        """Row cycle time: back-to-back ACTs to one bank."""
        return self.t_ras + self.t_rp

    @property
    def hit_latency(self) -> float:
        """Row-buffer hit: column access + burst."""
        return self.t_cl + self.t_burst

    @property
    def idle_latency(self) -> float:
        """Access to a precharged (idle) bank: activate + column."""
        return self.t_rcd + self.t_cl + self.t_burst

    @property
    def miss_latency(self) -> float:
        """Row-buffer miss (conflict): precharge + activate + column."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_burst

    @property
    def bank_hold(self) -> float:
        """How long an activate occupies the bank before the next
        command may issue (tRCD+burst, bounded below by tRAS-tRP)."""
        return max(self.t_rcd + self.t_burst, self.t_ras - self.t_rp)

    @property
    def refresh_utilization(self) -> float:
        """Fraction of time a rank is unavailable due to refresh."""
        return self.t_rfc / self.t_refi

    @classmethod
    def ddr4_2933(cls) -> "DDR4Timings":
        """Table 2's speed bin (the default)."""
        return cls()

    @classmethod
    def ddr4_2400(cls) -> "DDR4Timings":
        """A slower common server bin, for sensitivity tests."""
        return cls(t_rcd=14.25, t_rp=14.25, t_cl=14.25, t_burst=3.25)
