"""DDR4 timing parameters (JEDEC DDR4, paper Table 2's 2933 MHz parts).

All values are in nanoseconds.  The defaults model DDR4-2933 with
typical server CAS latencies; exact vendor values differ by fractions of
a nanosecond, which is irrelevant for the paper's *relative* claims
(Siloz-vs-baseline ratios).  Crucially, the DDR standard specifies that
access timings do **not** vary across subarrays (§7.4), which this model
honours by construction: timing depends only on bank/row-buffer state,
never on row or subarray index.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemCtrlError


@dataclass(frozen=True)
class DDR4Timings:
    """Timing set for one DRAM generation/speed bin (nanoseconds)."""

    #: Row activate to column command (RAS-to-CAS) delay.
    t_rcd: float = 13.75
    #: Row precharge time.
    t_rp: float = 13.75
    #: CAS latency (column command to first data).
    t_cl: float = 13.75
    #: Minimum row open time (activate to precharge).
    t_ras: float = 32.0
    #: Data burst occupancy of the channel for one 64 B line
    #: (8 beats at 2933 MT/s).
    t_burst: float = 2.73
    #: Average refresh interval per rank.
    t_refi: float = 7800.0
    #: Refresh cycle time (rank blocked).
    t_rfc: float = 350.0
    #: Extra latency for an access to the remote socket (QPI/UPI hop).
    t_remote: float = 60.0

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_rp", "t_cl", "t_ras", "t_burst", "t_refi", "t_rfc"):
            if getattr(self, name) <= 0:
                raise MemCtrlError(f"{name} must be positive")
        if self.t_remote < 0:
            raise MemCtrlError("t_remote must be non-negative")

    @property
    def t_rc(self) -> float:
        """Row cycle time: back-to-back ACTs to one bank."""
        return self.t_ras + self.t_rp

    @property
    def hit_latency(self) -> float:
        """Row-buffer hit: column access + burst."""
        return self.t_cl + self.t_burst

    @property
    def miss_latency(self) -> float:
        """Row-buffer miss (conflict): precharge + activate + column."""
        return self.t_rp + self.t_rcd + self.t_cl + self.t_burst

    @property
    def refresh_utilization(self) -> float:
        """Fraction of time a rank is unavailable due to refresh."""
        return self.t_rfc / self.t_refi

    @classmethod
    def ddr4_2933(cls) -> "DDR4Timings":
        """Table 2's speed bin (the default)."""
        return cls()

    @classmethod
    def ddr4_2400(cls) -> "DDR4Timings":
        """A slower common server bin, for sensitivity tests."""
        return cls(t_rcd=14.16, t_rp=14.16, t_cl=14.16, t_burst=3.33)
