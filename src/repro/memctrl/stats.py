"""Per-bank activity breakdowns for controller runs.

The aggregate :class:`~repro.memctrl.controller.TraceResult` answers the
paper's questions; this module answers the operator's: how evenly did a
workload spread over banks (bank-level-parallelism health), and which
banks behaved like row-buffer-friendly streams vs conflict storms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.dram.geometry import DRAMGeometry
from repro.errors import MemCtrlError
from repro.memctrl.controller import DecodesToMedia, MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - typing-only import (numpy layer)
    from repro.memctrl.pipeline import AccessBatch


@dataclass
class BankActivity:
    accesses: int = 0
    distinct_rows: set = field(default_factory=set)

    @property
    def row_reuse(self) -> float:
        if not self.distinct_rows:
            return 0.0
        return self.accesses / len(self.distinct_rows)


@dataclass
class BankProfile:
    """Static profile of a trace's bank behaviour (no timing)."""

    per_bank: dict = field(default_factory=dict)
    total: int = 0

    @property
    def banks_touched(self) -> int:
        return len(self.per_bank)

    @property
    def imbalance(self) -> float:
        """max/mean accesses per touched bank; 1.0 = perfectly even.

        Subarray groups keep this identical to the baseline because a
        group spans every bank (§4.1) — asserted in tests."""
        if not self.per_bank:
            return 0.0
        counts = [b.accesses for b in self.per_bank.values()]
        return max(counts) / (sum(counts) / len(counts))

    def coverage(self, geom: DRAMGeometry) -> float:
        """Fraction of the socket's banks the trace touched."""
        return self.banks_touched / geom.banks_per_socket


def profile_trace(
    mapping: DecodesToMedia, trace: Iterable[MemoryAccess]
) -> BankProfile:
    """Decode a trace and summarise its per-bank footprint."""
    profile = BankProfile()
    geom = mapping.geom
    for access in trace:
        media = mapping.decode(access.hpa)
        key = (media.socket, media.socket_bank_index(geom))
        bank = profile.per_bank.get(key)
        if bank is None:
            bank = profile.per_bank[key] = BankActivity()
        bank.accesses += 1
        bank.distinct_rows.add(media.row)
        profile.total += 1
    if profile.total == 0:
        raise MemCtrlError("empty trace")
    return profile


def profile_batch(mapping: DecodesToMedia, batch: "AccessBatch") -> BankProfile:
    """:func:`profile_trace` over a structure-of-arrays batch.

    One bulk decode plus ``np.unique`` accumulation replaces the
    per-access dict walk; the per-bank counts and distinct-row sets are
    identical (integer-exact), just computed columnwise.  Mappings
    without a flat batch decoder fall back to the object path.
    """
    import numpy as np

    if len(batch) == 0:
        raise MemCtrlError("empty trace")
    decode_flat_batch = getattr(mapping, "decode_flat_batch", None)
    if decode_flat_batch is None:
        return profile_trace(mapping, batch.to_accesses())
    socket, socket_bank, _channel, row = (
        np.asarray(col, dtype=np.int64) for col in decode_flat_batch(batch.hpa)
    )
    geom = mapping.geom
    banks_per_socket = geom.banks_per_socket
    bank_gid = socket * banks_per_socket + socket_bank
    row_span = int(row.max()) + 1
    profile = BankProfile(total=len(batch))
    banks, counts = np.unique(bank_gid, return_counts=True)
    for gid, count in zip(banks.tolist(), counts.tolist()):
        key = (gid // banks_per_socket, gid % banks_per_socket)
        profile.per_bank[key] = BankActivity(accesses=count)
    for pair in np.unique(bank_gid * row_span + row).tolist():
        gid, row_value = divmod(pair, row_span)
        key = (gid // banks_per_socket, gid % banks_per_socket)
        profile.per_bank[key].distinct_rows.add(row_value)
    return profile
