"""Per-bank activity breakdowns for controller runs.

The aggregate :class:`~repro.memctrl.controller.TraceResult` answers the
paper's questions; this module answers the operator's: how evenly did a
workload spread over banks (bank-level-parallelism health), and which
banks behaved like row-buffer-friendly streams vs conflict storms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dram.geometry import DRAMGeometry
from repro.errors import MemCtrlError
from repro.memctrl.controller import DecodesToMedia, MemoryAccess


@dataclass
class BankActivity:
    accesses: int = 0
    distinct_rows: set = field(default_factory=set)

    @property
    def row_reuse(self) -> float:
        if not self.distinct_rows:
            return 0.0
        return self.accesses / len(self.distinct_rows)


@dataclass
class BankProfile:
    """Static profile of a trace's bank behaviour (no timing)."""

    per_bank: dict = field(default_factory=dict)
    total: int = 0

    @property
    def banks_touched(self) -> int:
        return len(self.per_bank)

    @property
    def imbalance(self) -> float:
        """max/mean accesses per touched bank; 1.0 = perfectly even.

        Subarray groups keep this identical to the baseline because a
        group spans every bank (§4.1) — asserted in tests."""
        if not self.per_bank:
            return 0.0
        counts = [b.accesses for b in self.per_bank.values()]
        return max(counts) / (sum(counts) / len(counts))

    def coverage(self, geom: DRAMGeometry) -> float:
        """Fraction of the socket's banks the trace touched."""
        return self.banks_touched / geom.banks_per_socket


def profile_trace(
    mapping: DecodesToMedia, trace: Iterable[MemoryAccess]
) -> BankProfile:
    """Decode a trace and summarise its per-bank footprint."""
    profile = BankProfile()
    geom = mapping.geom
    for access in trace:
        media = mapping.decode(access.hpa)
        key = (media.socket, media.socket_bank_index(geom))
        bank = profile.per_bank.get(key)
        if bank is None:
            bank = profile.per_bank[key] = BankActivity()
        bank.accesses += 1
        bank.distinct_rows.add(media.row)
        profile.total += 1
    if profile.total == 0:
        raise MemCtrlError("empty trace")
    return profile
