"""Vectorized controller pipeline (numpy), bit-identical to the scalar loop.

The scalar reference (:meth:`~repro.memctrl.controller.MemoryController.
_run_scalar` and the FR-FCFS loop) folds max-plus recurrences access by
access.  Because every operand is dyadic — a multiple of the
:data:`~repro.memctrl.timings.TICKS_PER_NS` grid, far below the 2**53
exactness horizon — float64 arithmetic on them never rounds, addition is
associative, and each recurrence has a *closed form* this module
evaluates with numpy:

- arrival clock: ``A = cumsum(quantized gaps)``;
- bus chain ``u_j = max(s_j, u_{j-1} + t_burst)`` per channel:
  ``u_j = j*tb + runmax(s_m - m*tb)``;
- bank chain ``b_j = max(u_j, b_{j-1} + R_{j-1})`` per bank:
  ``b_j = c_j + runmax(u_m - c_m)`` with ``c = exclusive-cumsum(R)``;
- MLP throttle ``now_i = max(now_{i-1} + g_i, P_i)`` with
  ``P_i = max(D0[: i-K+1])``: ``now = A + max(0, runmax(P - A))``;
- refresh blackouts are a pure elementwise function of time.

Row-hit screening is one stable sort by bank (an access hits iff the
previous access to the same bank targeted the same row), and FR-FCFS
candidate selection is a static window permutation (same-(bank,row)
requests coalesce to their group's first position inside each window
block) — both timing-independent.  The per-bank/per-channel scans run as
*flat* segmented scans (one ``maximum.accumulate`` over offset-shifted
values, one ``cumsum`` rebased per segment), so no Python-level loop
scales with the number of banks.

Equality with the scalar fold is exact, not approximate; the
differential tests enforce it per-field on the full TraceResult.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import MemCtrlError
from repro.memctrl.timings import TICKS_PER_NS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memctrl.controller import MemoryAccess, MemoryController, TraceResult

#: numpy arrays of decoded (socket, socket_bank, channel, row) columns.
DecodeArrays = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


@dataclass
class AccessBatch:
    """Structure-of-arrays trace: the fast-path twin of a
    ``list[MemoryAccess]`` (same fields, column layout)."""

    hpa: np.ndarray  # int64
    write: np.ndarray  # bool
    cpu_gap_ns: np.ndarray  # float64
    home_socket: np.ndarray  # int64
    tag: np.ndarray  # int64

    def __len__(self) -> int:
        return int(self.hpa.shape[0])

    def __post_init__(self) -> None:
        n = self.hpa.shape[0]
        for name in ("write", "cpu_gap_ns", "home_socket", "tag"):
            if getattr(self, name).shape[0] != n:
                raise MemCtrlError(f"AccessBatch column {name} length mismatch")

    @classmethod
    def from_accesses(cls, accesses: "list[MemoryAccess]") -> "AccessBatch":
        from repro.memctrl.controller import AccessKind

        n = len(accesses)
        return cls(
            hpa=np.fromiter((a.hpa for a in accesses), dtype=np.int64, count=n),
            write=np.fromiter(
                (a.kind is AccessKind.WRITE for a in accesses), dtype=bool, count=n
            ),
            cpu_gap_ns=np.fromiter(
                (a.cpu_gap_ns for a in accesses), dtype=np.float64, count=n
            ),
            home_socket=np.fromiter(
                (a.home_socket for a in accesses), dtype=np.int64, count=n
            ),
            tag=np.fromiter((a.tag for a in accesses), dtype=np.int64, count=n),
        )

    def to_accesses(self) -> "list[MemoryAccess]":
        """Expand back to :class:`MemoryAccess` objects (the scalar
        backends' input form); exact inverse of :meth:`from_accesses`."""
        from repro.memctrl.controller import AccessKind, MemoryAccess

        kinds = np.where(self.write, AccessKind.WRITE, AccessKind.READ)
        return [
            MemoryAccess(
                hpa=int(h),
                kind=k,
                cpu_gap_ns=float(g),
                home_socket=int(s),
                tag=int(t),
            )
            for h, k, g, s, t in zip(
                self.hpa.tolist(),
                kinds.tolist(),
                self.cpu_gap_ns.tolist(),
                self.home_socket.tolist(),
                self.tag.tolist(),
            )
        ]


# ----------------------------------------------------------------------
# decode


def _decode_arrays(controller: "MemoryController", hpa: np.ndarray) -> DecodeArrays:
    """Bulk-decode to (socket, socket_bank, channel, row) int64 columns.

    Prefers the mapping's vectorized decoder; mappings without one (the
    restricted-interleave ablation mapping) fall back to a Python loop —
    still correct, just not fast."""
    mapping = controller.mapping
    batch_fn = getattr(mapping, "decode_flat_batch", None)
    if batch_fn is not None and controller._decode_flat is not None:
        socket, sbank, chan, row = batch_fn(hpa)
        return (
            np.asarray(socket, dtype=np.int64),
            np.asarray(sbank, dtype=np.int64),
            np.asarray(chan, dtype=np.int64),
            np.asarray(row, dtype=np.int64),
        )
    decode_flat = controller._decode_flat
    if decode_flat is not None:
        rows = [decode_flat(h) for h in hpa.tolist()]
    else:
        geom = controller.geom
        decode = mapping.decode
        rows = [
            (m.socket, m.socket_bank_index(geom), m.channel, m.row)
            for m in (decode(h) for h in hpa.tolist())
        ]
    arr = np.asarray(rows, dtype=np.int64).reshape(len(rows), 4)
    return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]


# ----------------------------------------------------------------------
# segmented max-plus chains

#: (order, starts, ends, segment index per sorted pos, local pos in segment)
Segments = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _segments(gids: np.ndarray) -> Segments:
    """Stable grouping layout over sorted gids (see :data:`Segments`)."""
    # Bank/channel gids are tiny (tens of values); a 16-bit radix sort
    # is ~8x faster than the int64 sort and orders identically.
    if gids.size and 0 <= int(gids.min()) and int(gids.max()) < 2**16:
        order = np.argsort(gids.astype(np.uint16), kind="stable")
    else:
        order = np.argsort(gids, kind="stable")
    sorted_g = gids[order]
    n = sorted_g.shape[0]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_g[1:], sorted_g[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    ends = np.append(starts[1:], n)
    lengths = ends - starts
    seg_of = np.repeat(np.arange(starts.shape[0], dtype=np.int64), lengths)
    local = np.arange(n, dtype=np.int64) - np.repeat(starts, lengths)
    return order, starts, ends, seg_of, local


def _segmented_runmax(
    v: np.ndarray, seg_of: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Running maximum within each segment of the segment-sorted *v*.

    Uses one flat ``maximum.accumulate`` over ``v`` shifted by a
    per-segment power-of-two offset larger than v's spread, so no
    segment's values can reach into the next — then shifts back.  Every
    add/subtract is exact (dyadic operands below the tick-grid horizon),
    so the result equals the per-segment scan bit for bit; inputs too
    large for that guarantee take the per-segment loop instead."""
    nseg = starts.shape[0]
    if nseg <= 1:
        return np.maximum.accumulate(v)
    vmin = float(v.min())
    spread = float(v.max()) - vmin
    big = 2.0 ** math.ceil(math.log2(spread + 1.0))
    if (nseg + 1) * big * TICKS_PER_NS < 2.0**53:
        offset = seg_of * big
        return np.maximum.accumulate((v - vmin) + offset) - offset + vmin
    out = np.empty_like(v)
    for b, e in zip(starts.tolist(), ends.tolist()):
        np.maximum.accumulate(v[b:e], out=out[b:e])
    return out


def _bus_chains(s: np.ndarray, segs: Segments, t_burst: float) -> np.ndarray:
    """Per-channel ``u_j = max(s_j, u_{j-1} + t_burst)`` via closed form."""
    order, starts, ends, seg_of, local = segs
    ramp = local * t_burst
    out = np.empty_like(s)
    out[order] = ramp + _segmented_runmax(s[order] - ramp, seg_of, starts, ends)
    return out


def _bank_chains(u: np.ndarray, hold: np.ndarray, segs: Segments) -> np.ndarray:
    """Per-bank ``b_j = max(u_j, b_{j-1} + R_{j-1})`` via closed form."""
    order, starts, ends, seg_of, local = segs
    h = hold[order]
    cs = np.cumsum(h)
    if cs.shape[0] and cs[-1] * TICKS_PER_NS >= 2.0**52:
        # Prefix sums beyond the exactness horizon: per-segment loop.
        out = np.empty_like(u)
        for b, e in zip(starts.tolist(), ends.tolist()):
            idx = order[b:e]
            c = np.empty(e - b, dtype=np.float64)
            c[0] = 0.0
            np.cumsum(hold[idx][:-1], out=c[1:])
            out[idx] = c + np.maximum.accumulate(u[idx] - c)
        return out
    # Exclusive per-segment prefix sums from one flat cumsum: subtract
    # each segment's pre-start total (exact differences of exact sums).
    excl = np.empty_like(cs)
    excl[0] = 0.0
    excl[1:] = cs[:-1]
    c_flat = excl - np.repeat(excl[starts], ends - starts)
    out = np.empty_like(u)
    out[order] = c_flat + _segmented_runmax(
        u[order] - c_flat, seg_of, starts, ends
    )
    return out


# ----------------------------------------------------------------------
# FR-FCFS static window permutation


def frfcfs_permutation(
    bank_gid: np.ndarray, row: np.ndarray, window: int
) -> np.ndarray:
    """Issue order for the static FR-FCFS rule.

    Within each consecutive block of *window* requests (arrival order),
    requests to the same (bank, row) issue back-to-back at their group's
    first-arrival position; groups keep first-come order and blocks do
    not interleave.  ``window == 1`` is the identity."""
    n = bank_gid.shape[0]
    pos = np.arange(n, dtype=np.int64)
    if window == 1 or n <= 1:
        return pos
    block = pos // window
    key = bank_gid * (int(row.max()) + 1) + row
    by_group = np.lexsort((pos, key, block))
    bs, ks, ps = block[by_group], key[by_group], pos[by_group]
    run_start = np.empty(n, dtype=bool)
    run_start[0] = True
    run_start[1:] = (bs[1:] != bs[:-1]) | (ks[1:] != ks[:-1])
    start_of_run = np.maximum.accumulate(np.where(run_start, pos, 0))
    first_pos = np.empty(n, dtype=np.int64)
    first_pos[by_group] = ps[start_of_run]
    return np.lexsort((pos, first_pos))


# ----------------------------------------------------------------------
# the pipeline


def run_pipeline(
    controller: "MemoryController",
    batch: AccessBatch,
    *,
    window: int | None,
) -> "TraceResult":
    """Replay *batch* through the controller model with numpy.

    ``window=None`` runs the in-order MLP-throttled model
    (:class:`MemoryController` semantics); an integer runs the FR-FCFS
    static-window model (latency measured from arrival, no throttle).
    Bit-identical to the corresponding scalar loop (see module docs).
    """
    from repro.memctrl.controller import TraceResult

    t = controller.timings
    n = len(batch)
    socket, sbank, chan, row = _decode_arrays(controller, batch.hpa)

    banks_per_socket = controller.geom.banks_per_socket
    bank_gid = socket * banks_per_socket + sbank
    chan_gid = socket * (int(chan.max()) + 1) + chan if n else chan

    arrival = np.cumsum(np.floor(batch.cpu_gap_ns * TICKS_PER_NS) / TICKS_PER_NS)
    remote = socket != batch.home_socket
    penalty = np.where(remote, t.t_remote, 0.0)
    write = batch.write
    tag = batch.tag

    if window is not None:
        perm = frfcfs_permutation(bank_gid, row, window)
        bank_gid, chan_gid, row = bank_gid[perm], chan_gid[perm], row[perm]
        arrival, penalty, remote = arrival[perm], penalty[perm], remote[perm]
        write, tag = write[perm], tag[perm]

    bank_segs = _segments(bank_gid)
    chan_segs = _segments(chan_gid)

    # Pass 1: timing-free row-hit classification along each bank's
    # access sequence (bank_segs's stable order IS trace order per bank).
    order = bank_segs[0]
    b_s, r_s = bank_gid[order], row[order]
    same_bank_prev = np.empty(n, dtype=bool)
    same_bank_prev[0] = False
    np.equal(b_s[1:], b_s[:-1], out=same_bank_prev[1:])
    first_touch_s = ~same_bank_prev
    first_touch = np.empty(n, dtype=bool)
    first_touch[order] = first_touch_s
    if controller.page_policy == "closed":
        hit = np.zeros(n, dtype=bool)
        latency_ns = np.full(n, t.idle_latency)
        hold = np.full(n, t.bank_hold)
    else:
        hit_s = np.empty(n, dtype=bool)
        hit_s[0] = False
        hit_s[1:] = same_bank_prev[1:] & (r_s[1:] == r_s[:-1])
        hit = np.empty(n, dtype=bool)
        hit[order] = hit_s
        latency_ns = np.where(
            hit, t.hit_latency, np.where(first_touch, t.idle_latency, t.miss_latency)
        )
        hold = np.where(hit, t.t_burst, t.bank_hold)

    def refresh_shift(s: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = np.floor(s / t.t_refi)
        k_start = k * t.t_refi
        stalled = s - k_start < t.t_rfc
        return np.where(stalled, k_start + t.t_rfc, s), stalled, k

    if window is None:
        # Pass 2: unthrottled completion estimate D0.
        shifted, _, _ = refresh_shift(arrival + penalty)
        begin_est = _bank_chains(_bus_chains(shifted, chan_segs, t.t_burst), hold, bank_segs)
        d0 = begin_est + latency_ns
        # Pass 3a: the MLP throttle (K-delayed running max of D0).
        k_lag = controller.max_outstanding
        throttle = np.full(n, -np.inf)
        if n > k_lag:
            throttle[k_lag:] = np.maximum.accumulate(d0)[:-k_lag]
        now = arrival + np.maximum(0.0, np.maximum.accumulate(throttle - arrival))
        measured_from = now
    else:
        # FR-FCFS: no MLP throttle; the issue clock just never rewinds.
        now = np.maximum.accumulate(arrival)
        measured_from = arrival

    # Pass 3b: final service chains.
    shifted, stalled, k_win = refresh_shift(now + penalty)
    begin = _bank_chains(_bus_chains(shifted, chan_segs, t.t_burst), hold, bank_segs)
    done = begin + latency_ns
    latency = done - measured_from

    result = TraceResult()
    result.accesses = n
    result.writes = int(np.count_nonzero(write))
    result.reads = n - result.writes
    result.row_hits = int(np.count_nonzero(hit))
    result.row_misses = n - result.row_hits
    result.remote_accesses = int(np.count_nonzero(remote))
    result.total_time_ns = float(done.max())
    result.total_latency_ns = float(np.sum(latency))
    result.bytes_transferred = n * controller.LINE_BYTES
    result.banks_touched = int(bank_segs[1].shape[0])
    if np.any(stalled):
        windows = chan_gid[stalled] * np.int64(2**32) + k_win[stalled].astype(np.int64)
        result.refreshes = int(np.unique(windows).shape[0])
    if int(tag.min()) == int(tag.max()):
        # Single-tenant trace (the common run_in_vm case): its per-tag
        # total IS the total (same exact sum), no grouping sort needed.
        result.per_tag[int(tag[0])] = (n, result.total_latency_ns)
    else:
        tags, inverse = np.unique(tag, return_inverse=True)
        counts = np.bincount(inverse)
        totals = np.bincount(inverse, weights=latency)
        for tg, cnt, tot in zip(tags.tolist(), counts.tolist(), totals.tolist()):
            result.per_tag[tg] = (cnt, tot)
    return result
