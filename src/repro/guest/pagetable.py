"""Guest page tables: GVA -> GPA, stored in guest RAM (paper §2.1).

The table pages are ordinary guest-physical frames; every walk step is a
guest memory *read* through the VM (and therefore through the EPT and
the simulated DRAM), so guest page tables are hammerable state exactly
like the paper's SoftTRR/CTA discussion assumes — they are within the
VM's own groups under Siloz, making their corruption an intra-VM
problem, not an escape.

The entry format reuses the x86-64 layout from :mod:`repro.ept.entry`
(present/RWX in the low bits, frame at [51:12], large-page bit 7).
"""

from __future__ import annotations

from typing import Callable

from repro.ept.entry import ENTRIES_PER_PAGE, ENTRY_BYTES, EptEntry as Pte
from repro.errors import EptError, EptViolation
from repro.hv.vm import VirtualMachine
from repro.units import PAGE_2M, PAGE_4K

_LEVELS = 4
_VA_BITS = 48


def _index(gva: int, level: int) -> int:
    shift = 12 + 9 * (_LEVELS - 1 - level)
    return (gva >> shift) & (ENTRIES_PER_PAGE - 1)


class GuestPageTable:
    """One process's address space inside a VM."""

    def __init__(self, vm: VirtualMachine, alloc_frame: Callable[[], int]):
        self.vm = vm
        self._alloc = alloc_frame
        self.table_frames: list[int] = []
        self.root_gpa = self._new_table()
        self.mapped_bytes = 0

    def _new_table(self) -> int:
        gpa = self._alloc()
        if gpa % PAGE_4K:
            raise EptError(f"guest table frame {gpa:#x} not page aligned")
        self.vm.write(gpa, bytes(PAGE_4K))
        self.table_frames.append(gpa)
        return gpa

    def _read_entry(self, table_gpa: int, index: int) -> Pte:
        raw = self.vm.read(table_gpa + index * ENTRY_BYTES, ENTRY_BYTES)
        return Pte.unpack(raw)

    def _write_entry(self, table_gpa: int, index: int, entry: Pte) -> None:
        self.vm.write(table_gpa + index * ENTRY_BYTES, entry.pack())

    def map(self, gva: int, gpa: int, size: int) -> None:
        """Map [gva, gva+size) -> [gpa, gpa+size) with 4 KiB pages
        (guest OSes also use 2 MiB pages; 4 KiB keeps the guest layer
        simple and is irrelevant to the host-side claims)."""
        if size <= 0 or gva % PAGE_4K or gpa % PAGE_4K or size % PAGE_4K:
            raise EptError("guest mapping must be page aligned")
        if gva + size > 1 << _VA_BITS:
            raise EptError("GVA beyond canonical space")
        for off in range(0, size, PAGE_4K):
            self._map_one(gva + off, gpa + off)
        self.mapped_bytes += size

    def _map_one(self, gva: int, gpa: int) -> None:
        table = self.root_gpa
        for level in range(_LEVELS - 1):
            entry = self._read_entry(table, _index(gva, level))
            if not entry.present:
                child = self._new_table()
                self._write_entry(table, _index(gva, level), Pte.make(child))
                table = child
            else:
                table = entry.target_hpa
        leaf = self._read_entry(table, _index(gva, _LEVELS - 1))
        if leaf.present:
            raise EptError(f"GVA {gva:#x} already mapped")
        self._write_entry(table, _index(gva, _LEVELS - 1), Pte.make(gpa))

    def translate(self, gva: int) -> int:
        """GVA -> GPA by walking the in-RAM tables."""
        if not 0 <= gva < 1 << _VA_BITS:
            raise EptViolation(f"GVA {gva:#x} non-canonical")
        table = self.root_gpa
        for level in range(_LEVELS):
            entry = self._read_entry(table, _index(gva, level))
            if not entry.present:
                raise EptViolation(f"GVA {gva:#x} not mapped (level {level})")
            if level == _LEVELS - 1:
                return entry.target_hpa + (gva & (PAGE_4K - 1))
            if entry.large:
                return entry.target_hpa + (gva & (PAGE_2M - 1))
            table = entry.target_hpa

    def translate_to_hpa(self, gva: int) -> int:
        """The full §2.1 chain: GVA -> GPA (guest tables) -> HPA (EPT)."""
        return self.vm.translate(self.translate(gva))
