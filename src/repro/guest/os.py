"""A tiny guest OS: frame allocation and processes (paper §2.1, §9).

Enough of an OS to host multiple isolated-from-each-other-in-theory
processes inside one VM: a guest-physical frame allocator over the RAM
region and per-process page tables.  Process reads/writes/hammers go
GVA -> GPA -> HPA -> simulated DRAM, making the intra-VM co-location
trade-off of §9 directly observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HvError, OutOfMemoryError
from repro.guest.pagetable import GuestPageTable
from repro.hv.vm import VirtualMachine
from repro.units import PAGE_4K

#: GPA range reserved for the guest kernel itself (frame allocator
#: metadata, initial stacks, ...); user frames start above it.
KERNEL_RESERVED = 64 * 1024


@dataclass
class GuestProcess:
    """One process: a name, a page table, and its mapped extent."""

    name: str
    pagetable: GuestPageTable
    heap_top: int = 0
    frames: list[int] = field(default_factory=list)

    def read(self, gva: int, length: int) -> bytes:
        gpa = self.pagetable.translate(gva)
        return self.pagetable.vm.read(gpa, length)

    def write(self, gva: int, data: bytes) -> None:
        gpa = self.pagetable.translate(gva)
        self.pagetable.vm.write(gpa, data)

    def hammer(self, gva: int, activations: int):
        """Hammer through the process's own virtual mapping — what a
        malicious userspace program inside the guest can do."""
        gpa = self.pagetable.translate(gva)
        return self.pagetable.vm.hammer(gpa, activations)

    def hpa_of(self, gva: int) -> int:
        return self.pagetable.translate_to_hpa(gva)


class GuestOS:
    """The in-VM kernel: owns guest-physical frames, spawns processes."""

    def __init__(self, vm: VirtualMachine):
        self.vm = vm
        ram = next(r for r in vm.regions if r.name == "ram")
        self._next_frame = KERNEL_RESERVED
        self._ram_end = ram.size
        self._free: list[int] = []
        self.processes: dict[str, GuestProcess] = {}

    # ------------------------------------------------------------------
    # Frame allocator (guest-physical)
    # ------------------------------------------------------------------

    def alloc_frame(self) -> int:
        """Hand out one free guest-physical 4 KiB frame."""
        if self._free:
            return self._free.pop()
        if self._next_frame + PAGE_4K > self._ram_end:
            raise OutOfMemoryError("guest RAM exhausted")
        frame = self._next_frame
        self._next_frame += PAGE_4K
        return frame

    def free_frame(self, gpa: int) -> None:
        if gpa % PAGE_4K or not KERNEL_RESERVED <= gpa < self._ram_end:
            raise HvError(f"bad guest frame {gpa:#x}")
        self._free.append(gpa)

    @property
    def free_bytes(self) -> int:
        return (self._ram_end - self._next_frame) + len(self._free) * PAGE_4K

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, name: str, *, heap_pages: int = 8, base_gva: int = 0x400000) -> GuestProcess:
        """Create a process with *heap_pages* of anonymous memory mapped
        at *base_gva*."""
        if name in self.processes:
            raise HvError(f"process {name!r} already exists")
        if heap_pages <= 0:
            raise HvError("heap_pages must be positive")
        pagetable = GuestPageTable(self.vm, self.alloc_frame)
        process = GuestProcess(name=name, pagetable=pagetable, heap_top=base_gva)
        for i in range(heap_pages):
            frame = self.alloc_frame()
            process.frames.append(frame)
            pagetable.map(base_gva + i * PAGE_4K, frame, PAGE_4K)
        process.heap_top = base_gva + heap_pages * PAGE_4K
        self.processes[name] = process
        return process

    def kill(self, name: str) -> None:
        process = self.processes.pop(name, None)
        if process is None:
            raise HvError(f"no such process {name!r}")
        for frame in process.frames + process.pagetable.table_frames:
            self.free_frame(frame)
