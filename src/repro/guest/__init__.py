"""Guest operating-system layer (paper §2.1, §9).

Completes the three-address-type story: guest *virtual* addresses map to
guest *physical* addresses through page tables the guest OS keeps in its
own RAM, which map to *host physical* addresses through the EPT.  The
layer exists for two reasons:

- fidelity: GVA -> GPA -> HPA walks exercise both tables against the
  simulated DRAM bits;
- the §9 trade-off: Siloz provides *inter*-VM protection only.  Guest
  processes share the VM's subarray groups, so one process's hammering
  can flip another's bits — demonstrated in the tests, exactly as the
  paper concedes ("Siloz can increase intra-VM subarray co-location").
"""

from repro.guest.pagetable import GuestPageTable
from repro.guest.os import GuestOS, GuestProcess

__all__ = ["GuestOS", "GuestPageTable", "GuestProcess"]
