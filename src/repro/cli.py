"""Command-line interface: ``python -m repro <command>``.

Gives operators the paper's experiments without writing code:

- ``info`` — simulated hardware and Siloz topology summary,
- ``attack`` — a containment campaign on Siloz or the baseline,
- ``perf`` — regenerate Figure 4/5/6/7 data at chosen fidelity,
- ``overheads`` — the §3/§5.4/§6 reservation arithmetic,
- ``health`` — the CE-storm fault-injection + live-offlining scenario,
- ``softrefresh`` — the §8.3 deadline study,
- ``trace`` — run a traced scenario and summarize (or differentially
  compare) its event stream,
- ``fleet`` — a multi-host campaign: subarray-group-aware placement,
  admission control, and per-host simulations sharded across supervised
  workers, with optional chaos (``--chaos-seed``) and checkpoint/resume
  (``--journal`` / ``--resume``),
- ``chaos`` — print the chaos plan a seeded campaign would apply,
- ``bakeoff`` — run identical seeded fleet campaigns under each
  registered Rowhammer mitigation (Siloz, PARA, CATT, domain-buddy,
  guard-row striping, and the unmitigated baseline) and print the
  containment / capacity-loss / overhead comparison table,
- ``serve`` — run the fleet as a long-lived request/response daemon on
  a TCP port or UNIX socket (JSON-line protocol, graceful drain on
  SIGTERM/SIGINT),
- ``loadgen`` — drive a serve daemon (or ``--spawn`` one in-process)
  with a seeded concurrent request mix and verify the async run
  replays bit-identically through the synchronous fleet path.

Any command can be observed: ``--trace FILE`` writes the JSONL event
log, ``--chrome-trace FILE`` writes a ``chrome://tracing`` file, and
``--metrics`` dumps the metrics registry after the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.units import MiB, fmt_bytes


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core import SilozHypervisor
    from repro.dram.geometry import DRAMGeometry
    from repro.hv import Machine
    from repro.mm.numa import NodeKind

    print("Paper-scale geometry (Table 2):")
    print(DRAMGeometry.paper_default().describe())
    print("\nBooting Siloz on the bit-level small machine:")
    hv = SilozHypervisor.boot(Machine.small(seed=args.seed, backend=args.backend))
    print(hv.describe())
    for kind in NodeKind:
        nodes = hv.topology.nodes_of_kind(kind)
        if nodes:
            print(f"  {kind.value}: {len(nodes)} node(s), "
                  f"{fmt_bytes(sum(n.total_bytes for n in nodes))} total")
    print(f"  guard rows offlined: {fmt_bytes(hv.offline.total_bytes())}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attack import attack_from_vm
    from repro.core import SilozHypervisor, audit_hypervisor
    from repro.hv import BaselineHypervisor, Machine, VmSpec
    from repro.units import KiB

    machine = Machine.small(seed=args.seed, backend=args.backend)
    if args.hypervisor == "siloz":
        hv = SilozHypervisor.boot(machine)
    else:
        hv = BaselineHypervisor(machine, backing_page_bytes=64 * KiB)
    attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
    hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
    print(f"hypervisor: {args.hypervisor}; fuzzing {args.budget} patterns...")
    outcome = attack_from_vm(
        hv, attacker, seed=args.seed, pattern_budget=args.budget
    )
    print(outcome.summary())
    verdict = "CONTAINED" if outcome.contained and not outcome.victim_flips else "ESCAPED"
    print(f"verdict: {verdict}")
    if args.hypervisor == "siloz":
        violations = audit_hypervisor(hv)
        print(f"isolation audit: {violations or 'clean'}")
        return 0 if verdict == "CONTAINED" and not violations else 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.eval import (
        baseline_system,
        perf_experiment,
        render_figure,
        siloz_system,
    )
    from repro.workloads import EXEC_TIME_SUITES, THROUGHPUT_SUITES

    figure = args.figure
    metric = "time" if figure in (4, 6) else "bandwidth"
    workloads = list(EXEC_TIME_SUITES if figure in (4, 6) else THROUGHPUT_SUITES)
    if figure in (4, 5):
        systems = [
            baseline_system(seed=args.seed, backend=args.backend),
            siloz_system(seed=args.seed, backend=args.backend),
        ]
        baseline = "baseline"
    else:
        systems = [
            siloz_system(
                name="siloz-1024",
                rows_per_subarray=128,
                seed=args.seed,
                backend=args.backend,
            ),
            siloz_system(
                name="siloz-512",
                rows_per_subarray=64,
                seed=args.seed,
                backend=args.backend,
            ),
            siloz_system(
                name="siloz-2048",
                rows_per_subarray=256,
                seed=args.seed,
                backend=args.backend,
            ),
        ]
        baseline = "siloz-1024"
    comparison = perf_experiment(
        systems, workloads, metric=metric, trials=args.trials, accesses=args.accesses
    )
    print(
        render_figure(
            comparison,
            baseline=baseline,
            title=f"Figure {figure} ({metric}, {args.trials} trials, "
            f"{args.accesses} accesses/trial)",
        )
    )
    return 0


def _cmd_overheads(args: argparse.Namespace) -> int:
    from repro.core import SilozConfig
    from repro.dram.geometry import DRAMGeometry
    from repro.dram.transforms import (
        artificial_group_reservation,
        scrambling_offline_fraction,
        zebram_overhead,
    )
    from repro.ept import ept_page_count

    geom = DRAMGeometry.paper_default()
    cfg = SilozConfig.paper_default()
    print(f"EPT+guard reservation: {cfg.reserved_fraction(geom) * 100:.4f}% of DRAM")
    print(
        f"EPT pages for a packed socket: {ept_page_count(geom.socket_bytes)} "
        f"(row group holds {geom.row_group_bytes // 4096})"
    )
    for size in (513, 1023, 2047):
        print(
            f"subarray={size} rows: scrambling removal "
            f"{scrambling_offline_fraction(size) * 100:.2f}%, artificial groups "
            f"{artificial_group_reservation(size)[1] * 100:.2f}%"
        )
    print(f"ZebRAM overhead: 1:1={zebram_overhead(1):.0%}, 4:1={zebram_overhead(4):.0%}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlanError, run_ce_storm_scenario

    try:
        result = run_ce_storm_scenario(
            seed=args.seed,
            storm_errors=args.storm_errors,
            interval=args.interval,
            backend=args.backend,
        )
    except FaultPlanError as exc:
        print(f"repro health: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    if args.transcript:
        for line in result.transcript:
            print(line)
    else:
        for line in result.transcript[-8:]:
            print(line)
    print(f"replay key: {result.replay_key()}")
    return 0 if result.success else 1


def _run_traced_scenario(args: argparse.Namespace, backend: str):
    """Run the selected ``trace`` scenario on *backend* under a fresh
    tracer; returns (events, dropped)."""
    from repro import obs

    obs.enable(reset=True)
    if args.scenario == "health":
        from repro.faults import run_ce_storm_scenario

        run_ce_storm_scenario(seed=args.seed, backend=backend)
    else:  # attack
        from repro.attack import attack_from_vm
        from repro.core import SilozHypervisor
        from repro.hv import Machine, VmSpec

        hv = SilozHypervisor.boot(Machine.small(seed=args.seed, backend=backend))
        attacker = hv.create_vm(VmSpec(name="attacker", memory_bytes=2 * MiB))
        hv.create_vm(VmSpec(name="victim", memory_bytes=2 * MiB))
        attack_from_vm(hv, attacker, seed=args.seed, pattern_budget=args.budget)
    tr = obs.tracer()
    return list(tr.events()), tr.dropped


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import render_summary, sequence_signature, summarize

    if args.compare_backends:
        from repro.engine.backend import SimBackend

        backends = tuple(b.value for b in SimBackend)
        sigs = {}
        for backend in backends:
            events, _ = _run_traced_scenario(args, backend)
            sigs[backend] = sequence_signature(events)
            print(
                f"{backend}: {len(events)} event(s), "
                f"{len(sigs[backend])} deterministic"
            )
        diverged = [b for b in backends[1:] if sigs[b] != sigs["scalar"]]
        if diverged:
            print(
                f"trace: {', '.join(diverged)} event sequence(s) DIVERGED "
                "from scalar",
                file=sys.stderr,
            )
            return 1
        print(f"trace: {', '.join(backends)} event sequences identical")
        return 0
    events, dropped = _run_traced_scenario(args, args.backend)
    print(render_summary(summarize(events), dropped=dropped))
    return 0


def _fleet_config(args: argparse.Namespace):
    from repro.fleet import CampaignConfig

    return CampaignConfig(
        hosts=args.hosts,
        vms=args.vms,
        policy=args.policy,
        scenario=args.scenario,
        backend=args.backend,
        seed=args.seed,
        workers=args.workers,
        budget=args.budget,
        queue_depth=args.queue_depth,
        max_retries=args.max_retries,
        chaos_seed=getattr(args, "chaos_seed", None),
        chaos_events=getattr(args, "chaos_events", 4),
        mitigation=getattr(args, "mitigation", "siloz"),
    )


#: ``--shards auto``: campaigns at or above this host count take the
#: cluster path (sharded admission over logical twins, streaming merge).
CLUSTER_AUTO_HOSTS = 64


def _cluster_shards(args: argparse.Namespace) -> int:
    """Resolve ``--shards`` to an effective shard count (0 = classic)."""
    raw = getattr(args, "shards", "auto")
    if raw == "auto":
        # Chaos/journal/resume are classic-campaign features; auto never
        # silently switches them onto the cluster path.
        classic_only = (
            getattr(args, "chaos_seed", None) is not None
            or getattr(args, "journal", None) is not None
            or getattr(args, "resume", None) is not None
        )
        if classic_only or args.hosts < CLUSTER_AUTO_HOSTS:
            return 0
        return min(16, args.hosts)
    shards = int(raw)
    return 0 if shards <= 1 else shards


def _cmd_fleet_cluster(args: argparse.Namespace, shards: int) -> int:
    from repro.errors import FleetError
    from repro.fleet import ClusterConfig, run_cluster_campaign

    for flag in ("chaos_seed", "journal", "resume"):
        if getattr(args, flag, None) is not None:
            print(
                f"repro fleet: --{flag.replace('_', '-')} is not supported "
                "in cluster mode (--shards > 1)",
                file=sys.stderr,
            )
            return 2
    try:
        config = ClusterConfig(
            hosts=args.hosts,
            vms=args.vms,
            policy=args.policy,
            scenario=args.scenario,
            backend=args.backend,
            seed=args.seed,
            workers=args.workers,
            budget=args.budget,
            queue_depth=args.queue_depth,
            max_retries=args.max_retries,
            mitigation=getattr(args, "mitigation", "siloz"),
            shards=shards,
        )
        report = run_cluster_campaign(config, pool=args.pool)
    except FleetError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2
    print(report.render_text())
    return 0 if report.hosts_failed == 0 else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.errors import ChaosError, FleetError
    from repro.fleet import FleetCampaign

    shards = _cluster_shards(args)
    if shards:
        return _cmd_fleet_cluster(args, shards)
    resume = getattr(args, "resume", None)
    try:
        campaign = FleetCampaign(_fleet_config(args), pool=args.pool)
        report = campaign.run(
            journal_path=getattr(args, "journal", None), resume_path=resume
        )
    except ChaosError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2
    except FleetError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2
    if campaign.resumed_shards:
        print(
            f"resume: {campaign.resumed_shards} shard(s) replayed from "
            f"journal {resume}"
        )
    print(report.render_text())
    print(f"merge digest: {report.digest()}")
    # Chaos-planned crashes are handled (evacuated + audited) outcomes,
    # not campaign failures; unplanned host failures or a dirty audit
    # still fail the run.
    unplanned = report.hosts_failed - report.hosts_crashed
    return 0 if unplanned == 0 and report.audit_clean else 1


def _cmd_bakeoff(args: argparse.Namespace) -> int:
    from repro.errors import FleetError, MitigationError
    from repro.mitigations.bakeoff import BakeoffConfig, run_bakeoff

    mitigations: tuple = ()
    if args.mitigations:
        mitigations = tuple(
            name.strip() for name in args.mitigations.split(",") if name.strip()
        )
    try:
        config = BakeoffConfig(
            mitigations=mitigations,
            hosts=args.hosts,
            vms=args.vms,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            budget=args.budget,
            policy=args.policy,
            scenario=args.scenario,
            storm_errors=args.storm_errors,
        )
        report = run_bakeoff(config)
    except (MitigationError, FleetError) as exc:
        print(f"repro bakeoff: {exc}", file=sys.stderr)
        return 2
    print(report.render_table())
    print(f"bakeoff digest: {report.digest()}")
    return 0 if report.clean else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosPlan

    plan = ChaosPlan.generate(
        args.chaos_seed if args.chaos_seed is not None else args.seed,
        args.hosts,
        events=args.chaos_events,
        arrivals=args.vms,
    )
    print(plan.describe())
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serve import ServiceConfig

    return ServiceConfig(
        hosts=args.hosts,
        policy=args.policy,
        backend=args.backend,
        seed=args.seed,
        sockets=args.sockets,
        queue_depth=args.queue_depth,
        max_retries=args.max_retries,
        mitigation=args.mitigation,
        attack_budget=args.attack_budget,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.serve import main_serve

    try:
        return main_serve(
            _serve_config(args),
            host=args.bind,
            port=args.port,
            socket_path=args.socket,
        )
    except ServeError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ServeError
    from repro.serve import LoadMix, LoadgenConfig, run_loadgen, serve_and_load

    try:
        config = LoadgenConfig(
            requests=args.requests,
            connections=args.connections,
            window=args.window,
            seed=args.seed,
            mix=LoadMix.parse(args.mix),
            attack_budget=args.attack_budget,
            verify_replay=not args.no_verify,
        )
        if args.spawn:
            report = asyncio.run(
                serve_and_load(_serve_config(args), config)
            )
        else:
            if args.port == 0 and args.socket is None:
                raise ServeError(
                    "repro loadgen needs --port/--socket, or --spawn"
                )
            report = asyncio.run(
                run_loadgen(
                    config,
                    host=args.bind,
                    port=args.port,
                    socket_path=args.socket,
                )
            )
    except ServeError as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2
    except (ConnectionRefusedError, FileNotFoundError) as exc:
        print(f"repro loadgen: cannot connect: {exc}", file=sys.stderr)
        return 2
    print(report.render_text())
    if args.json:
        import json

        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"loadgen: wrote report to {args.json}")
    if config.verify_replay and not report.replay_verified:
        print("loadgen: replay digest MISMATCH", file=sys.stderr)
        return 1
    return 0


def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    """Daemon/fleet options shared by ``serve`` and ``loadgen --spawn``."""
    parser.add_argument(
        "--bind", default="127.0.0.1", help="TCP bind/connect address"
    )
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = unused)"
    )
    parser.add_argument(
        "--socket", metavar="PATH", default=None, help="UNIX socket path"
    )
    parser.add_argument("--hosts", type=int, default=2, help="fleet hosts")
    parser.add_argument(
        "--sockets", type=int, default=1, help="DRAM sockets per host"
    )
    parser.add_argument(
        "--policy",
        choices=("first-fit", "best-fit", "spread"),
        default="best-fit",
        help="placement scheduler",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=32, help="admission queue bound"
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, help="placement retries"
    )
    parser.add_argument(
        "--mitigation", default="siloz", help="per-host Rowhammer mitigation"
    )
    parser.add_argument(
        "--attack-budget",
        type=int,
        default=2,
        help="fuzzer patterns per run_attack request",
    )


def _cmd_softrefresh(args: argparse.Namespace) -> int:
    from repro.core.softrefresh import RefreshScheme, compare_schemes

    results = compare_schemes(duration_s=args.duration, seed=args.seed)
    for scheme in RefreshScheme:
        log = results[scheme]
        print(
            f"{scheme.value:>10}: misses={log.missed_deadlines}/{log.refreshes} "
            f"min={log.min_interval_ms:.3f}ms max={log.max_interval_ms:.3f}ms "
            f"{'VULNERABLE' if log.vulnerable else 'safe'}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Siloz (SOSP 2023) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0, help="global RNG seed")
    from repro.engine.backend import SimBackend

    parser.add_argument(
        "--backend",
        choices=tuple(b.value for b in SimBackend),
        default="scalar",
        help="simulation hot path: 'scalar' reference, 'batched' engine, "
        "or numpy 'vectorized' kernels (identical results, see README "
        "Performance)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="stream library logs (boot, placement, attacks, MCEs)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record the run's trace events as JSON Lines to FILE",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="record the run as a chrome://tracing / Perfetto JSON file",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry after the command finishes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show simulated hardware and topology")

    attack = sub.add_parser("attack", help="run a containment campaign")
    attack.add_argument(
        "--hypervisor", choices=("siloz", "baseline"), default="siloz"
    )
    attack.add_argument("--budget", type=int, default=40, help="fuzzer patterns")

    perf = sub.add_parser("perf", help="regenerate a performance figure")
    perf.add_argument("--figure", type=int, choices=(4, 5, 6, 7), required=True)
    perf.add_argument("--trials", type=int, default=3)
    perf.add_argument("--accesses", type=int, default=8000)

    sub.add_parser("overheads", help="reservation arithmetic (O1/O2)")

    health = sub.add_parser(
        "health", help="CE-storm fault-injection + live-offlining scenario"
    )
    health.add_argument(
        "--storm-errors", type=int, default=20, help="correctable errors to inject"
    )
    health.add_argument(
        "--interval", type=float, default=0.004, help="seconds between errors"
    )
    health.add_argument(
        "--transcript", action="store_true", help="print the full run transcript"
    )

    refresh = sub.add_parser("softrefresh", help="§8.3 deadline study")
    refresh.add_argument("--duration", type=float, default=30.0, help="seconds")

    trace = sub.add_parser(
        "trace", help="run a traced scenario; summarize or compare backends"
    )
    trace.add_argument(
        "--scenario",
        choices=("health", "attack"),
        default="health",
        help="which scenario to trace",
    )
    trace.add_argument(
        "--budget", type=int, default=10, help="fuzzer patterns (attack scenario)"
    )
    trace.add_argument(
        "--compare-backends",
        action="store_true",
        help="run the scenario on both backends and fail if the "
        "deterministic event sequences differ",
    )

    fleet = sub.add_parser(
        "fleet", help="multi-host placement + parallel campaign execution"
    )
    fleet.add_argument("--hosts", type=int, default=4, help="hosts in the fleet")
    fleet.add_argument("--vms", type=int, default=12, help="tenant arrival trace length")
    fleet.add_argument(
        "--policy",
        choices=("first-fit", "best-fit", "spread"),
        default="best-fit",
        help="placement scheduler",
    )
    fleet.add_argument(
        "--scenario",
        choices=("attack", "health"),
        default="attack",
        help="per-host campaign to run after placement",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-host simulation (merged results "
        "are bit-identical at any worker count)",
    )
    fleet.add_argument(
        "--budget", type=int, default=6, help="fuzzer patterns per host (attack)"
    )
    fleet.add_argument(
        "--queue-depth", type=int, default=64, help="admission queue bound"
    )
    fleet.add_argument(
        "--max-retries", type=int, default=2, help="placement retries before eviction"
    )
    fleet.add_argument(
        "--mitigation",
        default="siloz",
        help="Rowhammer mitigation every host boots with (see "
        "'repro bakeoff' for the registered names)",
    )
    fleet.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="generate and apply a seeded chaos plan (host crashes, worker "
        "deaths, UE storms, digest corruption, queue stalls)",
    )
    fleet.add_argument(
        "--chaos-events",
        type=int,
        default=4,
        help="events in the generated chaos plan",
    )
    fleet.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="checkpoint completed shards to a JSONL journal FILE",
    )
    fleet.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume a killed campaign: replay completed shards from the "
        "journal FILE, run only what's missing, keep journalling to it",
    )
    fleet.add_argument(
        "--pool",
        choices=("persistent", "spawn"),
        default="persistent",
        help="parallel execution engine: persistent warm worker pool "
        "(default) or the per-task spawn path (bisection escape hatch)",
    )
    fleet.add_argument(
        "--shards",
        default="auto",
        help="admission shards for cluster mode (>1 switches to sharded "
        "admission over logical capacity twins with a streaming merge; "
        "'auto' = cluster mode at >= 64 hosts unless chaos/journal/resume "
        "is requested; 1 forces the classic campaign)",
    )

    bakeoff = sub.add_parser(
        "bakeoff",
        help="compare Rowhammer mitigations on identical seeded fleets",
    )
    bakeoff.add_argument(
        "--mitigations",
        default="",
        metavar="CSV",
        help="comma-separated mitigation names (default: all registered)",
    )
    bakeoff.add_argument("--hosts", type=int, default=4, help="hosts per campaign")
    bakeoff.add_argument(
        "--vms", type=int, default=8, help="tenant arrival trace length"
    )
    bakeoff.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per campaign (digest is worker-independent)",
    )
    bakeoff.add_argument(
        "--budget",
        type=int,
        default=150,
        help="fuzzer patterns per attacked host (150 reliably leaks on the "
        "unmitigated baseline)",
    )
    bakeoff.add_argument(
        "--policy",
        choices=("first-fit", "best-fit", "spread"),
        default="best-fit",
        help="placement scheduler",
    )
    bakeoff.add_argument(
        "--scenario",
        choices=("attack", "health"),
        default="attack",
        help="per-host campaign scenario",
    )
    bakeoff.add_argument(
        "--storm-errors", type=int, default=20, help="CE storm size (health)"
    )

    chaos = sub.add_parser(
        "chaos",
        help="print the chaos plan a seeded fleet campaign would apply",
    )
    chaos.add_argument("--hosts", type=int, default=4, help="hosts in the fleet")
    chaos.add_argument("--vms", type=int, default=12, help="arrival trace length")
    chaos.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="chaos plan seed (defaults to --seed)",
    )
    chaos.add_argument(
        "--chaos-events", type=int, default=4, help="events in the plan"
    )

    serve = sub.add_parser(
        "serve",
        help="run the fleet as a long-lived request/response daemon",
    )
    _add_serve_options(serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a serve daemon with a seeded concurrent request mix",
    )
    _add_serve_options(loadgen)
    loadgen.add_argument(
        "--spawn",
        action="store_true",
        help="spawn an in-process daemon on an ephemeral port instead of "
        "connecting to --port/--socket",
    )
    loadgen.add_argument(
        "--requests", type=int, default=10_000, help="total requests to issue"
    )
    loadgen.add_argument(
        "--connections", type=int, default=8, help="pipelined connections"
    )
    loadgen.add_argument(
        "--window", type=int, default=32, help="in-flight window per connection"
    )
    loadgen.add_argument(
        "--mix",
        default="",
        metavar="CSV",
        help="request mix weights, e.g. place=55,evict=25,attack=2",
    )
    loadgen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the replay-digest verification pass",
    )
    loadgen.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the loadgen report as JSON to FILE",
    )

    return parser


_HANDLERS = {
    "info": _cmd_info,
    "attack": _cmd_attack,
    "perf": _cmd_perf,
    "overheads": _cmd_overheads,
    "health": _cmd_health,
    "softrefresh": _cmd_softrefresh,
    "trace": _cmd_trace,
    "fleet": _cmd_fleet,
    "chaos": _cmd_chaos,
    "bakeoff": _cmd_bakeoff,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.verbose:
        from repro.log import enable_console_logging

        enable_console_logging()
    observing = bool(args.trace or args.chrome_trace or args.metrics)
    if observing or args.command == "trace":
        from repro import obs

        obs.enable(reset=True)
    code = _HANDLERS[args.command](args)
    if observing:
        from repro import obs
        from repro.obs.export import write_chrome_trace, write_jsonl

        tr = obs.tracer()
        events = list(tr.events()) if tr is not None else []
        if args.trace:
            n = write_jsonl(args.trace, events)
            print(f"trace: wrote {n} event(s) to {args.trace}")
        if args.chrome_trace:
            n = write_chrome_trace(args.chrome_trace, events)
            print(f"trace: wrote {n} timeline event(s) to {args.chrome_trace}")
        if args.metrics:
            print(obs.render_metrics())
        obs.disable()
    return code
