"""Workload generators and the performance runner (paper §7.2-§7.3).

The paper measures redis+YCSB, Hadoop terasort, SPEC CPU 2017, PARSEC
3.0, memcached, SysBench mySQL and Intel MLC.  Real binaries cannot run
here; what *can* is what determines the paper's results: each suite's
memory-access signature (footprint, locality, read/write mix, compute
intensity).  :mod:`repro.workloads.suites` encodes those signatures,
:mod:`repro.workloads.trace` turns them into access streams over a VM's
guest-physical space, and :mod:`repro.workloads.runner` replays them
through the DDR4 timing model on whichever hypervisor (baseline, Siloz,
Siloz-512/-2048) backs the VM.
"""

from repro.workloads.trace import (
    GpaTranslator,
    TraceSpec,
    generate_trace,
    generate_trace_batch,
)
from repro.workloads.suites import (
    EXEC_TIME_SUITES,
    THROUGHPUT_SUITES,
    suite,
    suite_names,
)
from repro.workloads.runner import WorkloadResult, run_in_vm

__all__ = [
    "EXEC_TIME_SUITES",
    "GpaTranslator",
    "THROUGHPUT_SUITES",
    "TraceSpec",
    "WorkloadResult",
    "generate_trace",
    "generate_trace_batch",
    "run_in_vm",
    "suite",
    "suite_names",
]
