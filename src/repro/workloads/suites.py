"""The paper's workload suites as trace signatures (§7.2, §7.3).

Parameters follow each suite's published character:

- **YCSB on redis** (A update-heavy 50/50, B read-heavy 95/5, C read-only,
  D read-latest with a hot tail, E short scans, F read-modify-write):
  point lookups over a big keyspace with Zipfian hotness — low spatial
  locality, hot-set reuse.
- **terasort**: streaming sort phases — high sequential locality, heavy
  writes, large footprint.
- **SPEC CPU 2017 (speed)**: geometric mix of compute-bound and
  memory-bound codes — modelled as moderate locality with high CPU gaps.
- **PARSEC 3.0**: parallel kernels with working-set reuse.
- **memcached**: tiny random GET-dominated requests.
- **SysBench mySQL**: OLTP point queries + updates with index locality.
- **Intel MLC** (mlc-reads / 3:1 / 2:1 / 1:1 / stream): pure bandwidth
  streams at fixed read:write ratios, zero think time.

Footprints are expressed as fractions of VM RAM at run time; the
figures' claims are about *relative* timing (Siloz vs baseline), which
these signatures preserve.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.trace import TraceSpec

# footprint_bytes below is a one-line placeholder; the runner replaces
# it with a fraction of the VM's RAM via ``suite(footprint_bytes=...)``.
_F = 64


def _ycsb(name: str, read_ratio: float, locality: float, hot_prob: float) -> TraceSpec:
    return TraceSpec(
        name=name,
        footprint_bytes=_F,
        read_ratio=read_ratio,
        locality=locality,
        hot_fraction=0.05,
        hot_prob=hot_prob,
        cpu_gap_ns=25.0,
        noise=0.012,
    )


_SUITES: dict[str, TraceSpec] = {
    # --- execution-time suites (Fig. 4) -------------------------------
    "redis-a": _ycsb("redis-a", read_ratio=0.5, locality=0.05, hot_prob=0.7),
    "redis-b": _ycsb("redis-b", read_ratio=0.95, locality=0.05, hot_prob=0.7),
    "redis-c": _ycsb("redis-c", read_ratio=1.0, locality=0.05, hot_prob=0.7),
    "redis-d": _ycsb("redis-d", read_ratio=0.95, locality=0.05, hot_prob=0.85),
    "redis-e": _ycsb("redis-e", read_ratio=0.95, locality=0.55, hot_prob=0.5),
    "redis-f": _ycsb("redis-f", read_ratio=0.5, locality=0.05, hot_prob=0.7),
    "terasort": TraceSpec(
        name="terasort",
        footprint_bytes=_F,
        read_ratio=0.55,
        locality=0.9,
        hot_fraction=0.02,
        hot_prob=0.1,
        cpu_gap_ns=12.0,
        noise=0.015,
    ),
    "spec17": TraceSpec(
        name="spec17",
        footprint_bytes=_F,
        read_ratio=0.75,
        locality=0.6,
        hot_fraction=0.15,
        hot_prob=0.5,
        cpu_gap_ns=45.0,
        noise=0.010,
    ),
    "parsec": TraceSpec(
        name="parsec",
        footprint_bytes=_F,
        read_ratio=0.7,
        locality=0.5,
        hot_fraction=0.2,
        hot_prob=0.6,
        cpu_gap_ns=30.0,
        noise=0.012,
    ),
    # --- throughput suites (Fig. 5) ------------------------------------
    "memcached": TraceSpec(
        name="memcached",
        footprint_bytes=_F,
        read_ratio=0.9,
        locality=0.1,
        hot_fraction=0.05,
        hot_prob=0.8,
        cpu_gap_ns=15.0,
        noise=0.012,
    ),
    "mysql": TraceSpec(
        name="mysql",
        footprint_bytes=_F,
        read_ratio=0.7,
        locality=0.3,
        hot_fraction=0.1,
        hot_prob=0.6,
        cpu_gap_ns=25.0,
        noise=0.012,
    ),
    "mlc-reads": TraceSpec(
        name="mlc-reads",
        footprint_bytes=_F,
        read_ratio=1.0,
        locality=0.97,
        cpu_gap_ns=0.0,
        noise=0.008,
    ),
    "mlc-3:1": TraceSpec(
        name="mlc-3:1",
        footprint_bytes=_F,
        read_ratio=0.75,
        locality=0.97,
        cpu_gap_ns=0.0,
        noise=0.008,
    ),
    "mlc-2:1": TraceSpec(
        name="mlc-2:1",
        footprint_bytes=_F,
        read_ratio=2 / 3,
        locality=0.97,
        cpu_gap_ns=0.0,
        noise=0.008,
    ),
    "mlc-1:1": TraceSpec(
        name="mlc-1:1",
        footprint_bytes=_F,
        read_ratio=0.5,
        locality=0.97,
        cpu_gap_ns=0.0,
        noise=0.008,
    ),
    "mlc-stream": TraceSpec(
        name="mlc-stream",
        footprint_bytes=_F,
        read_ratio=2 / 3,  # triad: two loads, one store
        locality=0.99,
        cpu_gap_ns=2.0,
        noise=0.008,
    ),
}

#: Fig. 4's x-axis (execution time), in paper order.
EXEC_TIME_SUITES: tuple[str, ...] = (
    "redis-a",
    "redis-b",
    "redis-c",
    "redis-d",
    "redis-e",
    "redis-f",
    "terasort",
    "spec17",
    "parsec",
)

#: Fig. 5's x-axis (throughput).
THROUGHPUT_SUITES: tuple[str, ...] = (
    "memcached",
    "mysql",
    "mlc-reads",
    "mlc-3:1",
    "mlc-2:1",
    "mlc-1:1",
    "mlc-stream",
)


def suite_names() -> list[str]:
    """All defined workload names."""
    return list(_SUITES)


def suite(name: str, *, footprint_bytes: int | None = None) -> TraceSpec:
    """Fetch a suite, resolving its footprint to *footprint_bytes*."""
    spec = _SUITES.get(name)
    if spec is None:
        raise WorkloadError(f"unknown workload {name!r}; know {sorted(_SUITES)}")
    if footprint_bytes is None:
        return spec
    from dataclasses import replace

    return replace(spec, footprint_bytes=footprint_bytes)
