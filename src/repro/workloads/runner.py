"""Replay workloads inside VMs through the timing model (§7.2, §7.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.backend import SimBackend
from repro.hv.hypervisor import Hypervisor
from repro.hv.vm import VirtualMachine
from repro.memctrl.controller import (
    DecodesToMedia,
    MemoryController,
    TraceResult,
)
from repro.memctrl.timings import DDR4Timings
from repro.workloads.suites import suite
from repro.workloads.trace import GpaTranslator, generate_trace, generate_trace_batch

ControllerFactory = Callable[[DecodesToMedia, "DDR4Timings | None"], MemoryController]


@dataclass(frozen=True)
class WorkloadResult:
    """One (workload, VM, trial) measurement."""

    workload: str
    vm: str
    trial: int
    trace: TraceResult

    @property
    def execution_seconds(self) -> float:
        return self.trace.execution_seconds

    @property
    def bandwidth_gib_s(self) -> float:
        return self.trace.bandwidth_gib_s


def run_in_vm(
    hv: Hypervisor,
    vm: VirtualMachine,
    workload: str,
    *,
    accesses: int = 20_000,
    trial: int = 0,
    footprint_fraction: float = 0.8,
    timings: DDR4Timings | None = None,
    controller_factory: ControllerFactory | None = None,
) -> WorkloadResult:
    """Run *workload* inside *vm*, returning timing aggregates.

    The trace covers ``footprint_fraction`` of the VM's RAM; trial index
    seeds the noise model, giving the run-to-run spread behind the
    paper's 95 % confidence intervals.  ``controller_factory(mapping,
    timings)`` overrides the memory-controller model (e.g. FR-FCFS or
    closed-page) for robustness studies.

    The machine's simulation backend flows through: a default-built
    controller inherits ``hv.machine.dram.backend``, and whenever the
    controller (however built) runs vectorized, the trace itself is
    synthesized as one numpy batch — the whole workload→memctrl pipeline
    stays on the fast path, with bit-identical results.
    """
    translator = GpaTranslator(vm)
    footprint = max(64, int(translator.limit * footprint_fraction))
    spec = suite(workload, footprint_bytes=footprint)
    if controller_factory is not None:
        controller = controller_factory(hv.machine.mapping, timings)
    else:
        controller = MemoryController(
            hv.machine.mapping, timings, backend=hv.machine.dram.backend
        )
    if controller.backend is SimBackend.VECTORIZED:
        batch = generate_trace_batch(
            spec,
            translator,
            accesses=accesses,
            seed=trial,
            home_socket=vm.home_socket,
        )
        result = controller.run_batch(batch)
    else:
        trace = generate_trace(
            spec,
            translator,
            accesses=accesses,
            seed=trial,
            home_socket=vm.home_socket,
        )
        result = controller.run_trace(trace)
    return WorkloadResult(workload=workload, vm=vm.name, trial=trial, trace=result)
