"""Access-trace generation over a VM's guest-physical space.

A :class:`TraceSpec` describes a workload's memory signature; the
generator produces per-cache-line :class:`MemoryAccess` streams whose
guest-physical addresses are translated to host-physical through the
VM's RAM backing layout (a piecewise-linear table — walking the EPT in
DRAM for millions of accesses would be pointlessly slow and identical in
result, since the EPT encodes exactly this layout).

The recipe consumes a *fixed number of uniforms per access* (selector,
jump index, read/write, gap) plus one initial-line draw, never branching
on how many draws to take.  That is what lets
:func:`generate_trace_batch` reproduce the exact stream with one
:func:`~repro.engine.vector.bulk_uniforms` MT19937 state transplant and
pure numpy: the scalar generator and the batch generator emit
bit-identical traces (enforced by ``tests/test_differential.py``).
Inter-arrival gaps come from a quantized-exponential lookup table
(:data:`GAP_RESOLUTION` entries) rather than ``expovariate`` — numpy's
and CPython's ``log1p`` are *not* bit-identical, but indexing one shared
table with an exactly-computed ``int(u * N)`` is.
"""

from __future__ import annotations

import bisect
import math
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import WorkloadError
from repro.hv.vm import VirtualMachine
from repro.memctrl.controller import AccessKind, MemoryAccess
from repro.units import CACHE_LINE

if TYPE_CHECKING:  # pragma: no cover - typing-only import (numpy layer)
    import numpy as np

    from repro.memctrl.pipeline import AccessBatch

#: Entries in the quantized-exponential inter-arrival table.  4096 steps
#: keep the distribution's mean within 0.01 % of a true exponential
#: while making the draw a pure table lookup both paths compute alike.
GAP_RESOLUTION = 4096

_gap_table: tuple[float, ...] | None = None


def _exponential_table() -> tuple[float, ...]:
    """Midpoint-quantized unit-mean exponential: entry ``k`` is
    ``-log1p(-(k + 0.5) / N)``.  Computed once; both generators index
    the same values, so the transcendental never has to agree between
    numpy and libm."""
    global _gap_table
    if _gap_table is None:
        _gap_table = tuple(
            -math.log1p(-(k + 0.5) / GAP_RESOLUTION) for k in range(GAP_RESOLUTION)
        )
    return _gap_table


@dataclass(frozen=True)
class TraceSpec:
    """A workload's memory-access signature.

    ``locality`` is the probability the next access continues
    sequentially from the previous one (row-buffer-friendly streaming);
    the rest jump, either to a hot region (``hot_fraction`` of the
    footprint, chosen with ``hot_prob``) or uniformly.
    ``cpu_gap_ns`` is mean CPU think time between memory accesses —
    the compute-vs-memory-bound knob.
    """

    name: str
    footprint_bytes: int
    read_ratio: float = 0.8
    locality: float = 0.5
    hot_fraction: float = 0.1
    hot_prob: float = 0.6
    cpu_gap_ns: float = 20.0
    #: Relative run-time noise between trials (paper error bars).
    noise: float = 0.01

    def __post_init__(self) -> None:
        if self.footprint_bytes < CACHE_LINE:
            raise WorkloadError(f"{self.name}: footprint below one cache line")
        for field_name in ("read_ratio", "locality", "hot_fraction", "hot_prob"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {field_name} must be in [0, 1]")
        if self.cpu_gap_ns < 0 or self.noise < 0:
            raise WorkloadError(f"{self.name}: negative timing parameter")


class GpaTranslator:
    """Piecewise-linear GPA->HPA for a VM's RAM region.

    RAM at GPA 0 is mapped across the VM's backing ranges in order, so
    translation is an offset lookup — bit-identical to what the EPT walk
    would return (tests assert this equivalence)."""

    def __init__(self, vm: VirtualMachine):
        self._starts: list[int] = []
        self._bases: list[int] = []
        gpa = 0
        for r in vm.backing:
            self._starts.append(gpa)
            self._bases.append(r.start)
            gpa += r.size
        self.limit = gpa
        if not self._starts:
            raise WorkloadError(f"VM {vm.name} has no RAM backing")

    def translate(self, gpa: int) -> int:
        if not 0 <= gpa < self.limit:
            raise WorkloadError(f"GPA {gpa:#x} beyond backed RAM {self.limit:#x}")
        i = bisect.bisect_right(self._starts, gpa) - 1
        return self._bases[i] + (gpa - self._starts[i])

    def translate_batch(self, gpas: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`translate` (``searchsorted`` over the same
        table ``bisect`` walks — integer-exact agreement)."""
        import numpy as np

        if gpas.size and (int(gpas.min()) < 0 or int(gpas.max()) >= self.limit):
            bad = int(gpas.min()) if int(gpas.min()) < 0 else int(gpas.max())
            raise WorkloadError(f"GPA {bad:#x} beyond backed RAM {self.limit:#x}")
        starts = np.asarray(self._starts, dtype=np.int64)
        bases = np.asarray(self._bases, dtype=np.int64)
        i = np.searchsorted(starts, gpas, side="right") - 1
        return bases[i] + (gpas - starts[i])

    @property
    def fingerprint(self) -> int:
        """Hash of the physical layout.  Mixed into the noise seed: the
        paper attributes residual run-to-run differences partly to
        address-dependent effects (cache slice/set indexing, §7.3), so
        two systems placing the same VM at different HPAs draw different
        noise."""
        return hash(tuple(zip(self._starts, self._bases))) & 0x7FFFFFFF


def _trace_rngs(
    spec: TraceSpec, translator: GpaTranslator, seed: int
) -> tuple[random.Random, random.Random]:
    # The access *pattern* is a property of the workload and trial only;
    # the noise draw additionally depends on where the VM physically
    # landed (see GpaTranslator.fingerprint).  zlib.crc32 rather than
    # hash(): str hashing is salted per process, and traces must be
    # reproducible across runs.
    name_tag = zlib.crc32(spec.name.encode())
    rng = random.Random((name_tag ^ (seed * 0x9E3779B1)) & 0xFFFFFFFF)
    noise_rng = random.Random(
        (name_tag ^ (seed * 0x85EBCA6B) ^ translator.fingerprint) & 0xFFFFFFFF
    )
    return rng, noise_rng


def _trace_params(
    spec: TraceSpec, translator: GpaTranslator, noise_rng: random.Random
) -> tuple[int, int, float, float]:
    """(lines, hot_lines, gap scale, hot selector cut) for one trace."""
    footprint = min(spec.footprint_bytes, translator.limit)
    lines = footprint // CACHE_LINE
    if lines == 0:
        raise WorkloadError("footprint smaller than a cache line")
    hot_lines = max(1, int(lines * spec.hot_fraction))
    gap_scale = 1.0 + noise_rng.gauss(0.0, spec.noise)
    # One selector uniform decides sequential/hot/uniform:
    # [0, locality) -> sequential, [locality, hot_cut) -> hot jump,
    # [hot_cut, 1) -> uniform jump; P(hot | jump) == hot_prob as before.
    hot_cut = spec.locality + (1.0 - spec.locality) * spec.hot_prob
    return lines, hot_lines, spec.cpu_gap_ns * gap_scale, hot_cut


def generate_trace(
    spec: TraceSpec,
    translator: GpaTranslator,
    *,
    accesses: int,
    seed: int = 0,
    home_socket: int = 0,
) -> Iterator[MemoryAccess]:
    """Yield *accesses* MemoryAccess objects following *spec*.

    Deterministic per (spec, seed).  The per-trial ``noise`` scales the
    CPU gaps, modelling run-to-run variance (scheduler, cache state) —
    the source of the paper's confidence intervals.
    """
    if accesses <= 0:
        raise WorkloadError("accesses must be positive")
    rng, noise_rng = _trace_rngs(spec, translator, seed)
    lines, hot_lines, scale, hot_cut = _trace_params(spec, translator, noise_rng)
    table = _exponential_table()
    timed = spec.cpu_gap_ns > 0.0
    line = min(int(rng.random() * lines), lines - 1)
    for _ in range(accesses):
        u_sel = rng.random()
        u_idx = rng.random()
        u_kind = rng.random()
        u_gap = rng.random()
        if u_sel < spec.locality:
            line = (line + 1) % lines
        elif u_sel < hot_cut:
            line = min(int(u_idx * hot_lines), hot_lines - 1)
        else:
            line = min(int(u_idx * lines), lines - 1)
        kind = AccessKind.READ if u_kind < spec.read_ratio else AccessKind.WRITE
        gap = table[min(int(u_gap * GAP_RESOLUTION), GAP_RESOLUTION - 1)] * scale if timed else 0.0
        yield MemoryAccess(
            hpa=translator.translate(line * CACHE_LINE),
            kind=kind,
            cpu_gap_ns=gap,
            home_socket=home_socket,
        )


def generate_trace_batch(
    spec: TraceSpec,
    translator: GpaTranslator,
    *,
    accesses: int,
    seed: int = 0,
    home_socket: int = 0,
) -> "AccessBatch":
    """:func:`generate_trace` as one numpy batch — same stream, bit for
    bit: the MT19937 uniforms come from a single
    :func:`~repro.engine.vector.bulk_uniforms` transplant consumed in
    the same order, and every arithmetic step mirrors the scalar
    recipe's exactly-rounded IEEE ops."""
    import numpy as np

    from repro.engine.vector import bulk_uniforms
    from repro.memctrl.pipeline import AccessBatch

    if accesses <= 0:
        raise WorkloadError("accesses must be positive")
    rng, noise_rng = _trace_rngs(spec, translator, seed)
    lines, hot_lines, scale, hot_cut = _trace_params(spec, translator, noise_rng)

    uniforms = bulk_uniforms(rng, 1 + 4 * accesses)
    line0 = min(int(uniforms[0] * lines), lines - 1)
    per_access = uniforms[1:].reshape(accesses, 4)
    u_sel = per_access[:, 0]
    u_idx = per_access[:, 1]
    u_kind = per_access[:, 2]
    u_gap = per_access[:, 3]

    seq = u_sel < spec.locality
    hot = ~seq & (u_sel < hot_cut)
    jump = np.where(
        hot,
        np.minimum((u_idx * hot_lines).astype(np.int64), hot_lines - 1),
        np.minimum((u_idx * lines).astype(np.int64), lines - 1),
    )
    # Sequential runs advance +1 per step from the last jump (anchor);
    # anchor -1 is the initial line draw, one step *behind* access 0.
    pos = np.arange(accesses, dtype=np.int64)
    anchor = np.maximum.accumulate(np.where(~seq, pos, np.int64(-1)))
    anchor_line = np.where(anchor >= 0, jump[np.maximum(anchor, 0)], np.int64(line0))
    line = (anchor_line + (pos - anchor)) % lines

    if spec.cpu_gap_ns > 0.0:
        table = np.asarray(_exponential_table(), dtype=np.float64)
        slot = np.minimum((u_gap * GAP_RESOLUTION).astype(np.int64), GAP_RESOLUTION - 1)
        gaps = table[slot] * scale
    else:
        gaps = np.zeros(accesses, dtype=np.float64)

    return AccessBatch(
        hpa=translator.translate_batch(line * CACHE_LINE),
        write=~(u_kind < spec.read_ratio),
        cpu_gap_ns=gaps,
        home_socket=np.full(accesses, home_socket, dtype=np.int64),
        tag=np.zeros(accesses, dtype=np.int64),
    )
