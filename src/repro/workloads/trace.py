"""Access-trace generation over a VM's guest-physical space.

A :class:`TraceSpec` describes a workload's memory signature; the
generator produces per-cache-line :class:`MemoryAccess` streams whose
guest-physical addresses are translated to host-physical through the
VM's RAM backing layout (a piecewise-linear table — walking the EPT in
DRAM for millions of accesses would be pointlessly slow and identical in
result, since the EPT encodes exactly this layout).
"""

from __future__ import annotations

import bisect
import zlib
import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hv.vm import VirtualMachine
from repro.memctrl.controller import AccessKind, MemoryAccess
from repro.units import CACHE_LINE


@dataclass(frozen=True)
class TraceSpec:
    """A workload's memory-access signature.

    ``locality`` is the probability the next access continues
    sequentially from the previous one (row-buffer-friendly streaming);
    the rest jump, either to a hot region (``hot_fraction`` of the
    footprint, chosen with ``hot_prob``) or uniformly.
    ``cpu_gap_ns`` is mean CPU think time between memory accesses —
    the compute-vs-memory-bound knob.
    """

    name: str
    footprint_bytes: int
    read_ratio: float = 0.8
    locality: float = 0.5
    hot_fraction: float = 0.1
    hot_prob: float = 0.6
    cpu_gap_ns: float = 20.0
    #: Relative run-time noise between trials (paper error bars).
    noise: float = 0.01

    def __post_init__(self) -> None:
        if self.footprint_bytes < CACHE_LINE:
            raise WorkloadError(f"{self.name}: footprint below one cache line")
        for field_name in ("read_ratio", "locality", "hot_fraction", "hot_prob"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{self.name}: {field_name} must be in [0, 1]")
        if self.cpu_gap_ns < 0 or self.noise < 0:
            raise WorkloadError(f"{self.name}: negative timing parameter")


class GpaTranslator:
    """Piecewise-linear GPA->HPA for a VM's RAM region.

    RAM at GPA 0 is mapped across the VM's backing ranges in order, so
    translation is an offset lookup — bit-identical to what the EPT walk
    would return (tests assert this equivalence)."""

    def __init__(self, vm: VirtualMachine):
        self._starts: list[int] = []
        self._bases: list[int] = []
        gpa = 0
        for r in vm.backing:
            self._starts.append(gpa)
            self._bases.append(r.start)
            gpa += r.size
        self.limit = gpa
        if not self._starts:
            raise WorkloadError(f"VM {vm.name} has no RAM backing")

    def translate(self, gpa: int) -> int:
        if not 0 <= gpa < self.limit:
            raise WorkloadError(f"GPA {gpa:#x} beyond backed RAM {self.limit:#x}")
        i = bisect.bisect_right(self._starts, gpa) - 1
        return self._bases[i] + (gpa - self._starts[i])

    @property
    def fingerprint(self) -> int:
        """Hash of the physical layout.  Mixed into the noise seed: the
        paper attributes residual run-to-run differences partly to
        address-dependent effects (cache slice/set indexing, §7.3), so
        two systems placing the same VM at different HPAs draw different
        noise."""
        return hash(tuple(zip(self._starts, self._bases))) & 0x7FFFFFFF


def generate_trace(
    spec: TraceSpec,
    translator: GpaTranslator,
    *,
    accesses: int,
    seed: int = 0,
    home_socket: int = 0,
):
    """Yield *accesses* MemoryAccess objects following *spec*.

    Deterministic per (spec, seed).  The per-trial ``noise`` scales the
    CPU gaps, modelling run-to-run variance (scheduler, cache state) —
    the source of the paper's confidence intervals.
    """
    if accesses <= 0:
        raise WorkloadError("accesses must be positive")
    # The access *pattern* is a property of the workload and trial only;
    # the noise draw additionally depends on where the VM physically
    # landed (see GpaTranslator.fingerprint).  zlib.crc32 rather than
    # hash(): str hashing is salted per process, and traces must be
    # reproducible across runs.
    name_tag = zlib.crc32(spec.name.encode())
    rng = random.Random((name_tag ^ (seed * 0x9E3779B1)) & 0xFFFFFFFF)
    noise_rng = random.Random(
        (name_tag ^ (seed * 0x85EBCA6B) ^ translator.fingerprint) & 0xFFFFFFFF
    )
    footprint = min(spec.footprint_bytes, translator.limit)
    lines = footprint // CACHE_LINE
    if lines == 0:
        raise WorkloadError("footprint smaller than a cache line")
    hot_lines = max(1, int(lines * spec.hot_fraction))
    gap_scale = 1.0 + noise_rng.gauss(0.0, spec.noise)
    line = rng.randrange(lines)
    for _ in range(accesses):
        if rng.random() < spec.locality:
            line = (line + 1) % lines
        elif rng.random() < spec.hot_prob:
            line = rng.randrange(hot_lines)
        else:
            line = rng.randrange(lines)
        kind = AccessKind.READ if rng.random() < spec.read_ratio else AccessKind.WRITE
        gap = max(0.0, rng.expovariate(1.0 / spec.cpu_gap_ns) if spec.cpu_gap_ns else 0.0)
        yield MemoryAccess(
            hpa=translator.translate(line * CACHE_LINE),
            kind=kind,
            cpu_gap_ns=gap * gap_scale,
            home_socket=home_socket,
        )
