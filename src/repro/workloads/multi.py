"""Concurrent multi-VM workload runs (paper §2.2's interference story).

The paper's motivation for NUMA — and for managing DRAM as isolation
domains at all — includes *performance* interference between tenants
sharing memory structures.  This module merges several VMs' access
streams by arrival time into a single controller run, attributing
latency per VM, so co-location effects are measurable:

- tenants sharing a socket contend for banks and channel bandwidth,
- a remote-socket tenant pays NUMA latency instead,
- and the "spread" placement policy demonstrably reduces same-socket
  contention.

Siloz's subarray groups deliberately do *not* change bank-level
contention (groups span every bank, §4.1) — a fact the tests assert:
Siloz VM pairs interfere exactly like baseline VM pairs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.hv.hypervisor import Hypervisor
from repro.hv.vm import VirtualMachine
from repro.memctrl.controller import MemoryAccess, MemoryController, TraceResult
from repro.memctrl.timings import DDR4Timings
from repro.workloads.suites import suite
from repro.workloads.trace import GpaTranslator, generate_trace


@dataclass(frozen=True)
class ConcurrentResult:
    """Shared-run outcome with per-VM latency attribution."""

    combined: TraceResult
    vm_names: tuple[str, ...]

    def latency_of(self, vm_name: str) -> float:
        try:
            tag = self.vm_names.index(vm_name)
        except ValueError:
            raise WorkloadError(f"VM {vm_name!r} was not part of this run") from None
        return self.combined.tag_latency_ns(tag)


def _timed_stream(
    vm: VirtualMachine,
    workload: str,
    *,
    accesses: int,
    trial: int,
    tag: int,
    footprint_fraction: float,
) -> Iterator[tuple[float, tuple[int, int], MemoryAccess]]:
    """(arrival_ns, sequence, access) triples for one VM's trace."""
    translator = GpaTranslator(vm)
    footprint = max(64, int(translator.limit * footprint_fraction))
    spec = suite(workload, footprint_bytes=footprint)
    arrival = 0.0
    for i, access in enumerate(
        generate_trace(
            spec,
            translator,
            accesses=accesses,
            seed=trial,
            home_socket=vm.home_socket,
        )
    ):
        arrival += access.cpu_gap_ns
        yield arrival, (tag, i), MemoryAccess(
            hpa=access.hpa,
            kind=access.kind,
            cpu_gap_ns=access.cpu_gap_ns,
            home_socket=access.home_socket,
            tag=tag,
        )


def run_concurrent(
    hv: Hypervisor,
    plans: list[tuple[VirtualMachine, str]],
    *,
    accesses: int = 5000,
    trial: int = 0,
    footprint_fraction: float = 0.8,
    timings: DDR4Timings | None = None,
) -> ConcurrentResult:
    """Run each (vm, workload) pair concurrently through one controller.

    Streams are merged by arrival time (a fair global issue order); the
    result attributes average latency per VM via access tags."""
    if not plans:
        raise WorkloadError("need at least one (vm, workload) plan")

    # Merge streams by arrival time; the per-VM cpu_gap fields describe
    # per-VM spacing, so the merged order's gaps are rebuilt from the
    # absolute arrival times.
    def merged_with_gaps() -> Iterator[MemoryAccess]:
        streams = [
            _timed_stream(
                vm,
                workload,
                accesses=accesses,
                trial=trial,
                tag=tag,
                footprint_fraction=footprint_fraction,
            )
            for tag, (vm, workload) in enumerate(plans)
        ]
        last = 0.0
        for arrival, _, access in heapq.merge(*streams):
            gap = max(0.0, arrival - last)
            last = arrival
            yield MemoryAccess(
                hpa=access.hpa,
                kind=access.kind,
                cpu_gap_ns=gap,
                home_socket=access.home_socket,
                tag=access.tag,
            )

    controller = MemoryController(
        hv.machine.mapping, timings, backend=hv.machine.dram.backend
    )
    result = controller.run_trace(merged_with_gaps())
    return ConcurrentResult(
        combined=result, vm_names=tuple(vm.name for vm, _ in plans)
    )
