"""The fleet campaign driver: place fleet-wide, simulate per host, in
parallel, deterministically — and survivably, under injected chaos.

A :class:`FleetCampaign` runs in three phases:

1. **Placement** (main process): boot the fleet, generate the seeded
   tenant arrival trace, and push it through admission control + the
   chosen scheduler.  Every host ends up with an ordered list of
   admitted :class:`VmSpec`\\ s.  A chaos plan's queue-stall events
   fire here: the admission daemon wedges for a window of arrivals and
   backpressure must reject instead of blocking.
2. **Campaign** (supervised workers): each host's simulation — boot,
   replay its placements, apply its shard-phase chaos events, run the
   scenario — is sharded across worker processes under a
   :class:`~repro.chaos.supervisor.CampaignSupervisor`: per-shard
   timeout, bounded retries with backoff, and real dead-worker
   detection (a killed worker used to kill the whole ``pool.map``
   campaign).  A host task is a pure function of ``(HostSpec, vm
   specs, scenario, chaos specs, attempt)``: the host's DRAM seed
   derives from the *host id* (:func:`~repro.fleet.host.derive_host_seed`),
   never from worker count or pool order, so ``--workers 4`` merges
   bit-identically with ``--workers 1`` — chaos plan and all.
   Completed shards are checkpointed to an optional
   :class:`~repro.chaos.journal.CampaignJournal`, and ``--resume``
   loads them back instead of re-running.
3. **Merge** (main process): crashed hosts' tenants are evacuated to
   survivors (digest-corruption chaos bites here and must roll back),
   the :class:`~repro.chaos.audit.IsolationAuditor` re-verifies the
   one-tenant-per-group and guard-row invariants after placement,
   after every evacuation, and at campaign end, and results are
   ordered by host id and folded into a
   :class:`~repro.fleet.report.FleetReport` whose digest is the
   determinism contract CI checks.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass

from repro import obs
from repro.chaos.plan import ChaosKind, ChaosPlan, ChaosSpec
from repro.chaos.supervisor import WorkerDeathError
from repro.errors import FleetError
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger
from repro.mm.numa import NodeKind

from repro.fleet.admission import AdmissionController, generate_arrival_trace
from repro.fleet.host import Fleet, Host, HostSpec, derive_host_seed
from repro.fleet.report import FleetReport, _config_dict
from repro.fleet.scheduler import make_scheduler

_log = get_logger("fleet.driver")

#: Scenarios a campaign can run on every host.
SCENARIOS = ("attack", "health")


@dataclass(frozen=True)
class CampaignConfig:
    """One fleet campaign, fully described (and picklable)."""

    hosts: int = 4
    vms: int = 12
    policy: str = "best-fit"
    scenario: str = "attack"
    backend: str = "scalar"
    seed: int = 0
    workers: int = 1
    #: Attack-scenario fuzzer patterns per host.
    budget: int = 6
    #: Health-scenario injected correctable errors per host.
    storm_errors: int = 20
    sockets: int = 1
    queue_depth: int = 64
    max_retries: int = 2
    vm_sizes_mib: tuple[int, ...] = (1, 2, 2, 3, 4)
    #: Registered mitigation every host boots under ("siloz", "none",
    #: "para", "catt", "domain-buddy", "guard-rows").  The bake-off
    #: harness sweeps this; part of the merge digest because the defence
    #: legitimately changes results.
    mitigation: str = "siloz"
    #: Chaos: seed for the generated :class:`ChaosPlan` (None = no chaos)
    #: and how many events the plan schedules.  Part of the config — and
    #: of the merge digest — because chaos legitimately changes results;
    #: resume re-derives the identical plan from these two fields.
    chaos_seed: int | None = None
    chaos_events: int = 4

    def __post_init__(self) -> None:
        if self.hosts <= 0 or self.vms < 0:
            raise FleetError("need at least one host and a non-negative VM count")
        if self.workers <= 0:
            raise FleetError("workers must be positive")
        if self.scenario not in SCENARIOS:
            raise FleetError(f"unknown scenario {self.scenario!r}; know {SCENARIOS}")
        if self.chaos_events < 0:
            raise FleetError("chaos_events must be non-negative")
        from repro.mitigations import mitigation_names

        if self.mitigation not in mitigation_names():
            raise FleetError(
                f"unknown mitigation {self.mitigation!r}; "
                f"know {mitigation_names()}"
            )


@dataclass(frozen=True)
class HostTask:
    """Everything one worker needs to re-create and drive one host."""

    spec: HostSpec
    vm_specs: tuple[VmSpec, ...]
    scenario: str
    budget: int
    storm_errors: int
    #: Shard-phase chaos events for this host, in trigger order.
    chaos: tuple[ChaosSpec, ...] = ()


def _attack_result(host: Host, task: HostTask) -> dict:
    """Table 3-style containment campaign from the host's first tenant."""
    from repro.attack import attack_from_vm

    vms = list(host.hv.vms.values())
    if not vms:
        return {"idle": True, "flips": 0, "contained": True}
    outcome = attack_from_vm(
        host.hv, vms[0], seed=task.spec.seed, pattern_budget=task.budget
    )
    return {
        "idle": False,
        "attacker": vms[0].name,
        "summary": outcome.summary(),
        "flips": len(outcome.flips_inside) + len(outcome.flips_escaped),
        "escaped": len(outcome.flips_escaped),
        "victim_flips": sum(outcome.victim_flips.values()),
        "victims": len(outcome.victim_flips),
        "contained": outcome.contained,
    }


def _health_result(host: Host, task: HostTask) -> dict:
    """CE-storm drill: inject, let the monitor escalate, record the
    escalation transcript digest (backend-independent, PR 1)."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.hv.health import HealthState

    vms = list(host.hv.vms.values())
    if not vms:
        return {"idle": True, "offlined": False, "migrated_blocks": 0}
    dram = host.hv.machine.dram
    geom = host.hv.machine.geom
    media = dram.mapping.decode(vms[0].backing[0].start)
    interval = 0.004
    plan = FaultPlan.ce_storm(
        media.socket,
        media.socket_bank_index(geom),
        media.row,
        errors=task.storm_errors,
        words_per_row=geom.row_bytes * 8 // 64,
        start=dram.clock + interval,
        interval=interval,
        seed=task.spec.seed,
    )
    injector = FaultInjector(dram, plan).attach()
    for _ in range(task.storm_errors + 2):
        dram.advance_time(interval)
        dram.patrol_scrub()
    host.monitor.poll()
    injector.detach()
    timeline = "\n".join(host.monitor.timeline)
    return {
        "idle": False,
        "target": [media.socket, media.row],
        "offlined": host.monitor.state_of(media.socket, media.row)
        is HealthState.OFFLINED,
        "migrated_blocks": sum(len(r.migrated) for r in host.monitor.reports),
        "deferred_blocks": sum(len(r.deferred) for r in host.monitor.reports),
        "timeline_digest": hashlib.sha256(timeline.encode()).hexdigest(),
    }


def _free_storm_target(host: Host) -> tuple[int, int, int]:
    """(socket, bank, row) of a guest-reserved row group with nothing
    allocated on it — the UE storm's blast radius must not cover live
    tenant data (a UE under tenant pages is the *migration* failure
    mode, modelled separately; this one is the dying-DIMM mode where
    the monitor must retire the row group while isolation holds)."""
    hv = host.hv
    geom = hv.machine.geom
    mapping = hv.machine.mapping
    for node in hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED):
        for row in range(geom.rows_per_bank):
            rg = mapping.row_group_ranges(0, row)[0]
            inside = any(
                rg.start >= r.start and rg.end <= r.end for r in node.ranges
            )
            if (
                inside
                and not node.allocator.allocated_blocks_within(rg)
                and not hv.offline.is_offline(rg.start)
            ):
                media = mapping.decode(rg.start)
                return media.socket, media.socket_bank_index(geom), media.row
    return 0, 0, 0


def _apply_ue_storm(host: Host, spec: ChaosSpec) -> dict:
    """Inject a DIMM UE storm (two-bit words, uncorrectable) on a free
    row group and let the health monitor escalate through its
    ``ue_weight`` ladder; returns the deterministic aftermath."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    dram = host.hv.machine.dram
    geom = host.hv.machine.geom
    socket, bank, row = _free_storm_target(host)
    interval = 0.004
    plan = FaultPlan.ue_storm(
        socket,
        bank,
        row,
        errors=spec.ue_errors,
        words_per_row=geom.row_bytes * 8 // 64,
        start=dram.clock + interval,
        interval=interval,
        seed=host.spec.seed,
    )
    injector = FaultInjector(dram, plan).attach()
    for _ in range(spec.ue_errors + 2):
        dram.advance_time(interval)
        dram.patrol_scrub()
    host.monitor.poll()
    injector.detach()
    return {
        "chaos": "ue-storm",
        "target": [socket, row],
        "ue_errors": spec.ue_errors,
        "state": host.monitor.state_of(socket, row).value,
        "health": host.monitor.snapshot(),
    }


def warm_worker() -> None:
    """Pooled-worker warmup: pre-touch the state every host task needs.

    Booting one throwaway host populates the process-wide caches the
    real shards hit — the memoized Skylake decode tables, the lazy
    geometry LUTs, the import graph — so the first real task on a
    persistent worker runs as warm as the hundredth.  Best-effort: a
    failure here only costs the warmth.
    """
    from repro.fleet.host import Host, HostSpec

    Host.boot(HostSpec(host_id=0, seed=0))


def _counter_mark() -> dict[str, float] | None:
    """Metrics-counter snapshot, or None while observability is off."""
    if not obs.ENABLED:
        return None
    return dict(obs.metrics_snapshot()["counters"])


def _trace_summary(before: dict[str, float]) -> dict:
    """Compact merged trace summary for one host task.

    Workers never ship their event streams back to the driver (a fleet
    host emits thousands of ACT/TRR/ECC events; at cluster scale that
    is the dominant IPC cost).  Instead each shard returns the per-kind
    counter *deltas* its simulation folded into ``repro.obs`` — exact
    even when the ring buffer dropped events, a few hundred bytes flat.
    Execution-detail only: the merge digest scrubs this section.
    """
    after = obs.metrics_snapshot()["counters"]
    merged = {
        name: round(value - before.get(name, 0.0), 6)
        for name, value in sorted(after.items())
        if value != before.get(name, 0.0)
    }
    return {"merged_counters": merged, "events": "sampled"}


def run_host_task(task: HostTask, attempt: int = 1) -> dict:
    """Worker entry point: boot the host, replay its placements, apply
    the shard's chaos events, run the scenario.  **Pure** in
    ``(task, attempt)`` — same inputs, same result dict, in any process.
    Exceptions become a typed error result (graceful worker failure:
    one sick host must not kill the campaign) — except a planned
    :class:`WorkerDeathError`, which must escape so the supervisor's
    dead-worker handling is what gets exercised."""
    mark = _counter_mark()
    try:
        host = Host.boot(task.spec)
        for spec in task.vm_specs:
            host.create_vm(spec)
        chaos_notes: list[dict] = []
        for spec in task.chaos:
            dram = host.hv.machine.dram
            if spec.at_clock > dram.clock:
                dram.advance_time(spec.at_clock - dram.clock)
            if spec.kind is ChaosKind.WORKER_DEATH:
                if attempt <= spec.kills:
                    raise WorkerDeathError(
                        f"chaos: worker death on host {task.spec.host_id} "
                        f"(attempt {attempt}/{spec.kills} kill(s))"
                    )
                chaos_notes.append(
                    {"chaos": "worker-death", "kills": spec.kills}
                )
            elif spec.kind is ChaosKind.HOST_CRASH:
                return {
                    "host_id": task.spec.host_id,
                    "ok": False,
                    "crashed": True,
                    "seed": task.spec.seed,
                    "vms": [s.name for s in task.vm_specs],
                    "placed_bytes": 0,
                    "error": f"chaos: host crash at t={spec.at_clock:.6f}",
                }
            elif spec.kind is ChaosKind.UE_STORM:
                chaos_notes.append(_apply_ue_storm(host, spec))
        if task.scenario == "attack":
            payload = _attack_result(host, task)
        elif task.scenario == "health":
            payload = _health_result(host, task)
        else:
            raise FleetError(f"unknown scenario {task.scenario!r}")
        host.assert_isolation()
        result = {
            "host_id": task.spec.host_id,
            "ok": True,
            "seed": task.spec.seed,
            "vms": [s.name for s in task.vm_specs],
            "placed_bytes": sum(s.memory_bytes for s in task.vm_specs),
            "scenario": task.scenario,
            "mitigation": host.mitigation.host_report(host),
            **payload,
        }
        if chaos_notes:
            result["chaos"] = chaos_notes
        if mark is not None:
            result["trace"] = _trace_summary(mark)
        return result
    except WorkerDeathError:
        raise  # the supervisor, not the error path, owns this one
    except Exception as exc:  # noqa: BLE001 — workers must not die silently
        return {
            "host_id": task.spec.host_id,
            "ok": False,
            "vms": [s.name for s in task.vm_specs],
            "placed_bytes": 0,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


class FleetCampaign:
    """Placement + supervised per-host simulation + deterministic merge."""

    def __init__(self, config: CampaignConfig, *, pool: str = "persistent"):
        self.config = config
        #: Parallel execution engine: ``"persistent"`` (warm worker
        #: pool, the default) or ``"spawn"`` (one process per task, the
        #: pre-pool path kept as a bisection escape hatch).  Runtime
        #: machinery only — deliberately *not* part of
        #: :class:`CampaignConfig`, so journals, golden fixtures, and
        #: merge digests are pool-mode independent by construction.
        self.pool = pool
        self.fleet: Fleet | None = None
        self.admission: AdmissionController | None = None
        self._chaos_plan: ChaosPlan | None = None
        #: Shards loaded from a resume journal instead of re-executed.
        self.resumed_shards: int = 0

    # ------------------------------------------------------------------
    # Chaos plan (pure function of the config; resume re-derives it)
    # ------------------------------------------------------------------

    @property
    def chaos_plan(self) -> ChaosPlan | None:
        if self.config.chaos_seed is None:
            return None
        if self._chaos_plan is None:
            self._chaos_plan = ChaosPlan.generate(
                self.config.chaos_seed,
                self.config.hosts,
                events=self.config.chaos_events,
                arrivals=self.config.vms,
            )
        return self._chaos_plan

    def config_digest(self) -> str:
        """Campaign identity for journal headers (see chaos.journal)."""
        from repro.chaos.journal import config_digest

        return config_digest(_config_dict(self.config))

    # ------------------------------------------------------------------
    # Phase 1: placement
    # ------------------------------------------------------------------

    def place(self) -> Fleet:
        """Boot the fleet and drive the arrival trace through admission.

        Queue-stall chaos fires here: at the planned arrival index the
        admission daemon wedges (simulated time passes, nothing drains)
        for a window of arrivals, during which a full queue's rejection
        is final — backpressure instead of blocking.
        """
        cfg = self.config
        self.fleet = Fleet.boot(
            cfg.hosts,
            seed=cfg.seed,
            sockets=cfg.sockets,
            backend=cfg.backend,
            mitigation=cfg.mitigation,
        )
        self.guest_capacity_bytes = sum(
            n.total_bytes
            for h in self.fleet.hosts
            for n in h.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
        )
        scheduler = make_scheduler(cfg.policy)
        self.admission = AdmissionController(
            self.fleet,
            scheduler,
            queue_depth=cfg.queue_depth,
            max_retries=cfg.max_retries,
        )
        trace = generate_arrival_trace(
            cfg.seed, cfg.vms, sizes_mib=cfg.vm_sizes_mib, sockets=cfg.sockets
        )
        plan = self.chaos_plan
        stalls = (
            {s.arrival_index: s for s in plan.stalls()} if plan is not None else {}
        )
        wedged_until = -1
        for i, spec in enumerate(trace):
            stall = stalls.get(i)
            if stall is not None:
                self.admission.stall(stall.stall_s)
                wedged_until = i + stall.stall_width
                _log.warning(
                    "chaos: admission queue stalled %.4fs at arrival %d "
                    "(%d arrival(s) wedged)",
                    stall.stall_s, i, stall.stall_width,
                )
                if obs.ENABLED:
                    obs.emit(
                        obs.ChaosEvent(
                            chaos="queue-stall",
                            host=-1,
                            detail=f"arrival {i}: {stall.stall_s}s",
                        )
                    )
            if not self.admission.submit(spec):
                if i < wedged_until:
                    continue  # daemon wedged: the QUEUE_FULL stands
                # Backpressure hit: let the queue drain, then resubmit
                # once (a second full-queue rejection is final).
                self.admission.drain()
                self.admission.submit(spec)
        self.admission.drain()
        self.fleet.assert_isolation()
        return self.fleet

    # ------------------------------------------------------------------
    # Phase 2 + 3: supervised sharded simulation, deterministic merge
    # ------------------------------------------------------------------

    def tasks(self) -> list[HostTask]:
        """Picklable per-host work items: each host's spec plus its
        admitted VM specs in placement order and its shard-phase chaos."""
        if self.fleet is None:
            raise FleetError("place() must run before tasks()")
        cfg = self.config
        plan = self.chaos_plan
        return [
            HostTask(
                spec=h.spec,
                vm_specs=tuple(h.vm_specs.values()),
                scenario=cfg.scenario,
                budget=cfg.budget,
                storm_errors=cfg.storm_errors,
                chaos=plan.for_host(h.host_id) if plan is not None else (),
            )
            for h in self.fleet.hosts
        ]

    def run(
        self,
        *,
        journal_path: str | None = None,
        resume_path: str | None = None,
    ) -> FleetReport:
        """Place (if not already placed), execute every host task under
        supervision, evacuate crashed hosts, audit, and merge the
        results in host-id order into the campaign report."""
        from repro.chaos.journal import CampaignJournal
        from repro.chaos.supervisor import CampaignSupervisor

        cfg = self.config
        if self.fleet is None:
            self.place()
        auditor = self._auditor()
        audits = [auditor.audit("placement").to_dict()]
        tasks = self.tasks()

        completed: dict[int, dict] = {}
        if resume_path is not None:
            completed = CampaignJournal.load(resume_path, self.config_digest())
            self.resumed_shards = len(completed)
            _log.info(
                "resume: loaded %d completed shard(s) from %s",
                len(completed), resume_path,
            )
        pending = [t for t in tasks if t.spec.host_id not in completed]

        journal: CampaignJournal | None = None
        if journal_path is not None or resume_path is not None:
            journal = CampaignJournal(journal_path or resume_path)
            journal.open(self.config_digest())
        try:
            supervisor = CampaignSupervisor(
                run_host_task, pool=self.pool, warmup=warm_worker
            )
            results, supervision = supervisor.run(
                pending,
                cfg.workers,
                on_result=journal.record if journal is not None else None,
            )
        finally:
            if journal is not None:
                journal.close()
        all_results = sorted(
            [*completed.values(), *results], key=lambda r: r["host_id"]
        )

        degraded, migrations = self._handle_crashes(all_results, auditor, audits)
        audits.append(auditor.audit("final").to_dict())
        assert self.admission is not None
        report = FleetReport.build(
            config=cfg,
            decisions=list(self.admission.decisions),
            host_results=all_results,
            guest_capacity_bytes=self.guest_capacity_bytes,
            migrations=migrations,
            degraded=degraded,
            audit=audits,
            supervision=supervision.to_dict(),
        )
        report.fold_into_metrics()
        _log.info("fleet campaign: %s", report.headline())
        return report

    def _auditor(self):
        from repro.chaos.audit import IsolationAuditor

        assert self.fleet is not None
        return IsolationAuditor(self.fleet)

    def _handle_crashes(
        self, results: list[dict], auditor, audits: list[dict]
    ) -> tuple[dict, list[dict]]:
        """Evacuate every crashed host's tenants to survivors (the
        fleet replica in this process still holds their placements),
        arming any planned digest corruption; audits after each
        evacuation.  Returns (degraded section, migration dicts)."""
        from repro.fleet.migration import evacuate_host

        crashed = sorted(
            r["host_id"] for r in results if r.get("crashed")
        )
        if not crashed:
            return {}, []
        assert self.fleet is not None
        auditor.exclude = tuple(crashed)
        scheduler = make_scheduler(self.config.policy)
        plan = self.chaos_plan
        records: list[dict] = []
        incidents: list[dict] = []
        for host_id in crashed:
            host = self.fleet.host(host_id)
            if obs.ENABLED:
                obs.emit(
                    obs.ChaosEvent(
                        chaos="host-crash",
                        host=host_id,
                        detail=f"evacuating {len(host.vm_specs)} VM(s)",
                    )
                )
            corrupt = None
            spec = plan.corruption_for(host_id) if plan is not None else None
            if spec is not None:
                corrupt = _make_corruptor(spec.flip_offset)
                if obs.ENABLED:
                    obs.emit(
                        obs.ChaosEvent(
                            chaos="digest-corruption",
                            host=host_id,
                            detail=f"armed at byte {spec.flip_offset}",
                        )
                    )
            moved, incs = evacuate_host(
                self.fleet,
                host,
                scheduler,
                exclude=tuple(h for h in crashed if h != host_id),
                corrupt=corrupt,
            )
            records.extend(
                {
                    "vm": r.vm,
                    "src_host": r.src_host,
                    "dst_host": r.dst_host,
                    "bytes_copied": r.bytes_copied,
                    "verified": r.verified,
                }
                for r in moved
            )
            incidents.extend(incs)
            audits.append(
                auditor.audit(f"evacuation:host{host_id}").to_dict()
            )
        degraded = {
            "crashed_hosts": crashed,
            "evacuated_vms": len(records),
            "incidents": incidents,
        }
        return degraded, records


def _make_corruptor(flip_offset: int):
    """One-shot transfer-path fault: flips one byte of the first region
    buffer (sorted region order, offset modulo length) the first time a
    migration snapshot passes through, then disarms."""
    armed = {"on": True}

    def corrupt(buffers: dict) -> None:
        if not armed["on"]:
            return
        for name in sorted(buffers):
            buf = buffers[name]
            if len(buf):
                armed["on"] = False
                buf[flip_offset % len(buf)] ^= 0xFF
                return

    return corrupt


def run_campaign(config: CampaignConfig, *, pool: str = "persistent") -> FleetReport:
    """One-call convenience used by the CLI and the scaling bench."""
    return FleetCampaign(config, pool=pool).run()


__all__ = [
    "CampaignConfig",
    "FleetCampaign",
    "HostTask",
    "SCENARIOS",
    "derive_host_seed",
    "run_campaign",
    "run_host_task",
]
