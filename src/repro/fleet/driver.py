"""The fleet campaign driver: place fleet-wide, simulate per host, in
parallel, deterministically.

A :class:`FleetCampaign` runs in three phases:

1. **Placement** (main process): boot the fleet, generate the seeded
   tenant arrival trace, and push it through admission control + the
   chosen scheduler.  Every host ends up with an ordered list of
   admitted :class:`VmSpec`\\ s.
2. **Campaign** (worker pool): each host's simulation — boot, replay
   its placements, run the scenario (a Table 3-style containment
   campaign or a CE-storm health drill) — is **sharded across a
   multiprocessing pool**.  A host task is a pure function of
   ``(HostSpec, vm specs, scenario)``: the host's DRAM seed derives
   from the *host id* (:func:`~repro.fleet.host.derive_host_seed`),
   never from worker count or pool order, so ``--workers 4`` merges
   bit-identically with ``--workers 1``.  A worker that throws returns
   a typed error result instead of poisoning the pool.
3. **Merge** (main process): results are ordered by host id and folded
   into a :class:`~repro.fleet.report.FleetReport` whose digest is the
   determinism contract CI checks.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import traceback
from dataclasses import dataclass

from repro.errors import FleetError
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger
from repro.mm.numa import NodeKind

from repro.fleet.admission import AdmissionController, generate_arrival_trace
from repro.fleet.host import Fleet, Host, HostSpec, derive_host_seed
from repro.fleet.report import FleetReport
from repro.fleet.scheduler import make_scheduler

_log = get_logger("fleet.driver")

#: Scenarios a campaign can run on every host.
SCENARIOS = ("attack", "health")


@dataclass(frozen=True)
class CampaignConfig:
    """One fleet campaign, fully described (and picklable)."""

    hosts: int = 4
    vms: int = 12
    policy: str = "best-fit"
    scenario: str = "attack"
    backend: str = "scalar"
    seed: int = 0
    workers: int = 1
    #: Attack-scenario fuzzer patterns per host.
    budget: int = 6
    #: Health-scenario injected correctable errors per host.
    storm_errors: int = 20
    sockets: int = 1
    queue_depth: int = 64
    max_retries: int = 2
    vm_sizes_mib: tuple[int, ...] = (1, 2, 2, 3, 4)

    def __post_init__(self) -> None:
        if self.hosts <= 0 or self.vms < 0:
            raise FleetError("need at least one host and a non-negative VM count")
        if self.workers <= 0:
            raise FleetError("workers must be positive")
        if self.scenario not in SCENARIOS:
            raise FleetError(f"unknown scenario {self.scenario!r}; know {SCENARIOS}")


@dataclass(frozen=True)
class HostTask:
    """Everything one worker needs to re-create and drive one host."""

    spec: HostSpec
    vm_specs: tuple[VmSpec, ...]
    scenario: str
    budget: int
    storm_errors: int


def _attack_result(host: Host, task: HostTask) -> dict:
    """Table 3-style containment campaign from the host's first tenant."""
    from repro.attack import attack_from_vm

    vms = list(host.hv.vms.values())
    if not vms:
        return {"idle": True, "flips": 0, "contained": True}
    outcome = attack_from_vm(
        host.hv, vms[0], seed=task.spec.seed, pattern_budget=task.budget
    )
    return {
        "idle": False,
        "attacker": vms[0].name,
        "summary": outcome.summary(),
        "flips": len(outcome.flips_inside) + len(outcome.flips_escaped),
        "escaped": len(outcome.flips_escaped),
        "victim_flips": sum(outcome.victim_flips.values()),
        "contained": outcome.contained,
    }


def _health_result(host: Host, task: HostTask) -> dict:
    """CE-storm drill: inject, let the monitor escalate, record the
    escalation transcript digest (backend-independent, PR 1)."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.hv.health import HealthState

    vms = list(host.hv.vms.values())
    if not vms:
        return {"idle": True, "offlined": False, "migrated_blocks": 0}
    dram = host.hv.machine.dram
    geom = host.hv.machine.geom
    media = dram.mapping.decode(vms[0].backing[0].start)
    interval = 0.004
    plan = FaultPlan.ce_storm(
        media.socket,
        media.socket_bank_index(geom),
        media.row,
        errors=task.storm_errors,
        words_per_row=geom.row_bytes * 8 // 64,
        start=dram.clock + interval,
        interval=interval,
        seed=task.spec.seed,
    )
    injector = FaultInjector(dram, plan).attach()
    for _ in range(task.storm_errors + 2):
        dram.advance_time(interval)
        dram.patrol_scrub()
    host.monitor.poll()
    injector.detach()
    timeline = "\n".join(host.monitor.timeline)
    return {
        "idle": False,
        "target": [media.socket, media.row],
        "offlined": host.monitor.state_of(media.socket, media.row)
        is HealthState.OFFLINED,
        "migrated_blocks": sum(len(r.migrated) for r in host.monitor.reports),
        "deferred_blocks": sum(len(r.deferred) for r in host.monitor.reports),
        "timeline_digest": hashlib.sha256(timeline.encode()).hexdigest(),
    }


def run_host_task(task: HostTask) -> dict:
    """Worker entry point: boot the host, replay its placements, run the
    scenario.  **Pure** in ``task`` — same task, same result dict, in any
    process.  Exceptions become a typed error result (graceful worker
    failure: one sick host must not kill the campaign)."""
    try:
        host = Host.boot(task.spec)
        for spec in task.vm_specs:
            host.create_vm(spec)
        if task.scenario == "attack":
            payload = _attack_result(host, task)
        elif task.scenario == "health":
            payload = _health_result(host, task)
        else:
            raise FleetError(f"unknown scenario {task.scenario!r}")
        host.assert_isolation()
        return {
            "host_id": task.spec.host_id,
            "ok": True,
            "seed": task.spec.seed,
            "vms": [s.name for s in task.vm_specs],
            "placed_bytes": sum(s.memory_bytes for s in task.vm_specs),
            "scenario": task.scenario,
            **payload,
        }
    except Exception as exc:  # noqa: BLE001 — workers must not die silently
        return {
            "host_id": task.spec.host_id,
            "ok": False,
            "vms": [s.name for s in task.vm_specs],
            "placed_bytes": 0,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }


class FleetCampaign:
    """Placement + per-host simulation + deterministic merge."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        self.fleet: Fleet | None = None
        self.admission: AdmissionController | None = None

    # ------------------------------------------------------------------
    # Phase 1: placement
    # ------------------------------------------------------------------

    def place(self) -> Fleet:
        """Boot the fleet and drive the arrival trace through admission."""
        cfg = self.config
        self.fleet = Fleet.boot(
            cfg.hosts, seed=cfg.seed, sockets=cfg.sockets, backend=cfg.backend
        )
        self.guest_capacity_bytes = sum(
            n.total_bytes
            for h in self.fleet.hosts
            for n in h.hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
        )
        scheduler = make_scheduler(cfg.policy)
        self.admission = AdmissionController(
            self.fleet,
            scheduler,
            queue_depth=cfg.queue_depth,
            max_retries=cfg.max_retries,
        )
        trace = generate_arrival_trace(
            cfg.seed, cfg.vms, sizes_mib=cfg.vm_sizes_mib, sockets=cfg.sockets
        )
        for spec in trace:
            if not self.admission.submit(spec):
                # Backpressure hit: let the queue drain, then resubmit
                # once (a second full-queue rejection is final).
                self.admission.drain()
                self.admission.submit(spec)
        self.admission.drain()
        self.fleet.assert_isolation()
        return self.fleet

    # ------------------------------------------------------------------
    # Phase 2 + 3: sharded simulation, deterministic merge
    # ------------------------------------------------------------------

    def tasks(self) -> list[HostTask]:
        """Picklable per-host work items: each host's spec plus its
        admitted VM specs in placement order."""
        if self.fleet is None:
            raise FleetError("place() must run before tasks()")
        cfg = self.config
        return [
            HostTask(
                spec=h.spec,
                vm_specs=tuple(h.vm_specs.values()),
                scenario=cfg.scenario,
                budget=cfg.budget,
                storm_errors=cfg.storm_errors,
            )
            for h in self.fleet.hosts
        ]

    def run(self) -> FleetReport:
        """Place (if not already placed), execute every host task, and
        merge the results in host-id order into the campaign report."""
        cfg = self.config
        if self.fleet is None:
            self.place()
        tasks = self.tasks()
        results = self._execute(tasks, cfg.workers)
        assert self.admission is not None
        report = FleetReport.build(
            config=cfg,
            decisions=list(self.admission.decisions),
            host_results=sorted(results, key=lambda r: r["host_id"]),
            guest_capacity_bytes=self.guest_capacity_bytes,
        )
        report.fold_into_metrics()
        _log.info("fleet campaign: %s", report.headline())
        return report

    @staticmethod
    def _execute(tasks: list[HostTask], workers: int) -> list[dict]:
        """Run every host task, serially or across a process pool.

        Both paths call the same :func:`run_host_task`, so the merged
        results are identical by construction; the pool only changes
        wall-clock time.
        """
        if workers <= 1 or len(tasks) <= 1:
            return [run_host_task(t) for t in tasks]
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            return pool.map(run_host_task, tasks)


def run_campaign(config: CampaignConfig) -> FleetReport:
    """One-call convenience used by the CLI and the scaling bench."""
    return FleetCampaign(config).run()


__all__ = [
    "CampaignConfig",
    "FleetCampaign",
    "HostTask",
    "SCENARIOS",
    "derive_host_seed",
    "run_campaign",
    "run_host_task",
]
