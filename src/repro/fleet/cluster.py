"""Cluster-scale fleet campaigns: 1000 hosts / 100k VMs in bounded memory.

The classic :class:`~repro.fleet.driver.FleetCampaign` boots every host
in the driver process before admission even starts — fine for 8 hosts,
hopeless for 1000 (a booted host is a full bit-level DRAM simulation).
Cluster mode replaces driver-side hosts with **logical capacity twins**:

- :class:`LogicalHost` replays ``SilozHypervisor._place_vm``'s §5.3
  admission arithmetic (``needed = memory + 2·backing_page``; chosen
  subarray-group nodes are fully consumed — one tenant per group) as
  integer bookkeeping against a shape measured from ONE real template
  boot.  It duck-types the slice of the :class:`~repro.fleet.host.Host`
  surface the schedulers and :class:`AdmissionController` touch, so the
  placement policies run verbatim against twins.
- Admission is **sharded**: hosts partition into contiguous per-shard
  ranges, each with its own bounded queue, and arrival *i* goes to
  shard ``i % shards`` — deterministic, so the merge digest is a pure
  function of (config, seed), never of worker count or backend.
- Decisions and host results fold into a
  :class:`~repro.fleet.report.StreamingMerge` as they happen; the
  driver never materializes the 100k-decision list or the per-host
  result list (workers stream compact payloads, ``collect=False``).

Trust but verify: the twins only *admit*; every worker re-runs the real
placement (``Host.boot`` + ``create_vm`` replay) for its host.  If a
twin ever admits something the real hypervisor rejects, the worker
returns a typed failed-host result and the campaign reports it loudly —
divergence can never be silent.

Saturation fast path: cluster capacity is monotone (no VM ever leaves),
so once a request needing ``N`` bytes exhausts its retries in a shard,
every later request needing ``>= N`` bytes in that shard must fail the
same way.  The shard records ``min_failed_needed`` and synthesizes the
*identical* retries-exhausted decision without re-scanning — that turns
the ~90k post-saturation arrivals of a 100k-VM trace into O(1) each
(:func:`tests.test_cluster` asserts the bypass is bit-equivalent to the
scanned path).

Chaos, journals, and resume are campaign-driver features; cluster mode
rejects them explicitly rather than half-supporting them.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field

from repro.errors import FleetError, PlacementError
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger

from repro.fleet.admission import (
    AdmissionController,
    AdmissionDecision,
    RejectReason,
    iter_arrival_trace,
)
from repro.fleet.driver import (
    SCENARIOS,
    HostTask,
    run_host_task,
    warm_worker,
)
from repro.fleet.host import Host, HostSpec, derive_host_seed
from repro.fleet.report import StreamingMerge, _config_dict
from repro.fleet.scheduler import make_scheduler

_log = get_logger("fleet.cluster")


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster-scale campaign, fully described.

    Deliberately a separate type from
    :class:`~repro.fleet.driver.CampaignConfig`: the classic config is
    hashed into journals and golden fixtures, and must not grow fields.
    ``shards`` IS part of the merge digest (shard boundaries change
    placement); ``workers`` and ``backend`` are scrubbed exactly as in
    the classic report.
    """

    hosts: int = 1000
    vms: int = 100_000
    policy: str = "first-fit"
    scenario: str = "attack"
    backend: str = "scalar"
    seed: int = 0
    workers: int = 1
    #: Attack-scenario fuzzer patterns per host (cluster default is
    #: lean: throughput, not per-host depth, is what is under test).
    budget: int = 2
    storm_errors: int = 20
    sockets: int = 1
    queue_depth: int = 64
    max_retries: int = 2
    vm_sizes_mib: tuple[int, ...] = (1, 2, 2, 3, 4)
    mitigation: str = "siloz"
    #: Admission shards (contiguous host ranges, arrival i -> i % shards).
    shards: int = 16

    def __post_init__(self) -> None:
        if self.hosts <= 0 or self.vms < 0:
            raise FleetError("need at least one host and a non-negative VM count")
        if self.workers <= 0:
            raise FleetError("workers must be positive")
        if self.scenario not in SCENARIOS:
            raise FleetError(f"unknown scenario {self.scenario!r}; know {SCENARIOS}")
        if not 0 < self.shards <= self.hosts:
            raise FleetError("shards must be in 1..hosts")


# ----------------------------------------------------------------------
# Logical capacity twins
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HostShape:
    """Capacity geometry measured from one real template boot.

    Every host in a campaign is the same machine shape (only the DRAM
    seed differs), so one boot prices them all.
    """

    backing_page_bytes: int
    sockets: int
    #: Free guest-reserved subarray-group nodes on a fresh host.
    guest_nodes: int
    #: Bytes per guest node (uniform — verified at measurement).
    node_bytes: int

    @property
    def guest_capacity_bytes(self) -> int:
        return self.guest_nodes * self.node_bytes


def measure_host_shape(
    *, sockets: int = 1, backend: str = "scalar", mitigation: str = "siloz"
) -> HostShape:
    """Boot ONE real host and read the capacity geometry off it."""
    template = Host.boot(
        HostSpec(
            host_id=0,
            seed=0,
            sockets=sockets,
            backend=backend,
            mitigation=mitigation,
        )
    )
    cap = template.capacity()
    free_ids = list(cap.free_guest_node_ids)
    if not free_ids:
        raise FleetError("template host has no free guest nodes")
    sizes = {cap.free_bytes_by_node[n] for n in free_ids}
    if len(sizes) != 1:
        raise FleetError(
            f"cluster mode needs uniform guest nodes, got sizes {sorted(sizes)}"
        )
    return HostShape(
        backing_page_bytes=template.hv.backing_page_bytes,
        sockets=template.hv.machine.geom.sockets,
        guest_nodes=len(free_ids),
        node_bytes=sizes.pop(),
    )


class _LogicalDram:
    """Admission backoff advances simulated time fleet-wide; twins keep
    no clock (the real clocks live in the workers), so this is a no-op
    that preserves the controller's call surface."""

    def advance_time(self, seconds: float) -> None:
        if seconds < 0:
            raise FleetError("cannot advance time backwards")


class _LogicalGeom:
    __slots__ = ("sockets",)

    def __init__(self, sockets: int):
        self.sockets = sockets


class _LogicalMachine:
    __slots__ = ("geom", "dram")

    def __init__(self, sockets: int):
        self.geom = _LogicalGeom(sockets)
        self.dram = _LogicalDram()


class _LogicalHv:
    """The ``host.hv.*`` slice schedulers and admission actually touch."""

    __slots__ = ("backing_page_bytes", "machine")

    def __init__(self, shape: HostShape):
        self.backing_page_bytes = shape.backing_page_bytes
        self.machine = _LogicalMachine(shape.sockets)


@dataclass(frozen=True)
class _LogicalCapacity:
    """Duck-typed :class:`~repro.hv.hypervisor.CapacitySnapshot` slice."""

    free_guest_node_ids: tuple[int, ...]
    free_guest_bytes: int
    total_guest_nodes: int
    vm_count: int


class LogicalHost:
    """Integer-bookkeeping twin of one unbooted fleet host.

    Mirrors the §5.3 admission arithmetic: a placement needs
    ``memory + 2·backing_page`` bytes and consumes whole subarray-group
    nodes (``ceil(needed / node_bytes)`` of them — a chosen group is
    fully reserved for its single tenant even when partially used).
    ``host_fits``'s documented sufficient-and-necessary condition is
    exactly ``free bytes >= needed``, which is what makes this twin
    faithful; workers re-verify against the real hypervisor anyway.
    """

    __slots__ = ("spec", "shape", "hv", "free_nodes", "vm_specs")

    def __init__(self, spec: HostSpec, shape: HostShape, hv: _LogicalHv):
        self.spec = spec
        self.shape = shape
        self.hv = hv
        self.free_nodes = shape.guest_nodes
        #: Admitted VmSpecs in placement order (replayed by workers).
        self.vm_specs: dict[str, VmSpec] = {}

    @property
    def host_id(self) -> int:
        return self.spec.host_id

    def needed_nodes(self, spec: VmSpec) -> int:
        needed = spec.memory_bytes + 2 * self.shape.backing_page_bytes
        return -(-needed // self.shape.node_bytes)

    def capacity(self) -> _LogicalCapacity:
        """A capacity snapshot shaped like the real hypervisor's."""
        return _LogicalCapacity(
            # Ids are synthetic: callers only take len() of them.
            free_guest_node_ids=tuple(range(self.free_nodes)),
            free_guest_bytes=self.free_nodes * self.shape.node_bytes,
            total_guest_nodes=self.shape.guest_nodes,
            vm_count=len(self.vm_specs),
        )

    def create_vm(self, spec: VmSpec) -> None:
        """Consume group nodes for *spec*, or raise the same typed
        capacity :class:`PlacementError` a real host would."""
        needed = spec.memory_bytes + 2 * self.shape.backing_page_bytes
        take = self.needed_nodes(spec)
        if self.free_nodes * self.shape.node_bytes < needed:
            raise PlacementError(
                f"logical host {self.host_id} cannot place {spec.name!r}",
                requested_groups=take,
                available_groups=self.free_nodes,
            )
        self.free_nodes -= take
        self.vm_specs[spec.name] = spec

    def __repr__(self) -> str:
        return (
            f"LogicalHost(id={self.host_id}, vms={len(self.vm_specs)}, "
            f"free_groups={self.free_nodes}/{self.shape.guest_nodes})"
        )


@dataclass
class LogicalFleet:
    """Duck-typed :class:`~repro.fleet.host.Fleet` slice for one shard."""

    hosts: list[LogicalHost] = field(default_factory=list)

    @classmethod
    def build(
        cls, host_ids: range, shape: HostShape, config: ClusterConfig
    ) -> "LogicalFleet":
        hv = _LogicalHv(shape)  # shared: twins are stateless through hv
        return cls(
            hosts=[
                LogicalHost(
                    HostSpec(
                        host_id=i,
                        seed=derive_host_seed(config.seed, i),
                        sockets=config.sockets,
                        backend=config.backend,
                        mitigation=config.mitigation,
                    ),
                    shape,
                    hv,
                )
                for i in host_ids
            ]
        )

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    @property
    def free_groups(self) -> int:
        return sum(h.free_nodes for h in self.hosts)


# ----------------------------------------------------------------------
# Sharded admission
# ----------------------------------------------------------------------


class ClusterShard:
    """One admission shard: a host range, a bounded queue, a scheduler.

    ``offer`` is drain-per-arrival: each request is submitted and the
    queue drained immediately, so retries happen in place and every
    arrival yields exactly one decision, in arrival order — the
    property the streaming decision fold depends on.
    """

    def __init__(self, shard_id: int, host_ids: range, config: ClusterConfig,
                 shape: HostShape, on_decision) -> None:
        self.shard_id = shard_id
        self.shape = shape
        self.fleet = LogicalFleet.build(host_ids, shape, config)
        self.controller = AdmissionController(
            self.fleet,  # type: ignore[arg-type] — duck-typed twin fleet
            make_scheduler(config.policy),
            queue_depth=config.queue_depth,
            max_retries=config.max_retries,
            retain_decisions=False,
            on_decision=on_decision,
        )
        #: Smallest ``needed`` bytes that ever exhausted retries here.
        #: Capacity is monotone, so >= this always fails identically.
        self.min_failed_needed: int | None = None
        #: Arrivals answered by the saturation fast path (observability).
        self.pruned = 0

    def offer(self, spec: VmSpec) -> None:
        """Admit one arrival: submit + drain, or take the saturation
        fast path once an equal-or-smaller request has already
        exhausted its retries against this shard."""
        needed = spec.memory_bytes + 2 * self.shape.backing_page_bytes
        if self.min_failed_needed is not None and needed >= self.min_failed_needed:
            # Saturation fast path: synthesize the decision the full
            # retry ladder would reach (attempts exhausted; shortfall
            # aggregated over the shard) without re-scanning the hosts.
            self.pruned += 1
            self.controller.record_decision(
                AdmissionDecision(
                    vm=spec.name,
                    admitted=False,
                    reason=RejectReason.RETRIES_EXHAUSTED,
                    attempts=self.controller.max_retries + 1,
                    requested_groups=1,
                    available_groups=self.fleet.free_groups,
                )
            )
            return
        self.controller.submit(spec)
        for decision in self.controller.drain():
            if (
                not decision.admitted
                and decision.reason is RejectReason.RETRIES_EXHAUSTED
            ):
                if self.min_failed_needed is None or needed < self.min_failed_needed:
                    self.min_failed_needed = needed


def shard_ranges(hosts: int, shards: int) -> list[range]:
    """Contiguous host-id ranges, sizes differing by at most one."""
    base, extra = divmod(hosts, shards)
    ranges: list[range] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append(range(lo, hi))
        lo = hi
    return ranges


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


@dataclass
class ClusterReport:
    """Bounded-size outcome of one cluster campaign."""

    config: dict
    #: :meth:`StreamingMerge.summary` — includes ``merge_digest``.
    summary: dict
    supervision: dict
    #: Saturation fast-path hits across all shards (execution detail).
    pruned_arrivals: int
    elapsed_s: float
    hosts_per_sec: float
    #: Driver-process peak RSS (the bounded-memory claim is about the
    #: merge path, which runs here).
    peak_rss_mib: float

    @property
    def merge_digest(self) -> str:
        return self.summary["merge_digest"]

    @property
    def hosts_failed(self) -> int:
        return self.summary["hosts_failed"]

    def render_text(self) -> str:
        """Human-readable report ending with the merge digest line."""
        s = self.summary
        lines = [
            "cluster campaign report",
            f"  {s['hosts']} host(s) in {self.config.get('shards')} shard(s), "
            f"{s['admitted']}/{s['arrivals']} admitted "
            f"({s['acceptance_rate']:.1%}), "
            f"{s['hosts_failed']} host failure(s)",
            f"  policy={self.config.get('policy')} "
            f"scenario={self.config.get('scenario')} "
            f"backend={self.config.get('backend')} "
            f"seed={self.config.get('seed')}",
            f"  throughput: {self.hosts_per_sec:.1f} hosts/sec "
            f"({self.elapsed_s:.1f}s wall, peak rss {self.peak_rss_mib:.0f} MiB, "
            f"{self.pruned_arrivals} saturation-pruned arrival(s))",
        ]
        if s["rejected_by_reason"]:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(s["rejected_by_reason"].items())
            )
            lines.append(f"  rejections: {parts}")
        if s["scenario_counts"]:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(s["scenario_counts"].items())
            )
            lines.append(f"  outcomes: {parts}")
        lines.append(f"  merge digest: {self.merge_digest}")
        return "\n".join(lines)


def _peak_rss_mib() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


class ClusterCampaign:
    """Sharded admission over logical twins + streaming supervised merge."""

    def __init__(self, config: ClusterConfig, *, pool: str = "persistent"):
        self.config = config
        self.pool = pool
        self.shards: list[ClusterShard] = []
        self.fold: StreamingMerge | None = None

    # -- phase 1: sharded admission over capacity twins -----------------

    def place(self) -> StreamingMerge:
        """Stream the arrival trace through the sharded admission
        queues, folding every decision into the streaming merge."""
        cfg = self.config
        shape = measure_host_shape(
            sockets=cfg.sockets, backend=cfg.backend, mitigation=cfg.mitigation
        )
        fold = StreamingMerge(_config_dict(cfg))
        fold.guest_capacity_bytes = cfg.hosts * shape.guest_capacity_bytes
        self.shards = [
            ClusterShard(s, ids, cfg, shape, fold.add_decision)
            for s, ids in enumerate(shard_ranges(cfg.hosts, cfg.shards))
        ]
        trace = iter_arrival_trace(
            cfg.seed, cfg.vms, sizes_mib=cfg.vm_sizes_mib, sockets=cfg.sockets
        )
        n = len(self.shards)
        for i, spec in enumerate(trace):
            self.shards[i % n].offer(spec)
        self.fold = fold
        _log.info(
            "cluster admission: %d/%d admitted across %d shard(s) "
            "(%d saturation-pruned)",
            fold.admitted, fold.decision_count, n, self.pruned_arrivals,
        )
        return fold

    @property
    def pruned_arrivals(self) -> int:
        return sum(s.pruned for s in self.shards)

    def tasks(self) -> list[HostTask]:
        """Every host's replay task, in host-id order across shards."""
        if self.fold is None:
            raise FleetError("place() must run before tasks()")
        cfg = self.config
        return [
            HostTask(
                spec=h.spec,
                vm_specs=tuple(h.vm_specs.values()),
                scenario=cfg.scenario,
                budget=cfg.budget,
                storm_errors=cfg.storm_errors,
            )
            for shard in self.shards
            for h in shard.fleet.hosts
        ]

    # -- phase 2+3: supervised execution, streaming merge ---------------

    def run(self) -> ClusterReport:
        """Place (if not already placed), execute every logical host's
        real per-host simulation under the worker pool, and finalize
        the streaming merge into a :class:`ClusterReport`."""
        from repro.chaos.supervisor import CampaignSupervisor

        cfg = self.config
        t0 = time.monotonic()
        if self.fold is None:
            self.place()
        fold = self.fold
        assert fold is not None
        tasks = self.tasks()

        supervisor = CampaignSupervisor(
            run_host_task, pool=self.pool, warmup=warm_worker
        )
        _, supervision = supervisor.run(
            tasks,
            cfg.workers,
            on_result=fold.add_host_result,
            collect=False,
        )
        fold.set_aftermath(degraded={}, audit=[])
        elapsed = time.monotonic() - t0

        summary = fold.summary()
        summary["scenario_counts"] = self._scenario_counts(summary)
        report = ClusterReport(
            # The report renders the full config; the fold hashed the
            # scrubbed one (no workers/backend).
            config=_config_dict(cfg),
            summary=summary,
            supervision=supervision.to_dict(),
            pruned_arrivals=self.pruned_arrivals,
            elapsed_s=elapsed,
            hosts_per_sec=(cfg.hosts / elapsed) if elapsed > 0 else 0.0,
            peak_rss_mib=_peak_rss_mib(),
        )
        _log.info("cluster campaign: %s", report.render_text().splitlines()[1])
        return report

    @staticmethod
    def _scenario_counts(summary: dict) -> dict:
        counts: dict[str, int] = {}
        if summary["flips"]:
            counts["flips"] = summary["flips"]
        if summary["escaped"]:
            counts["escaped"] = summary["escaped"]
        if summary["contained"]:
            counts["contained_hosts"] = summary["contained"]
        return counts


def run_cluster_campaign(
    config: ClusterConfig, *, pool: str = "persistent"
) -> ClusterReport:
    """One-call convenience used by the CLI and the scaling bench."""
    return ClusterCampaign(config, pool=pool).run()


__all__ = [
    "ClusterCampaign",
    "ClusterConfig",
    "ClusterReport",
    "ClusterShard",
    "HostShape",
    "LogicalFleet",
    "LogicalHost",
    "measure_host_shape",
    "run_cluster_campaign",
    "shard_ranges",
]
