"""Fleet admission control: a bounded request queue with backpressure.

Tenant requests arrive as :class:`VmSpec`s and wait in a bounded FIFO.
``submit`` applies **backpressure**: a full queue rejects immediately
(typed ``QUEUE_FULL``) instead of growing without bound — the cloud
front door's 429.  ``drain`` processes the queue through a placement
scheduler; a request the fleet cannot place *right now* is retried up
to ``max_retries`` times (later requests may be smaller and fit, and
each retry lets simulated time advance by a doubling backoff, modelling
capacity freed by churn) before being evicted with a typed reason.

Every decision is recorded as an :class:`AdmissionDecision` and emitted
as an :class:`~repro.obs.events.AdmissionEvent`, so acceptance rates
and rejection causes are first-class fleet metrics.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro import obs
from repro.errors import HvError, PlacementError
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger
from repro.units import MiB

from repro.fleet.host import Fleet
from repro.fleet.scheduler import PlacementScheduler, spec_page_aligned

_log = get_logger("fleet.admission")


class RejectReason(Enum):
    """Why a tenant request was evicted (typed, for callers and metrics)."""

    #: Backpressure: the bounded queue was full at submit time.
    QUEUE_FULL = "queue-full"
    #: The spec violates a static constraint (page alignment, bad socket).
    INVALID_SPEC = "invalid-spec"
    #: Transient capacity shortfall persisted through every retry.
    RETRIES_EXHAUSTED = "retries-exhausted"


@dataclass(frozen=True)
class AdmissionDecision:
    """One request's final disposition."""

    vm: str
    admitted: bool
    #: Placing host id (admitted) or -1.
    host_id: int = -1
    reason: RejectReason | None = None
    attempts: int = 1
    #: Shortfall detail from the last typed capacity error (if any).
    requested_groups: int | None = None
    available_groups: int | None = None

    @property
    def outcome(self) -> str:
        return "admitted" if self.admitted else "rejected"


@dataclass(frozen=True)
class _Pending:
    spec: VmSpec
    attempts: int = 0


class AdmissionController:
    """Bounded admission queue in front of a fleet + scheduler."""

    def __init__(
        self,
        fleet: Fleet,
        scheduler: PlacementScheduler,
        *,
        queue_depth: int = 64,
        max_retries: int = 2,
        backoff_s: float = 0.001,
        retain_decisions: bool = True,
        on_decision=None,
    ):
        if queue_depth <= 0:
            raise HvError("queue_depth must be positive")
        if max_retries < 0:
            raise HvError("max_retries must be non-negative")
        self.fleet = fleet
        self.scheduler = scheduler
        self.queue_depth = queue_depth
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self._queue: deque[_Pending] = deque()
        #: When False, decisions are streamed to ``on_decision`` (if
        #: set) and **not** accumulated — cluster-scale campaigns fold
        #: 100k decisions without holding them.  Aggregate accounting
        #: (acceptance rate, rejections by reason) stays exact either
        #: way via the running counters below.
        self.retain_decisions = retain_decisions
        self.on_decision = on_decision
        self.decisions: list[AdmissionDecision] = []
        self._decided = 0
        self._admitted = 0
        self._rejected: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Intake (backpressure)
    # ------------------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._queue)

    def submit(self, spec: VmSpec) -> bool:
        """Enqueue one request; ``False`` means rejected at the door
        (queue full — the caller should back off and resubmit later)."""
        if len(self._queue) >= self.queue_depth:
            self._decide(
                AdmissionDecision(
                    vm=spec.name, admitted=False, reason=RejectReason.QUEUE_FULL
                )
            )
            return False
        self._queue.append(_Pending(spec))
        return True

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------

    def drain(self) -> list[AdmissionDecision]:
        """Process the queue to empty; returns the decisions made now.

        FIFO with retry-to-tail: a request that cannot be placed is
        requeued behind the work already waiting (it will see a fleet
        that later, smaller requests may have changed), up to
        ``max_retries`` requeues before eviction.
        """
        made: list[AdmissionDecision] = []
        while self._queue:
            pending = self._queue.popleft()
            decision = self._try_place(pending)
            if decision is None:  # requeued for retry
                continue
            made.append(decision)
        return made

    def _try_place(self, pending: _Pending) -> AdmissionDecision | None:
        spec, attempt = pending.spec, pending.attempts + 1
        if not any(spec_page_aligned(h, spec) for h in self.fleet.hosts) or not any(
            spec.socket < h.hv.machine.geom.sockets for h in self.fleet.hosts
        ):
            return self._decide(
                AdmissionDecision(
                    vm=spec.name,
                    admitted=False,
                    reason=RejectReason.INVALID_SPEC,
                    attempts=attempt,
                )
            )
        try:
            host = self.scheduler.place(self.fleet, spec)
        except PlacementError as exc:
            if not exc.is_capacity:
                raise
            if pending.attempts < self.max_retries:
                self._backoff(pending.attempts)
                self._queue.append(_Pending(spec, attempts=attempt))
                return None
            return self._decide(
                AdmissionDecision(
                    vm=spec.name,
                    admitted=False,
                    reason=RejectReason.RETRIES_EXHAUSTED,
                    attempts=attempt,
                    requested_groups=exc.requested_groups,
                    available_groups=exc.available_groups,
                )
            )
        return self._decide(
            AdmissionDecision(
                vm=spec.name, admitted=True, host_id=host.host_id, attempts=attempt
            )
        )

    def stall(self, seconds: float) -> None:
        """Chaos hook: the placement daemon wedges for *seconds* of
        simulated time — nothing drains, clocks advance fleet-wide, and
        queued requests sit.  Callers model the outage window by
        refusing to drain-on-backpressure while stalled, so a full
        queue rejects (typed ``QUEUE_FULL``) instead of wedging the
        arrival loop — backpressure is exactly the behaviour under
        test."""
        if seconds < 0:
            raise HvError("stall seconds must be non-negative")
        for host in self.fleet.hosts:
            host.hv.machine.dram.advance_time(seconds)

    def _backoff(self, prior_attempts: int) -> None:
        """Let simulated time pass fleet-wide before the retry (churn
        may free capacity meanwhile), doubling per attempt."""
        wait = self.backoff_s * (2 ** prior_attempts)
        for host in self.fleet.hosts:
            host.hv.machine.dram.advance_time(wait)

    def record_decision(self, decision: AdmissionDecision) -> AdmissionDecision:
        """Record a decision made outside the queue machinery.

        Cluster mode's saturation fast path synthesizes the decision a
        full retry ladder would reach (capacity is monotone, so the
        outcome is already known) and records it here so counters, the
        decision stream, and the admission events stay exact.
        """
        return self._decide(decision)

    def _decide(self, decision: AdmissionDecision) -> AdmissionDecision:
        if self.retain_decisions:
            self.decisions.append(decision)
        self._decided += 1
        if decision.admitted:
            self._admitted += 1
        elif decision.reason is not None:
            key = decision.reason.value
            self._rejected[key] = self._rejected.get(key, 0) + 1
        if self.on_decision is not None:
            self.on_decision(decision)
        _log.info(
            "admission: %s %s%s (attempt %d)",
            decision.vm,
            decision.outcome,
            f" -> host {decision.host_id}" if decision.admitted
            else f" ({decision.reason.value})",
            decision.attempts,
        )
        if obs.ENABLED:
            obs.emit(
                obs.AdmissionEvent(
                    vm=decision.vm,
                    outcome=decision.outcome,
                    reason=decision.reason.value if decision.reason else "",
                    host=decision.host_id,
                    attempts=decision.attempts,
                )
            )
        return decision

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def decided(self) -> int:
        """Total decisions made (exact even with ``retain_decisions=False``)."""
        return self._decided

    @property
    def acceptance_rate(self) -> float:
        if not self._decided:
            return 0.0
        return self._admitted / self._decided

    def rejected_by_reason(self) -> dict[str, int]:
        return dict(self._rejected)


def iter_arrival_trace(
    seed: int,
    count: int,
    *,
    sizes_mib: tuple[int, ...] = (1, 2, 2, 3, 4),
    sockets: int = 1,
    name_prefix: str = "vm",
):
    """Generator form of :func:`generate_arrival_trace` — identical
    specs in identical order, but O(1) memory, so a 100k-VM cluster
    trace streams through admission without ever materializing."""
    rng = random.Random(seed ^ 0x5F1EE7)
    for i in range(count):
        yield VmSpec(
            name=f"{name_prefix}-{i:03d}",
            memory_bytes=rng.choice(sizes_mib) * MiB,
            socket=rng.randrange(sockets),
        )


def generate_arrival_trace(
    seed: int,
    count: int,
    *,
    sizes_mib: tuple[int, ...] = (1, 2, 2, 3, 4),
    sockets: int = 1,
    name_prefix: str = "vm",
) -> list[VmSpec]:
    """A deterministic tenant arrival trace: *count* VM requests with
    sizes drawn (seeded) from *sizes_mib* and round-robin-ish sockets.

    Sizes are whole MiB so they satisfy every small-machine backing page
    size; the same ``(seed, count)`` always yields the same trace — the
    workers=1 vs workers=N determinism criterion depends on it.
    """
    return list(
        iter_arrival_trace(
            seed,
            count,
            sizes_mib=sizes_mib,
            sockets=sockets,
            name_prefix=name_prefix,
        )
    )
