"""Fleet-wide VM placement schedulers.

A scheduler ranks the hosts that *can* take a :class:`VmSpec` (by the
same §5.3 admission arithmetic ``SilozHypervisor._place_vm`` applies:
enough free bytes across unreserved guest-group nodes, plus the ROM
slack) and the fleet places on the first candidate that accepts.  Three
policies ship, mirroring the classic bin-packing trade-offs Citadel-style
domain-aware allocators study:

- **first-fit** — lowest host id that fits; fast, fragments the tail.
- **best-fit** — the tightest fit (least guest headroom left after the
  placement); packs hosts densely, keeps whole hosts free for big VMs.
- **spread** — the loosest fit (most free guest bytes, fewest tenants);
  evens load and blast radius at the cost of acceptance under pressure.

All three enforce the §4.2 page-size constraint (a VM's memory must be
a whole number of the host's 2 MiB/1 GiB-analogue backing pages) and
never propose a host whose free subarray-group nodes cannot hold the
request — the one-tenant-per-group invariant is enforced underneath by
``SilozHypervisor`` and re-asserted by :meth:`Host.create_vm`.
"""

from __future__ import annotations

from repro.errors import FleetError, PlacementError
from repro.hv.hypervisor import VmSpec
from repro.log import get_logger

from repro.fleet.host import Fleet, Host

_log = get_logger("fleet.scheduler")


def needed_bytes(host: Host, spec: VmSpec) -> int:
    """What the host-level placement will actually look for (§5.3
    admission check): the VM's memory plus the ROM-rounding slack."""
    return spec.memory_bytes + 2 * host.hv.backing_page_bytes


def spec_page_aligned(host: Host, spec: VmSpec) -> bool:
    """§4.2: guest RAM must be a whole number of backing pages."""
    return spec.memory_bytes % host.hv.backing_page_bytes == 0


def host_fits(host: Host, spec: VmSpec) -> bool:
    """Whether *host* can currently admit *spec*.

    Sufficient and necessary for ``_place_vm`` to succeed: the host
    placement loop accumulates free bytes over every unreserved guest
    node, so fitting is exactly "total free guest bytes >= needed".
    """
    if not spec_page_aligned(host, spec):
        return False
    if spec.socket >= host.hv.machine.geom.sockets:
        return False
    return host.capacity().free_guest_bytes >= needed_bytes(host, spec)


class PlacementScheduler:
    """Base: subclasses implement the ranking key."""

    name = "?"

    def _key(self, host: Host, spec: VmSpec):
        raise NotImplementedError

    def rank(self, fleet: Fleet, spec: VmSpec, *, exclude: tuple[int, ...] = ()):
        """Hosts that fit *spec*, best candidate first."""
        fitting = [
            h
            for h in fleet.hosts
            if h.host_id not in exclude and host_fits(h, spec)
        ]
        return sorted(fitting, key=lambda h: (self._key(h, spec), h.host_id))

    def place(self, fleet: Fleet, spec: VmSpec, *, exclude: tuple[int, ...] = ()) -> Host:
        """Place *spec* on the best-ranked host that accepts it.

        A candidate whose estimate went stale (another placement landed
        between ranking and admission) is skipped; exhausting every
        candidate raises a typed capacity :class:`PlacementError` whose
        counts aggregate the fleet's current free groups.
        """
        for host in self.rank(fleet, spec, exclude=exclude):
            try:
                host.create_vm(spec)
                return host
            except PlacementError as exc:
                if not exc.is_capacity:
                    raise
                _log.info(
                    "host %d turned down %s (stale estimate): %s",
                    host.host_id, spec.name, exc,
                )
        free_groups = sum(
            len(h.capacity().free_guest_node_ids)
            for h in fleet.hosts
            if h.host_id not in exclude
        )
        raise PlacementError(
            f"no host in the fleet can place VM {spec.name!r} "
            f"({spec.memory_bytes:#x} bytes)",
            requested_groups=1,
            available_groups=free_groups,
        )


class FirstFitScheduler(PlacementScheduler):
    """Lowest host id that fits."""

    name = "first-fit"

    def _key(self, host: Host, spec: VmSpec):
        return 0  # ranking falls through to the host-id tiebreak


class BestFitScheduler(PlacementScheduler):
    """Tightest fit: least guest headroom left after placing."""

    name = "best-fit"

    def _key(self, host: Host, spec: VmSpec):
        return host.capacity().free_guest_bytes - needed_bytes(host, spec)


class SpreadScheduler(PlacementScheduler):
    """Loosest fit: fewest tenants, then most free guest bytes."""

    name = "spread"

    def _key(self, host: Host, spec: VmSpec):
        cap = host.capacity()
        return (cap.vm_count, -cap.free_guest_bytes)


SCHEDULERS: dict[str, type[PlacementScheduler]] = {
    cls.name: cls
    for cls in (FirstFitScheduler, BestFitScheduler, SpreadScheduler)
}


def make_scheduler(name: str) -> PlacementScheduler:
    """Scheduler by policy name (the CLI's ``--policy`` values)."""
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise FleetError(
            f"unknown placement policy {name!r}; know {sorted(SCHEDULERS)}"
        ) from None
