"""One mitigated host inside a simulated fleet.

A :class:`Host` bundles what PR 0–3 built for a single server —
:class:`~repro.hv.machine.Machine`, a hypervisor, and the
:class:`~repro.hv.health.HealthMonitor` — behind the accounting the
fleet layer needs: per-host capacity snapshots (free placement nodes,
guard-row reservations), the VM specs it admitted (so a VM can be
re-created elsewhere during migration), and a loud isolation check that
runs after every placement.

Which hypervisor a host boots is decided by its
:class:`~repro.mitigations.base.Mitigation` (``HostSpec.mitigation``,
default ``"siloz"``): the bake-off harness runs whole fleets under
rival defences through exactly this path, and the isolation check
enforces each mitigation's *own* invariants (a shared-pool baseline
legitimately co-locates tenants; Siloz never may).

Hosts are described by a frozen, picklable :class:`HostSpec` so the
campaign driver can re-boot a bit-identical host inside a worker
process: a host is a pure function of its spec, and a host's DRAM seed
is a pure function of ``(fleet seed, host id)`` — **not** of worker
count or pool order — via :func:`derive_host_seed`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro import obs
from repro.errors import FleetError
from repro.hv.hypervisor import CapacitySnapshot, Hypervisor, VmSpec
from repro.hv.machine import Machine
from repro.hv.vm import VirtualMachine
from repro.log import get_logger
from repro.mitigations import Mitigation, make_mitigation

_log = get_logger("fleet.host")


def derive_host_seed(base_seed: int, host_id: int) -> int:
    """Stable per-host DRAM seed: a pure function of the fleet seed and
    the host id, independent of worker count and pool scheduling order.

    Uses a keyed blake2b digest rather than Python's salted ``hash`` so
    the derivation is identical across processes and interpreter runs —
    the regression tests assert exactly that.
    """
    digest = hashlib.blake2b(
        f"repro.fleet:{base_seed}:{host_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class HostSpec:
    """Everything needed to boot one fleet host, picklable for workers."""

    host_id: int
    #: The host's DRAM seed (already derived; see :func:`derive_host_seed`).
    seed: int = 0
    sockets: int = 1
    backend: str = "scalar"
    #: Registered mitigation the host boots under (see
    #: :mod:`repro.mitigations.impls`).
    mitigation: str = "siloz"

    def __post_init__(self) -> None:
        if self.host_id < 0:
            raise FleetError("host_id must be non-negative")
        if self.sockets <= 0:
            raise FleetError("sockets must be positive")


class Host:
    """One booted, mitigated server plus fleet-level bookkeeping."""

    def __init__(
        self,
        spec: HostSpec,
        hv: Hypervisor,
        mitigation: Mitigation | None = None,
    ):
        self.spec = spec
        self.hv = hv
        #: The defence this host runs (owns the isolation invariants).
        self.mitigation = mitigation or make_mitigation(spec.mitigation)
        self.monitor = hv.enable_health_monitoring()
        #: VmSpecs admitted to this host, in placement order.  Migration
        #: re-creates a VM on its destination from this record, and the
        #: campaign driver replays the order inside worker processes.
        self.vm_specs: dict[str, VmSpec] = {}

    @classmethod
    def boot(cls, spec: HostSpec) -> "Host":
        """Boot a bit-level small machine and the spec's mitigation."""
        mitigation = make_mitigation(spec.mitigation)
        machine = Machine.small(
            sockets=spec.sockets, seed=spec.seed, backend=spec.backend
        )
        hv = mitigation.boot(machine)
        mitigation.attach(hv, seed=spec.seed)
        return cls(spec, hv, mitigation=mitigation)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    @property
    def host_id(self) -> int:
        return self.spec.host_id

    def capacity(self) -> CapacitySnapshot:
        return self.hv.capacity()

    def create_vm(self, spec: VmSpec) -> VirtualMachine:
        """Place one VM; asserts the one-tenant-per-group invariant
        afterwards and emits the fleet placement event."""
        vm = self.hv.create_vm(spec)
        self.vm_specs[spec.name] = spec
        self.assert_isolation()
        if obs.ENABLED:
            obs.emit(
                obs.PlacementEvent(
                    host=self.host_id,
                    vm=spec.name,
                    node_count=len(vm.node_ids),
                    group_count=len(vm.reserved_groups),
                    bytes=spec.memory_bytes,
                    when=self.hv.machine.dram.clock,
                )
            )
        return vm

    def remove_vm(self, name: str) -> None:
        """Full teardown: shut the VM down and release its reservation
        (the §5.3 privileged path, both steps)."""
        self.hv.destroy_vm(name)
        self.hv.release_reservation(name)
        self.vm_specs.pop(name, None)

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while the host has row groups it could not fully offline
        (deferred remediation pending) — the fleet's evacuation trigger."""
        return bool(self.hv.offline.pending)

    def assert_isolation(self) -> None:
        """The fleet invariant, checked loudly: no protection domain
        holds two tenants (unless the mitigation declares shared
        domains) and the mitigation's enforced audit subset is clean."""
        self.mitigation.assert_isolation(self)

    def __repr__(self) -> str:
        cap = self.capacity()
        return (
            f"Host(id={self.host_id}, vms={cap.vm_count}, "
            f"free_groups={len(cap.free_guest_node_ids)}/{cap.total_guest_nodes}, "
            f"{'degraded' if self.degraded else 'healthy'})"
        )


@dataclass
class Fleet:
    """The cluster: an ordered collection of hosts."""

    hosts: list[Host] = field(default_factory=list)

    @classmethod
    def boot(
        cls,
        n_hosts: int,
        *,
        seed: int = 0,
        sockets: int = 1,
        backend: str = "scalar",
        mitigation: str = "siloz",
    ) -> "Fleet":
        """Boot *n_hosts* small mitigated hosts with derived seeds."""
        if n_hosts <= 0:
            raise FleetError("a fleet needs at least one host")
        return cls(
            hosts=[
                Host.boot(
                    HostSpec(
                        host_id=i,
                        seed=derive_host_seed(seed, i),
                        sockets=sockets,
                        backend=backend,
                        mitigation=mitigation,
                    )
                )
                for i in range(n_hosts)
            ]
        )

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self):
        return iter(self.hosts)

    def host(self, host_id: int) -> Host:
        for h in self.hosts:
            if h.host_id == host_id:
                return h
        raise FleetError(f"no host {host_id} in fleet")

    def assert_isolation(self) -> None:
        """Fleet-wide invariant check (every host)."""
        for h in self.hosts:
            h.assert_isolation()

    def degraded_hosts(self) -> list[Host]:
        return [h for h in self.hosts if h.degraded]

    def total_guest_capacity(self) -> int:
        """Allocatable guest bytes across the fleet *right now* (free
        unreserved group nodes only)."""
        return sum(h.capacity().free_guest_bytes for h in self.hosts)
