"""Cross-host live migration and degraded-host evacuation.

Within one host, PR 1's :func:`~repro.core.remediation.offline_row_group_live`
migrates backing blocks *inside* a VM's own reservation.  Some blocks
cannot move that way — EPT table pages (interior tree pointers), or a
reservation so full no replacement frames exist — and the row group is
parked as *deferred*: quarantined but not retired.  The fleet-level
remedy is the cloud one: **evacuate the tenant to another host**, which
frees every frame the VM pinned (data pages and EPT tables alike), then
retry the deferred offlining, which now completes.

:func:`migrate_vm` implements the move with the same semantics
``core.remediation`` holds per-block: data is read through ECC (healing
correctable errors into the copy), the VM is re-created on the
destination from its recorded :class:`VmSpec` — so the destination's
own Siloz placement puts it in private subarray groups — every byte is
copied and verified, and the isolation invariant is asserted on **both**
hosts before the source reservation is released.  A failure at any
point before the destination copy is verified leaves the source VM
running and untouched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.errors import FleetError, PlacementError, UncorrectableError
from repro.hv.vm import VirtualMachine, VmState
from repro.log import get_logger

from repro.fleet.host import Fleet, Host
from repro.fleet.scheduler import PlacementScheduler

_log = get_logger("fleet.migration")


class MigrationError(FleetError):
    """Cross-host migration could not complete (source left untouched)."""


@dataclass(frozen=True)
class MigrationRecord:
    """One completed cross-host move."""

    vm: str
    src_host: int
    dst_host: int
    bytes_copied: int
    verified: bool


def region_extents(vm: VirtualMachine, *, unmediated: bool) -> list[tuple[str, int, int, int]]:
    """(region name, gpa, hpa, size) extents for one mediation class.

    Replays the pool walk of ``Hypervisor._map_regions`` with pure
    arithmetic (no EPT walks — translating each page through the EPT
    would cost DRAM activations and perturb the machine being migrated).
    """
    source = vm.backing if unmediated else vm.mediated_backing
    pool = [(r.start, r.size) for r in source]
    out: list[tuple[str, int, int, int]] = []
    for region in vm.regions:
        if region.unmediated is not unmediated:
            continue
        remaining, gpa = region.size, region.gpa
        while remaining > 0 and pool:
            start, size = pool[0]
            take = min(size, remaining)
            out.append((region.name, gpa, start, take))
            gpa += take
            remaining -= take
            if take == size:
                pool.pop(0)
            else:
                pool[0] = (start + take, size - take)
    return out


def _snapshot_regions(host: Host, vm: VirtualMachine) -> dict[str, bytearray]:
    """region name -> full contents, read through ECC (CEs heal into
    the copy; an uncorrectable word aborts the whole migration)."""
    dram = host.hv.machine.dram
    regions = {r.name: r for r in vm.regions}
    buffers: dict[str, bytearray] = {}
    for mediation in (True, False):
        for name, gpa, hpa, size in region_extents(vm, unmediated=mediation):
            buf = buffers.setdefault(name, bytearray(regions[name].size))
            offset = gpa - regions[name].gpa
            try:
                buf[offset:offset + size] = dram.read_region(hpa, size)
            except UncorrectableError as exc:
                raise MigrationError(
                    f"VM {vm.name!r} has uncorrectable data at hpa {hpa:#x}; "
                    f"cannot migrate: {exc}"
                ) from exc
    return buffers


def _restore_regions(host: Host, vm: VirtualMachine, buffers: dict[str, bytearray]) -> int:
    """Write snapshotted contents into the destination VM's frames."""
    dram = host.hv.machine.dram
    regions = {r.name: r for r in vm.regions}
    copied = 0
    for mediation in (True, False):
        for name, gpa, hpa, size in region_extents(vm, unmediated=mediation):
            offset = gpa - regions[name].gpa
            dram.write(hpa, bytes(buffers[name][offset:offset + size]))
            copied += size
    return copied


def _digest(host: Host, vm: VirtualMachine) -> str:
    """Content digest over every extent, in region order (verification)."""
    dram = host.hv.machine.dram
    h = hashlib.sha256()
    for mediation in (True, False):
        for _name, _gpa, hpa, size in region_extents(vm, unmediated=mediation):
            h.update(dram.read_region(hpa, size))
    return h.hexdigest()


def migrate_vm(
    src: Host,
    dst: Host,
    name: str,
    *,
    corrupt: Callable[[dict[str, bytearray]], None] | None = None,
) -> MigrationRecord:
    """Move VM *name* from *src* to *dst*; see the module docstring.

    Raises :class:`MigrationError` (source untouched) when the VM is not
    migratable or the destination cannot place it; propagates
    non-capacity :class:`PlacementError` as bugs.

    *corrupt*, when given, is a chaos hook invoked on the in-flight
    snapshot buffers **after** the source digest is taken — modelling a
    transfer-path bit flip.  The destination copy then fails sha256
    verification, the destination VM is rolled back, and the source
    keeps serving untouched: exactly the failure-containment contract
    the digest-corruption chaos tests pin down.
    """
    if src.host_id == dst.host_id:
        raise MigrationError(f"VM {name!r}: source and destination are host {src.host_id}")
    vm = src.hv.vm(name)
    if vm.state is not VmState.RUNNING:
        raise MigrationError(f"VM {name!r} is not running")
    if vm.devices:
        # Passthrough DMA cannot be paused mid-flight in this model.
        raise MigrationError(
            f"VM {name!r} has {len(vm.devices)} passthrough device(s) attached"
        )
    spec = src.vm_specs.get(name)
    if spec is None:
        raise MigrationError(f"VM {name!r} has no recorded spec on host {src.host_id}")

    buffers = _snapshot_regions(src, vm)
    source_digest = _digest(src, vm)
    if corrupt is not None:
        corrupt(buffers)
    try:
        new_vm = dst.create_vm(spec)
    except PlacementError as exc:
        if not exc.is_capacity:
            raise
        raise MigrationError(
            f"destination host {dst.host_id} cannot place VM {name!r}: {exc}"
        ) from exc
    copied = _restore_regions(dst, new_vm, buffers)
    verified = _digest(dst, new_vm) == source_digest
    if not verified:
        # Roll the destination back; the source copy is still authoritative.
        dst.remove_vm(name)
        raise MigrationError(f"VM {name!r}: destination copy failed verification")

    src.remove_vm(name)
    src.assert_isolation()
    dst.assert_isolation()
    record = MigrationRecord(
        vm=name,
        src_host=src.host_id,
        dst_host=dst.host_id,
        bytes_copied=copied,
        verified=True,
    )
    _log.info(
        "migrated VM %s: host %d -> host %d (%d bytes)",
        name, src.host_id, dst.host_id, copied,
    )
    if obs.ENABLED:
        obs.emit(
            obs.VmMigrationEvent(
                vm=name,
                src_host=src.host_id,
                dst_host=dst.host_id,
                bytes=copied,
                when=dst.hv.machine.dram.clock,
            )
        )
    return record


def evacuate_host(
    fleet: Fleet,
    host: Host,
    scheduler: PlacementScheduler,
    *,
    exclude: tuple[int, ...] = (),
    corrupt: Callable[[dict[str, bytearray]], None] | None = None,
) -> tuple[list[MigrationRecord], list[dict]]:
    """Drain every VM off one (crashed) host onto scheduler-chosen
    survivors; returns ``(records, incidents)``.

    VMs move in placement order; *exclude* lists host ids that must not
    receive tenants (the other crashed hosts).  *corrupt* is a one-shot
    chaos hook threaded into :func:`migrate_vm`: when the armed
    migration fails digest verification it is **retried once** without
    the transfer fault (the copy loop re-reads the authoritative source)
    and an incident dict records the detected-and-rolled-back
    corruption.  A VM with no viable destination is left in place with
    an incident — graceful degradation, never a dead campaign.
    """
    records: list[MigrationRecord] = []
    incidents: list[dict] = []
    for name in list(host.vm_specs):
        spec = host.vm_specs[name]
        candidates = scheduler.rank(
            fleet, spec, exclude=(host.host_id, *exclude)
        )
        if not candidates:
            _log.warning(
                "evacuation: no destination for VM %s on host %d",
                name, host.host_id,
            )
            incidents.append(
                {"incident": "no-destination", "host": host.host_id, "vm": name}
            )
            continue
        try:
            records.append(
                migrate_vm(host, candidates[0], name, corrupt=corrupt)
            )
        except MigrationError as exc:
            if corrupt is not None and "verification" in str(exc):
                # The armed transfer fault fired; verification caught it
                # and rolled the destination back.  Record the incident
                # and re-run the copy clean (the hook is one-shot).
                corrupt = None
                incidents.append(
                    {
                        "incident": "digest-corruption-rollback",
                        "host": host.host_id,
                        "vm": name,
                        "detail": str(exc),
                    }
                )
                try:
                    records.append(migrate_vm(host, candidates[0], name))
                    continue
                except MigrationError as retry_exc:
                    exc = retry_exc
            _log.warning("evacuation of %s failed: %s", name, exc)
            incidents.append(
                {
                    "incident": "migration-failed",
                    "host": host.host_id,
                    "vm": name,
                    "detail": str(exc),
                }
            )
    return records, incidents


def evacuate_degraded(
    fleet: Fleet, scheduler: PlacementScheduler
) -> list[MigrationRecord]:
    """Drain every degraded host (deferred offlinings pending) and retry
    the parked remediations, which the evacuation unblocks.

    VMs are moved in placement order to scheduler-chosen destinations,
    never back onto the degraded host.  A VM with no viable destination
    is left in place (logged) — graceful degradation, matching the
    deferred-offline semantics underneath.
    """
    records: list[MigrationRecord] = []
    for host in fleet.degraded_hosts():
        for name in list(host.vm_specs):
            spec = host.vm_specs[name]
            candidates = scheduler.rank(fleet, spec, exclude=(host.host_id,))
            if not candidates:
                _log.warning(
                    "evacuation: no destination for VM %s on degraded host %d",
                    name, host.host_id,
                )
                continue
            try:
                records.append(migrate_vm(host, candidates[0], name))
            except MigrationError as exc:
                _log.warning("evacuation of %s failed: %s", name, exc)
        host.monitor.retry_deferred()
    return records
