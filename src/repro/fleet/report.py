"""Merged fleet campaign results, folded into ``repro.obs``.

A :class:`FleetReport` is the deterministic artifact a campaign
produces: the admission decisions (in arrival order), the per-host
simulation results (in host-id order), and the derived fleet metrics.
Its :meth:`digest` hashes a canonical JSON form — the workers=1 vs
workers=N bit-identity criterion compares exactly this digest, and the
CI ``fleet-smoke`` job does the same across backends for the placement
half of the report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro import obs

from repro.fleet.admission import AdmissionDecision


def _decision_dict(d: AdmissionDecision) -> dict:
    return {
        "vm": d.vm,
        "outcome": d.outcome,
        "host": d.host_id,
        "reason": d.reason.value if d.reason else "",
        "attempts": d.attempts,
    }


def _canon(doc) -> bytes:
    """Canonical JSON bytes — the one encoding every digest here hashes."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def scrub_host_result(result: dict) -> dict:
    """Host result with execution-detail keys removed before hashing.

    The ``trace`` section (merged per-kind counter deltas shipped back
    by pool workers) depends on whether observability was enabled, not
    on the simulated machine, so it must not participate in the
    workers=1 ≡ workers=N ≡ spawn/persistent digest contract.
    """
    return {k: v for k, v in result.items() if k != "trace"}


def host_result_digest(result: dict) -> str:
    """sha256 over one host's canonical (scrubbed) result dict."""
    return hashlib.sha256(_canon(scrub_host_result(result))).hexdigest()


@dataclass
class FleetReport:
    """Everything one campaign produced, in canonical order."""

    config: dict
    decisions: list[dict]
    host_results: list[dict]
    guest_capacity_bytes: int
    placed_bytes: int
    acceptance_rate: float
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    migrations: list[dict] = field(default_factory=list)
    #: Chaos aftermath: crashed hosts, evacuations, incidents (hashed —
    #: deterministic given the chaos plan).
    degraded: dict = field(default_factory=dict)
    #: Isolation-auditor reports, in audit order (hashed, ditto).
    audit: list[dict] = field(default_factory=list)
    #: Supervisor bookkeeping (attempts/timeouts/deaths).  NOT hashed:
    #: how many times a shard had to retry depends on wall-clock
    #: scheduling and worker count, not on the simulated machine.
    supervision: dict = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        *,
        config,
        decisions: list[AdmissionDecision],
        host_results: list[dict],
        guest_capacity_bytes: int,
        migrations: list[dict] | None = None,
        degraded: dict | None = None,
        audit: list[dict] | None = None,
        supervision: dict | None = None,
    ) -> "FleetReport":
        admitted = [d for d in decisions if d.admitted]
        rejected: dict[str, int] = {}
        for d in decisions:
            if not d.admitted and d.reason is not None:
                rejected[d.reason.value] = rejected.get(d.reason.value, 0) + 1
        # Admitted bytes are re-derivable from the per-host VM lists; the
        # decisions don't carry sizes, so sum what the hosts report.
        placed_bytes = sum(r.get("placed_bytes", 0) for r in host_results)
        return cls(
            config=_config_dict(config),
            decisions=[_decision_dict(d) for d in decisions],
            host_results=host_results,
            guest_capacity_bytes=guest_capacity_bytes,
            placed_bytes=placed_bytes,
            acceptance_rate=(len(admitted) / len(decisions)) if decisions else 0.0,
            rejected_by_reason=rejected,
            migrations=list(migrations or []),
            degraded=dict(degraded or {}),
            audit=list(audit or []),
            supervision=dict(supervision or {}),
        )

    # ------------------------------------------------------------------
    # Determinism contract
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """Canonical plain-data form (what :meth:`digest` hashes)."""
        return {
            "config": self.config,
            "decisions": self.decisions,
            "hosts": self.host_results,
            "migrations": self.migrations,
            "guest_capacity_bytes": self.guest_capacity_bytes,
            "placed_bytes": self.placed_bytes,
            "acceptance_rate": self.acceptance_rate,
            "rejected_by_reason": self.rejected_by_reason,
            "degraded": self.degraded,
            "audit": self.audit,
            "supervision": self.supervision,
        }

    def digest(self) -> str:
        """sha256 over the canonical JSON form; the merge-determinism
        contract (same seed + scenario => same digest at any worker
        count, on either backend for the placement/decision half).

        The worker count and the engine backend are execution details,
        not results (the differential engine guarantees bit-identical
        outcomes), so both are scrubbed from the hashed form — that is
        precisely what lets ``--workers 4`` compare equal to
        ``--workers 1`` and ``--backend batched`` to scalar.  The
        ``supervision`` section is scrubbed for the same reason: retry
        counts depend on wall-clock scheduling, never on the simulated
        machine.  The chaos aftermath (``degraded``, ``audit``) IS
        hashed — it is deterministic given the plan, and resume must
        reproduce it bit-identically.
        """
        doc = self.to_json()
        doc["config"] = {
            k: v for k, v in doc["config"].items() if k not in ("workers", "backend")
        }
        doc["hosts"] = [scrub_host_result(r) for r in doc["hosts"]]
        doc.pop("supervision", None)
        return hashlib.sha256(_canon(doc)).hexdigest()

    def merge_digest(self) -> str:
        """Streaming-foldable digest over the same determinism surface.

        Equals :meth:`StreamingMerge.merge_digest` for the identical
        shard set by construction — this method just replays the batch
        report through a fresh fold.  Cluster campaigns, which never
        materialize a full ``FleetReport``, publish this digest.
        """
        fold = StreamingMerge(self.config)
        fold.guest_capacity_bytes = self.guest_capacity_bytes
        for d in self.decisions:
            fold.add_decision(d)
        for r in self.host_results:
            fold.add_host_result(r)
        for m in self.migrations:
            fold.add_migration(m)
        fold.set_aftermath(degraded=self.degraded, audit=self.audit)
        return fold.merge_digest()

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    @property
    def hosts_ok(self) -> int:
        return sum(1 for r in self.host_results if r.get("ok"))

    @property
    def hosts_failed(self) -> int:
        return len(self.host_results) - self.hosts_ok

    @property
    def hosts_crashed(self) -> int:
        return sum(1 for r in self.host_results if r.get("crashed"))

    @property
    def audit_clean(self) -> bool:
        """True when every isolation audit found zero violations."""
        return all(a.get("violations", 0) == 0 for a in self.audit)

    @property
    def utilization(self) -> float:
        if self.guest_capacity_bytes == 0:
            return 0.0
        return self.placed_bytes / self.guest_capacity_bytes

    def headline(self) -> str:
        """One-line summary (logged at campaign end)."""
        return (
            f"{len(self.host_results)} host(s), "
            f"{sum(1 for d in self.decisions if d['outcome'] == 'admitted')}"
            f"/{len(self.decisions)} admitted "
            f"({self.acceptance_rate:.0%}), "
            f"utilization {self.utilization:.0%}, "
            f"{self.hosts_failed} host failure(s)"
        )

    def render_text(self) -> str:
        """The CLI's human-readable campaign report."""
        lines = [
            "fleet campaign report",
            f"  {self.headline()}",
            f"  policy={self.config.get('policy')} "
            f"scenario={self.config.get('scenario')} "
            f"backend={self.config.get('backend')} "
            f"seed={self.config.get('seed')}",
        ]
        if self.rejected_by_reason:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(self.rejected_by_reason.items())
            )
            lines.append(f"  rejections: {parts}")
        for r in self.host_results:
            if r.get("ok"):
                extra = ""
                if r.get("scenario") == "attack" and not r.get("idle"):
                    extra = (
                        f" flips={r['flips']} escaped={r['escaped']} "
                        f"contained={r['contained']}"
                    )
                elif r.get("scenario") == "health" and not r.get("idle"):
                    extra = (
                        f" offlined={r['offlined']} "
                        f"migrated_blocks={r['migrated_blocks']}"
                    )
                lines.append(
                    f"  host {r['host_id']}: ok vms={len(r.get('vms', []))}{extra}"
                )
            else:
                lines.append(f"  host {r['host_id']}: FAILED ({r.get('error')})")
        if self.migrations:
            for m in self.migrations:
                lines.append(
                    f"  migration: {m['vm']} host {m['src_host']} -> "
                    f"host {m['dst_host']} ({m['bytes_copied']} bytes)"
                )
        if self.degraded:
            crashed = self.degraded.get("crashed_hosts", [])
            lines.append(
                f"  degraded: {len(crashed)} crashed host(s) "
                f"{crashed}, {self.degraded.get('evacuated_vms', 0)} VM(s) "
                f"evacuated, {len(self.degraded.get('incidents', []))} "
                "incident(s)"
            )
            for inc in self.degraded.get("incidents", []):
                lines.append(
                    f"    incident: {inc['incident']} host {inc['host']} "
                    f"vm {inc['vm']}"
                )
        if self.audit:
            total = sum(a.get("violations", 0) for a in self.audit)
            verdict = "clean" if total == 0 else f"{total} VIOLATION(S)"
            lines.append(
                f"  isolation audit: {len(self.audit)} audit(s), {verdict}"
            )
            for a in self.audit:
                if a.get("violations", 0):
                    lines.append(
                        f"    {a['phase']}: {a['violations']} violation(s)"
                    )
        if self.supervision and self.supervision.get("retried", 0):
            lines.append(
                f"  supervision: {self.supervision['retried']} shard(s) "
                f"retried ({self.supervision.get('worker_deaths', 0)} worker "
                f"death(s), {self.supervision.get('timeouts', 0)} timeout(s))"
            )
        return "\n".join(lines)

    def fold_into_metrics(self) -> None:
        """Publish the fleet-level rollups as gauges in ``repro.obs``
        (the per-event counters are folded as events were emitted)."""
        if not obs.ENABLED:
            return
        obs.METRICS.gauge("fleet.hosts").set(float(len(self.host_results)))
        obs.METRICS.gauge("fleet.hosts_failed").set(float(self.hosts_failed))
        obs.METRICS.gauge("fleet.acceptance_rate").set(self.acceptance_rate)
        obs.METRICS.gauge("fleet.utilization").set(self.utilization)
        if self.degraded or self.audit:
            obs.METRICS.gauge("fleet.hosts_crashed").set(float(self.hosts_crashed))
            obs.METRICS.gauge("fleet.evacuated_vms").set(
                float(self.degraded.get("evacuated_vms", 0))
            )
            obs.METRICS.gauge("fleet.audit_violations").set(
                float(sum(a.get("violations", 0) for a in self.audit))
            )


class StreamingMerge:
    """Incremental fleet merge: fold shards as they complete.

    The batch path materializes every host result, then hashes the
    whole report at once — fine for 8 hosts, hopeless for 1000 hosts /
    100k VMs.  ``StreamingMerge`` keeps O(hosts) digests and O(1)
    aggregates instead of O(results) payloads:

    - admission decisions fold into a rolling sha256 **in arrival
      order** (the order is part of the result — admission is a
      sequential protocol);
    - host results may arrive in **any order** (workers finish
      whenever); each is reduced to its canonical per-host digest and
      the pair ``(host_id, digest)`` is sorted at finalization, which
      is what makes the merge digest worker-count independent;
    - everything execution-dependent (worker count, backend, pool
      mode, trace summaries, supervision) is scrubbed exactly as in
      :meth:`FleetReport.digest`.

    Equivalence contract: feeding a completed :class:`FleetReport`
    through a fold (see :meth:`FleetReport.merge_digest`) yields the
    same digest as folding the shards live.
    """

    def __init__(self, config) -> None:
        cfg = _config_dict(config)
        self.config = {
            k: v for k, v in cfg.items() if k not in ("workers", "backend")
        }
        self.guest_capacity_bytes = 0
        # Admission stream (arrival order).
        self._decision_hash = hashlib.sha256()
        self.decision_count = 0
        self.admitted = 0
        self.rejected_by_reason: dict[str, int] = {}
        # Host shards (any order; sorted at finalization).
        self._host_digests: dict[int, str] = {}
        self.placed_bytes = 0
        self.hosts_ok = 0
        self.hosts_crashed = 0
        self.flips = 0
        self.escaped = 0
        self.contained = 0
        # Migrations (event order) + chaos aftermath.
        self._migration_hash = hashlib.sha256()
        self.migration_count = 0
        self.degraded: dict = {}
        self.audit: list[dict] = []

    # -- admission ------------------------------------------------------

    def add_decision(self, decision) -> None:
        """Fold one admission decision (arrival order matters)."""
        doc = (
            decision
            if isinstance(decision, dict)
            else _decision_dict(decision)
        )
        self._decision_hash.update(_canon(doc))
        self._decision_hash.update(b"\n")
        self.decision_count += 1
        if doc["outcome"] == "admitted":
            self.admitted += 1
        elif doc.get("reason"):
            reason = doc["reason"]
            self.rejected_by_reason[reason] = (
                self.rejected_by_reason.get(reason, 0) + 1
            )

    # -- host shards ----------------------------------------------------

    def add_host_result(self, result: dict) -> None:
        """Fold one host shard result (any completion order)."""
        host_id = int(result["host_id"])
        self._host_digests[host_id] = host_result_digest(result)
        self.placed_bytes += result.get("placed_bytes", 0)
        self.hosts_ok += 1 if result.get("ok") else 0
        self.hosts_crashed += 1 if result.get("crashed") else 0
        self.flips += result.get("flips", 0) or 0
        self.escaped += result.get("escaped", 0) or 0
        self.contained += result.get("contained", 0) or 0

    # -- aftermath ------------------------------------------------------

    def add_migration(self, migration: dict) -> None:
        self._migration_hash.update(_canon(migration))
        self._migration_hash.update(b"\n")
        self.migration_count += 1

    def set_aftermath(self, *, degraded: dict, audit: list[dict]) -> None:
        """Chaos aftermath — deterministic given the plan, so hashed."""
        self.degraded = dict(degraded or {})
        self.audit = list(audit or [])

    # -- finalization ---------------------------------------------------

    @property
    def hosts(self) -> int:
        return len(self._host_digests)

    @property
    def hosts_failed(self) -> int:
        return self.hosts - self.hosts_ok

    @property
    def acceptance_rate(self) -> float:
        if self.decision_count == 0:
            return 0.0
        return self.admitted / self.decision_count

    @property
    def audit_clean(self) -> bool:
        return all(a.get("violations", 0) == 0 for a in self.audit)

    def merge_digest(self) -> str:
        """sha256 over the folded determinism surface.

        Invariant under worker count, pool mode, backend, and host
        completion order; sensitive to every admitted/rejected VM,
        every host outcome, and the chaos aftermath.
        """
        doc = {
            "config": self.config,
            "decisions": {
                "count": self.decision_count,
                "fold": self._decision_hash.hexdigest(),
            },
            "hosts": sorted(self._host_digests.items()),
            "migrations": {
                "count": self.migration_count,
                "fold": self._migration_hash.hexdigest(),
            },
            "guest_capacity_bytes": self.guest_capacity_bytes,
            "placed_bytes": self.placed_bytes,
            "degraded": self.degraded,
            "audit": self.audit,
        }
        return hashlib.sha256(_canon(doc)).hexdigest()

    def summary(self) -> dict:
        """Bounded-size rollup (what cluster mode reports and renders)."""
        return {
            "hosts": self.hosts,
            "hosts_ok": self.hosts_ok,
            "hosts_failed": self.hosts_failed,
            "hosts_crashed": self.hosts_crashed,
            "arrivals": self.decision_count,
            "admitted": self.admitted,
            "acceptance_rate": self.acceptance_rate,
            "rejected_by_reason": dict(sorted(self.rejected_by_reason.items())),
            "guest_capacity_bytes": self.guest_capacity_bytes,
            "placed_bytes": self.placed_bytes,
            "flips": self.flips,
            "escaped": self.escaped,
            "contained": self.contained,
            "audit_clean": self.audit_clean,
            "merge_digest": self.merge_digest(),
        }


def _config_dict(config) -> dict:
    """Canonical plain-dict form of a CampaignConfig (or a dict)."""
    if isinstance(config, dict):
        return dict(config)
    from dataclasses import asdict

    out = asdict(config)
    out["vm_sizes_mib"] = list(out["vm_sizes_mib"])
    return out


__all__ = [
    "FleetReport",
    "StreamingMerge",
    "host_result_digest",
    "scrub_host_result",
]
