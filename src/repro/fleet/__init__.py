"""``repro.fleet`` — a multi-host fleet simulator on top of the Siloz
single-host model.

The package scales PR 0–3's one-server simulation out to a cluster:

- :mod:`repro.fleet.host` — one booted host (Machine + SilozHypervisor +
  HealthMonitor) with capacity accounting and stable per-host seeds.
- :mod:`repro.fleet.scheduler` — pluggable subarray-group-aware VM
  placement (first-fit / best-fit / spread).
- :mod:`repro.fleet.admission` — bounded admission queue with
  backpressure, retries, and typed eviction reasons.
- :mod:`repro.fleet.migration` — cross-host live migration and
  degraded-host evacuation (unblocks deferred offlinings).
- :mod:`repro.fleet.driver` — parallel campaign execution with
  deterministic merging (workers=N ≡ workers=1, bit for bit).
- :mod:`repro.fleet.cluster` — cluster-scale campaigns (1000 hosts /
  100k VMs): sharded admission over logical capacity twins, streaming
  merge, bounded driver memory.
- :mod:`repro.fleet.report` — the merged, digestible campaign artifact,
  plus the incremental :class:`~repro.fleet.report.StreamingMerge` fold.
"""

from repro.fleet.admission import (
    AdmissionController,
    AdmissionDecision,
    RejectReason,
    generate_arrival_trace,
    iter_arrival_trace,
)
from repro.fleet.cluster import (
    ClusterCampaign,
    ClusterConfig,
    ClusterReport,
    LogicalFleet,
    LogicalHost,
    measure_host_shape,
    run_cluster_campaign,
)
from repro.fleet.driver import (
    CampaignConfig,
    FleetCampaign,
    HostTask,
    SCENARIOS,
    run_campaign,
    run_host_task,
)
from repro.fleet.host import Fleet, Host, HostSpec, derive_host_seed
from repro.fleet.migration import (
    MigrationError,
    MigrationRecord,
    evacuate_degraded,
    evacuate_host,
    migrate_vm,
    region_extents,
)
from repro.fleet.report import FleetReport, StreamingMerge
from repro.fleet.scheduler import (
    BestFitScheduler,
    FirstFitScheduler,
    PlacementScheduler,
    SCHEDULERS,
    SpreadScheduler,
    host_fits,
    make_scheduler,
    needed_bytes,
    spec_page_aligned,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BestFitScheduler",
    "CampaignConfig",
    "ClusterCampaign",
    "ClusterConfig",
    "ClusterReport",
    "Fleet",
    "FleetCampaign",
    "FleetReport",
    "FirstFitScheduler",
    "LogicalFleet",
    "LogicalHost",
    "Host",
    "HostSpec",
    "HostTask",
    "MigrationError",
    "MigrationRecord",
    "PlacementScheduler",
    "RejectReason",
    "SCENARIOS",
    "SCHEDULERS",
    "SpreadScheduler",
    "StreamingMerge",
    "derive_host_seed",
    "evacuate_degraded",
    "evacuate_host",
    "generate_arrival_trace",
    "host_fits",
    "iter_arrival_trace",
    "make_scheduler",
    "measure_host_shape",
    "migrate_vm",
    "needed_bytes",
    "region_extents",
    "run_campaign",
    "run_cluster_campaign",
    "run_host_task",
    "spec_page_aligned",
]
