"""Library logging.

Standard-library logging with a per-subsystem namespace under
``repro.*`` and a NullHandler on the root (library best practice: the
application chooses handlers/levels).  ``enable_console_logging`` is a
convenience for examples and the CLI's ``-v`` flag.
"""

from __future__ import annotations

import logging

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())


def get_logger(subsystem: str) -> logging.Logger:
    """Logger for one subsystem, e.g. ``get_logger("core.siloz")``."""
    return logging.getLogger(f"repro.{subsystem}")


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple stderr handler to the library root (idempotent)."""
    for handler in _ROOT.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(level)
            _ROOT.setLevel(level)
            return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler.setLevel(level)
    _ROOT.addHandler(handler)
    _ROOT.setLevel(level)
