"""Exception hierarchy for the Siloz reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type.  Sub-hierarchies mirror the subsystem layering
described in DESIGN.md.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GeometryError(ReproError):
    """Inconsistent or unsupported DRAM geometry parameters."""


class AddressError(ReproError):
    """A physical or media address is out of range or malformed."""


class MappingError(AddressError):
    """Physical-to-media translation failed or is not invertible here."""


class DramError(ReproError):
    """Errors from the simulated DRAM module (bad row, bad command)."""


class UncorrectableError(DramError):
    """ECC detected a multi-bit error it cannot correct (machine check)."""

    def __init__(self, message: str, *, address: int | None = None):
        super().__init__(message)
        self.address = address


class MemCtrlError(ReproError):
    """Memory-controller scheduling or protocol violation."""


class MmError(ReproError):
    """Host memory-management errors (allocator, NUMA, cgroup)."""


class OutOfMemoryError(MmError):
    """An allocation could not be satisfied from the requested node(s)."""


class CgroupError(MmError):
    """Control-group constraint violation (e.g. mems not permitted)."""


class OfflineError(MmError):
    """A page could not be offlined (already allocated, out of range)."""


class EptError(ReproError):
    """Extended-page-table construction or walk failure."""


class EptIntegrityError(EptError):
    """Secure-EPT integrity check failed: a PTE was corrupted in DRAM.

    Raised on use (§5.4: flips are detected-upon-use, not prevented)."""


class EptViolation(EptError):
    """A guest access hit a GPA with no valid EPT mapping (VM exit)."""


class HvError(ReproError):
    """Hypervisor-level errors (VM lifecycle, memory typing)."""


class PlacementError(HvError):
    """Siloz could not honour its subarray-group placement policy.

    A *capacity* failure (the host simply has too few free subarray
    groups) carries the shortfall so fleet-level schedulers can tell
    "host full" apart from bugs: ``requested_groups`` is the number of
    guest-reserved nodes the VM would have needed and
    ``available_groups`` how many were actually free.  Both are ``None``
    for non-capacity placement failures (unknown socket, bad policy).
    """

    def __init__(
        self,
        message: str,
        *,
        requested_groups: int | None = None,
        available_groups: int | None = None,
    ):
        super().__init__(message)
        self.requested_groups = requested_groups
        self.available_groups = available_groups

    @property
    def is_capacity(self) -> bool:
        """True when this failure means "host full" rather than misuse."""
        return self.requested_groups is not None


class MitigationError(HvError):
    """Mitigation-layer errors (unknown mitigation name, bad knobs)."""


class IsolationViolation(ReproError):
    """An invariant check found data outside its isolation domain.

    This is never raised during correct operation; it exists so tests and
    auditors can assert containment loudly instead of silently."""


class FleetError(ReproError):
    """Fleet-level errors (scheduling, admission, cross-host migration)."""


class ChaosError(FleetError):
    """Chaos-engineering errors (malformed plans, journal mismatches)."""


class ServeError(ReproError):
    """Service-layer errors (``repro serve`` daemon, protocol, client)."""


class AttackError(ReproError):
    """Malformed hammering pattern or attack configuration."""


class WorkloadError(ReproError):
    """Unknown workload name or invalid trace parameters."""
