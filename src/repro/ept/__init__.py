"""Extended page tables (paper §2.1, §5.4).

EPTs map guest-physical to host-physical addresses and are the mechanism
Siloz uses to *enforce* subarray-group isolation — which is why they need
their own integrity protection.  The tables here are stored inside the
simulated DRAM: the walker reads the actual (possibly flipped) bits, so a
Rowhammer flip in a PTE genuinely widens the addresses a guest can reach,
reproducing the §5.4 threat model end to end.
"""

from repro.ept.entry import EptEntry
from repro.ept.table import ExtendedPageTable, ept_page_count
from repro.ept.integrity import SecureEptChecker

__all__ = [
    "EptEntry",
    "ExtendedPageTable",
    "SecureEptChecker",
    "ept_page_count",
]
