"""Secure-EPT integrity checking (paper §5.4, "Hardware-Based
Protection").

Emerging Intel TDX / AMD SNP hardware integrity-checks EPT entries on
use: a flipped entry is *detected*, not prevented, which removes the
escape vector (software can't use a corrupted mapping) while leaving a
possible denial of service (the failed check).  The checker is the TDX
module's MAC store: a shadow of every secure entry's value, consulted by
the walker on each step.
"""

from __future__ import annotations

import hashlib

from repro.errors import EptIntegrityError


def _mac(entry_addr: int, raw: bytes) -> bytes:
    """Keyed-MAC stand-in: address-bound digest of the entry bytes."""
    return hashlib.sha256(entry_addr.to_bytes(8, "little") + raw).digest()[:16]


class SecureEptChecker:
    """Shadow MAC store for EPT entries marked secure."""

    def __init__(self) -> None:
        self._macs: dict[int, bytes] = {}
        self.checks = 0
        self.failures = 0

    def record(self, entry_addr: int, raw: bytes) -> None:
        """Called by legitimate EPT updates (the trusted module path)."""
        self._macs[entry_addr] = _mac(entry_addr, raw)

    def forget(self, entry_addr: int) -> None:
        self._macs.pop(entry_addr, None)

    def covers(self, entry_addr: int) -> bool:
        return entry_addr in self._macs

    def verify(self, entry_addr: int, raw: bytes) -> None:
        """Detect-on-use check (§5.4): raises
        :class:`EptIntegrityError` if the in-DRAM bytes no longer match
        the recorded MAC.  Entries never recorded are not secure and pass
        unchecked."""
        expected = self._macs.get(entry_addr)
        if expected is None:
            return
        self.checks += 1
        if _mac(entry_addr, raw) != expected:
            self.failures += 1
            raise EptIntegrityError(
                f"EPT entry at HPA {entry_addr:#x} failed its integrity "
                f"check: in-DRAM value was corrupted (Rowhammer bit flip?)"
            )
