"""EPT entry encoding (Intel VT-x extended page tables).

64-bit entries: RWX permission bits at [2:0], the large-page bit at 7
(valid in PDEs), and the physical frame at bits [51:12].  The codec is
deliberately strict — the walker decodes raw DRAM bytes, and anything
can come back after a bit flip, so ``EptEntry.unpack`` never raises; the
*walker* decides what a corrupt entry means (usually a reachable-but-
wrong frame, the §5.4 security failure).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EptError

READ = 1 << 0
WRITE = 1 << 1
EXECUTE = 1 << 2
LARGE_PAGE = 1 << 7

#: Physical frame number field, bits [51:12].
_ADDR_MASK = ((1 << 52) - 1) & ~((1 << 12) - 1)

ENTRY_BYTES = 8
ENTRIES_PER_PAGE = 512


@dataclass(frozen=True)
class EptEntry:
    """One decoded EPT entry."""

    value: int

    @classmethod
    def make(
        cls,
        target_hpa: int,
        *,
        readable: bool = True,
        writable: bool = True,
        executable: bool = True,
        large: bool = False,
    ) -> "EptEntry":
        if target_hpa % 4096 != 0:
            raise EptError(f"EPT target {target_hpa:#x} not 4 KiB aligned")
        if target_hpa & ~_ADDR_MASK:
            raise EptError(f"EPT target {target_hpa:#x} exceeds 52-bit space")
        value = target_hpa & _ADDR_MASK
        if readable:
            value |= READ
        if writable:
            value |= WRITE
        if executable:
            value |= EXECUTE
        if large:
            value |= LARGE_PAGE
        return cls(value)

    @classmethod
    def empty(cls) -> "EptEntry":
        return cls(0)

    @classmethod
    def unpack(cls, raw: bytes) -> "EptEntry":
        if len(raw) != ENTRY_BYTES:
            raise EptError(f"EPT entry must be {ENTRY_BYTES} bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "little"))

    def pack(self) -> bytes:
        return self.value.to_bytes(ENTRY_BYTES, "little")

    @property
    def present(self) -> bool:
        """Intel semantics: an entry is usable if any of R/W/X is set."""
        return bool(self.value & (READ | WRITE | EXECUTE))

    @property
    def readable(self) -> bool:
        return bool(self.value & READ)

    @property
    def writable(self) -> bool:
        return bool(self.value & WRITE)

    @property
    def executable(self) -> bool:
        return bool(self.value & EXECUTE)

    @property
    def large(self) -> bool:
        return bool(self.value & LARGE_PAGE)

    @property
    def target_hpa(self) -> int:
        return self.value & _ADDR_MASK

    def __repr__(self) -> str:
        flags = "".join(
            c if on else "-"
            for c, on in (
                ("r", self.readable),
                ("w", self.writable),
                ("x", self.executable),
                ("L", self.large),
            )
        )
        return f"EptEntry({self.target_hpa:#x} {flags})"
