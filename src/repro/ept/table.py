"""Four-level extended page tables stored in simulated DRAM (§2.1, §5.4).

The table's nodes are real 4 KiB pages inside a :class:`SimulatedDram`;
``translate`` performs an honest walk, reading each entry's 8 bytes from
DRAM.  Consequences, exactly as on hardware:

- ECC corrects single-bit flips in entries transparently;
- a double-bit flip raises a machine check
  (:class:`~repro.errors.UncorrectableError`);
- a >= 3-bit flip silently yields a *different mapping* — the guest can
  now reach a frame outside its subarray groups.  This is the escape
  Siloz closes with guard rows or secure EPT.

Pass a :class:`~repro.ept.integrity.SecureEptChecker` to get TDX/SNP
detect-on-use behaviour instead.
"""

from __future__ import annotations

from typing import Callable

from repro.dram.module import SimulatedDram
from repro.ept.entry import ENTRIES_PER_PAGE, ENTRY_BYTES, EptEntry
from repro.ept.integrity import SecureEptChecker
from repro.errors import EptError, EptViolation
from repro.units import PAGE_2M, PAGE_4K

_LEVELS = 4
_GPA_BITS = 48


def _index(gpa: int, level: int) -> int:
    """Entry index at *level* (0 = root PML4, 3 = leaf PT)."""
    shift = 12 + 9 * (_LEVELS - 1 - level)
    return (gpa >> shift) & (ENTRIES_PER_PAGE - 1)


def ept_page_count(vm_bytes: int, page_size: int = PAGE_2M, *, contiguous: bool = True) -> int:
    """EPT table pages needed to map a VM (paper §5.4 accounting).

    With 2 MiB guest pages, each last-level (PD) page maps 512 * 2 MiB
    = 1 GiB; higher levels add ~1/512 more.  ``contiguous`` backing is
    what makes the count this tight — scattered backing would spread
    entries across many more table pages.
    """
    if vm_bytes <= 0:
        raise EptError("vm_bytes must be positive")
    if page_size == PAGE_2M:
        leaves = -(-vm_bytes // (ENTRIES_PER_PAGE * PAGE_2M))  # PD pages
    elif page_size == PAGE_4K:
        pts = -(-vm_bytes // (ENTRIES_PER_PAGE * PAGE_4K))
        leaves = pts + -(-pts // ENTRIES_PER_PAGE)  # PTs + PDs
    else:
        raise EptError(f"unsupported guest page size {page_size}")
    if not contiguous:
        leaves *= 2  # pessimism for scattered backing
    pdpts = -(-vm_bytes // (512 * 2**30)) if vm_bytes else 1
    return leaves + max(1, pdpts) + 1  # + PDPT(s) + PML4


class ExtendedPageTable:
    """One VM's GPA -> HPA mapping, with its nodes living in DRAM."""

    def __init__(
        self,
        dram: SimulatedDram,
        alloc_table_page: Callable[[], int],
        *,
        checker: SecureEptChecker | None = None,
        ecc_reads: bool = True,
    ):
        self.dram = dram
        self._alloc = alloc_table_page
        self.checker = checker
        self.ecc_reads = ecc_reads
        self.table_pages: list[int] = []
        self.root = self._new_table_page()
        self.mapped_bytes = 0

    # ------------------------------------------------------------------

    def _new_table_page(self) -> int:
        addr = self._alloc()
        if addr % PAGE_4K != 0:
            raise EptError(f"table page {addr:#x} not 4 KiB aligned")
        self.dram.write(addr, bytes(PAGE_4K))
        self.table_pages.append(addr)
        return addr

    def _read_entry(self, table: int, index: int) -> tuple[int, EptEntry]:
        addr = table + index * ENTRY_BYTES
        raw = self.dram.read(addr, ENTRY_BYTES, ecc=self.ecc_reads)
        if self.checker is not None:
            self.checker.verify(addr, raw)
        return addr, EptEntry.unpack(raw)

    def _write_entry(self, table: int, index: int, entry: EptEntry) -> None:
        addr = table + index * ENTRY_BYTES
        raw = entry.pack()
        self.dram.write(addr, raw)
        if self.checker is not None:
            if entry.present:
                self.checker.record(addr, raw)
            else:
                self.checker.forget(addr)

    # ------------------------------------------------------------------

    def map(self, gpa: int, hpa: int, size: int) -> None:
        """Map [gpa, gpa+size) -> [hpa, hpa+size) using 2 MiB leaves
        where alignment allows, 4 KiB otherwise."""
        if size <= 0 or gpa % PAGE_4K or hpa % PAGE_4K or size % PAGE_4K:
            raise EptError(
                f"mapping must be page-aligned: gpa={gpa:#x} hpa={hpa:#x} size={size:#x}"
            )
        if gpa + size > 1 << _GPA_BITS:
            raise EptError(f"GPA range end {gpa + size:#x} exceeds {_GPA_BITS}-bit space")
        done = 0
        while done < size:
            g, h = gpa + done, hpa + done
            if g % PAGE_2M == 0 and h % PAGE_2M == 0 and size - done >= PAGE_2M:
                self._map_one(g, h, large=True)
                done += PAGE_2M
            else:
                self._map_one(g, h, large=False)
                done += PAGE_4K
        self.mapped_bytes += size

    def _map_one(self, gpa: int, hpa: int, *, large: bool) -> None:
        table = self.root
        leaf_level = 2 if large else 3
        for level in range(leaf_level):
            addr, entry = self._read_entry(table, _index(gpa, level))
            if not entry.present:
                child = self._new_table_page()
                entry = EptEntry.make(child)
                self._write_entry(table, _index(gpa, level), entry)
            elif entry.large:
                raise EptError(f"GPA {gpa:#x} already covered by a large mapping")
            table = entry.target_hpa
        _, leaf = self._read_entry(table, _index(gpa, leaf_level))
        if leaf.present:
            raise EptError(f"GPA {gpa:#x} already mapped")
        self._write_entry(
            table, _index(gpa, leaf_level), EptEntry.make(hpa, large=large)
        )

    def unmap(self, gpa: int, size: int) -> None:
        """Clear leaf entries covering [gpa, gpa+size)."""
        if size <= 0 or gpa % PAGE_4K or size % PAGE_4K:
            raise EptError("unmap must be page-aligned")
        done = 0
        while done < size:
            step = self._unmap_one(gpa + done)
            done += step
        self.mapped_bytes = max(0, self.mapped_bytes - size)

    def _unmap_one(self, gpa: int) -> int:
        table = self.root
        for level in range(_LEVELS):
            addr, entry = self._read_entry(table, _index(gpa, level))
            if not entry.present:
                raise EptViolation(f"GPA {gpa:#x} not mapped")
            if entry.large or level == _LEVELS - 1:
                self._write_entry(table, _index(gpa, level), EptEntry.empty())
                return PAGE_2M if entry.large else PAGE_4K
            table = entry.target_hpa
        raise EptError("unreachable")

    # ------------------------------------------------------------------

    def remap_range(self, old_start: int, size: int, new_start: int) -> int:
        """Retarget every leaf pointing into [old_start, old_start+size)
        to ``new_start + offset`` — the EPT half of live page migration.

        The guest-physical layout is untouched: only the *host* frames
        behind the leaves change, exactly like Linux's memory-failure
        soft offlining rewrites PTEs after copying a page.  Large (2 MiB)
        leaves that only partially overlap the old range are split into
        4 KiB leaves so the overlapping pieces can be retargeted while
        the rest stays on its original frames.  Returns the number of
        mapped bytes that were retargeted (0 when no leaf points into
        the range).
        """
        if size <= 0 or old_start % PAGE_4K or new_start % PAGE_4K or size % PAGE_4K:
            raise EptError(
                f"remap must be page-aligned: old={old_start:#x} "
                f"new={new_start:#x} size={size:#x}"
            )
        old_end = old_start + size
        delta = new_start - old_start
        # Collect first, mutate after: splitting a leaf mid-walk would
        # invalidate the traversal.
        hits: list[tuple[int, int, EptEntry, int, int]] = []
        self._walk_leaves(self.root, 0, 0, old_start, old_end, hits)
        moved = 0
        for table, index, entry, gpa, lbytes in hits:
            tgt = entry.target_hpa
            if tgt >= old_start and tgt + lbytes <= old_end:
                self._write_entry(
                    table, index, EptEntry.make(tgt + delta, large=entry.large)
                )
                moved += lbytes
            else:  # large leaf straddling the range boundary: split to 4K
                self.unmap(gpa, lbytes)
                for off in range(0, lbytes, PAGE_4K):
                    piece = tgt + off
                    inside = old_start <= piece < old_end
                    self._map_one(gpa + off, piece + delta if inside else piece, large=False)
                    if inside:
                        moved += PAGE_4K
                self.mapped_bytes += lbytes
        return moved

    def _walk_leaves(
        self,
        table: int,
        level: int,
        gpa_base: int,
        old_start: int,
        old_end: int,
        hits: list[tuple[int, int, "EptEntry", int, int]],
    ) -> None:
        """Depth-first leaf scan; reads each table page with one DRAM
        access (not 512) so the walk itself barely disturbs the media."""
        page = self.dram.read(table, PAGE_4K, ecc=self.ecc_reads)
        shift = 12 + 9 * (_LEVELS - 1 - level)
        for index in range(ENTRIES_PER_PAGE):
            raw = bytes(page[index * ENTRY_BYTES : (index + 1) * ENTRY_BYTES])
            entry = EptEntry.unpack(raw)
            if not entry.present:
                continue
            if self.checker is not None:
                self.checker.verify(table + index * ENTRY_BYTES, raw)
            gpa = gpa_base + (index << shift)
            if entry.large and level == 2:
                if entry.target_hpa < old_end and entry.target_hpa + PAGE_2M > old_start:
                    hits.append((table, index, entry, gpa, PAGE_2M))
            elif level == _LEVELS - 1:
                if old_start <= entry.target_hpa < old_end:
                    hits.append((table, index, entry, gpa, PAGE_4K))
            else:
                self._walk_leaves(
                    entry.target_hpa, level + 1, gpa, old_start, old_end, hits
                )

    def translate(self, gpa: int) -> int:
        """Walk the table in DRAM; returns the HPA for *gpa*.

        Raises :class:`EptViolation` for unmapped GPAs (a VM exit),
        :class:`~repro.errors.UncorrectableError` on a double-bit-flipped
        entry (machine check), or
        :class:`~repro.errors.EptIntegrityError` when a secure entry
        fails its check.  A silently-corrupted entry returns a wrong —
        but usable — HPA, which is the attack."""
        if not 0 <= gpa < 1 << _GPA_BITS:
            raise EptViolation(f"GPA {gpa:#x} outside guest address space")
        table = self.root
        for level in range(_LEVELS):
            _, entry = self._read_entry(table, _index(gpa, level))
            if not entry.present:
                raise EptViolation(f"GPA {gpa:#x} not mapped (level {level})")
            if entry.large and level == 2:
                return entry.target_hpa + (gpa & (PAGE_2M - 1))
            if level == _LEVELS - 1:
                return entry.target_hpa + (gpa & (PAGE_4K - 1))
            table = entry.target_hpa
        raise EptError("unreachable")

    def leaf_entry_addr(self, gpa: int) -> int:
        """HPA of the leaf entry mapping *gpa* (where a targeted flip
        would have to land) — used by the EPT-attack experiments."""
        table = self.root
        for level in range(_LEVELS):
            addr, entry = self._read_entry(table, _index(gpa, level))
            if not entry.present:
                raise EptViolation(f"GPA {gpa:#x} not mapped")
            if (entry.large and level == 2) or level == _LEVELS - 1:
                return addr
            table = entry.target_hpa
        raise EptError("unreachable")
