"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
legacy editable-install path (``pip install -e . --no-use-pep517``) works
on offline machines without the ``wheel`` package.
"""

from setuptools import setup

setup()
