"""Persistent worker pool lifecycle edges (``repro.chaos.pool``).

The pool is the default parallel engine behind ``CampaignSupervisor``;
its contracts are already exercised wholesale by ``test_chaos.py``.
This file pins the *pool-specific* edges the ISSUE calls out: worker
death mid-task respawns + requeues with the digest unchanged, one pool
serves two campaigns in the same process (same worker PIDs), and the
spawn escape hatch merges bit-identically with the pool path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import pytest

from repro.chaos import (
    CampaignSupervisor,
    POOL_MODES,
    PersistentWorkerPool,
    SupervisorPolicy,
    WorkerDeathError,
    shared_pool,
    shutdown_shared_pools,
)
from repro.errors import ChaosError
from repro.fleet import CampaignConfig, FleetCampaign


# ---------------------------------------------------------------------------
# Mini harness (module-level + picklable for fork workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Spec:
    host_id: int


@dataclass(frozen=True)
class _Task:
    spec: _Spec
    vm_specs: tuple = ()
    die_attempts: int = 0
    hard_exit_attempts: int = 0
    hang_attempts: int = 0


def _run(task: _Task, attempt: int = 1) -> dict:
    if attempt <= task.hard_exit_attempts:
        os._exit(3)
    if attempt <= task.die_attempts:
        raise WorkerDeathError(f"planned death on attempt {attempt}")
    if attempt <= task.hang_attempts:
        time.sleep(60.0)
    return {"host_id": task.spec.host_id, "ok": True, "attempt": attempt}


def _policy(**kw) -> SupervisorPolicy:
    defaults = dict(task_timeout_s=30.0, max_attempts=3, backoff_s=0.0)
    defaults.update(kw)
    return SupervisorPolicy(**defaults)


@pytest.fixture
def pool():
    p = PersistentWorkerPool(_run, 2)
    yield p
    p.close()


# ---------------------------------------------------------------------------
# Pool mechanics
# ---------------------------------------------------------------------------


class TestPoolLifecycle:
    def test_results_in_task_order(self, pool):
        tasks = [_Task(_Spec(i)) for i in (5, 1, 3, 0)]
        results, report = pool.run(tasks, _policy())
        assert [r["host_id"] for r in results] == [5, 1, 3, 0]
        assert report.retried == 0
        assert pool.respawns == 0

    def test_workers_survive_across_runs(self, pool):
        pool.run([_Task(_Spec(0))], _policy())
        pids_first = pool.worker_pids()
        pool.run([_Task(_Spec(i)) for i in range(4)], _policy())
        assert pool.worker_pids() == pids_first, (
            "healthy workers must be reused across campaigns, not respawned"
        )

    def test_worker_death_mid_task_respawns_and_requeues(self, pool):
        tasks = [_Task(_Spec(0), die_attempts=1), _Task(_Spec(1))]
        results, report = pool.run(tasks, _policy())
        assert [r["host_id"] for r in results] == [0, 1]
        assert results[0]["attempt"] == 2, "task must retry after the death"
        assert results[1]["attempt"] == 1
        assert report.worker_deaths == 1 and report.retried == 1
        assert pool.respawns == 1, "the dead worker must be replaced"
        assert len(pool.worker_pids()) == 2

    def test_raw_hard_exit_is_detected_and_retried(self, pool):
        results, report = pool.run(
            [_Task(_Spec(0), hard_exit_attempts=1)], _policy()
        )
        assert results[0]["ok"] and results[0]["attempt"] == 2
        assert report.worker_deaths == 1

    def test_hang_times_out_kills_and_requeues(self, pool):
        results, report = pool.run(
            [_Task(_Spec(0), hang_attempts=1), _Task(_Spec(1))],
            _policy(task_timeout_s=0.5),
        )
        assert [r["host_id"] for r in results] == [0, 1]
        assert results[0]["attempt"] == 2
        assert report.timeouts == 1
        assert pool.respawns >= 1

    def test_exhausted_attempts_give_typed_result(self, pool):
        results, report = pool.run(
            [_Task(_Spec(7), die_attempts=99)], _policy(max_attempts=2)
        )
        assert results[0]["ok"] is False
        assert results[0]["host_id"] == 7
        assert results[0]["gave_up"] is True
        assert report.outcomes[0].gave_up

    def test_collect_false_streams_via_on_result(self, pool):
        seen: list[int] = []
        results, _ = pool.run(
            [_Task(_Spec(i)) for i in range(3)],
            _policy(),
            on_result=lambda r: seen.append(r["host_id"]),
            collect=False,
        )
        assert results == []
        assert sorted(seen) == [0, 1, 2]

    def test_closed_pool_refuses_work(self, pool):
        pool.close()
        with pytest.raises(ChaosError):
            pool.run([_Task(_Spec(0))], _policy())

    def test_close_is_idempotent(self, pool):
        pool.close()
        pool.close()


class TestSharedPools:
    def test_shared_pool_is_reused_across_campaigns(self):
        try:
            a = shared_pool(_run, 2)
            a.run([_Task(_Spec(0))], _policy())
            pids = a.worker_pids()
            b = shared_pool(_run, 2)
            assert b is a
            b.run([_Task(_Spec(1))], _policy())
            assert b.worker_pids() == pids
        finally:
            shutdown_shared_pools()

    def test_closed_shared_pool_is_recreated(self):
        try:
            a = shared_pool(_run, 2)
            a.close()
            b = shared_pool(_run, 2)
            assert b is not a
            results, _ = b.run([_Task(_Spec(0))], _policy())
            assert results[0]["ok"]
        finally:
            shutdown_shared_pools()

    def test_worker_count_keys_distinct_pools(self):
        try:
            assert shared_pool(_run, 2) is not shared_pool(_run, 3)
        finally:
            shutdown_shared_pools()


# ---------------------------------------------------------------------------
# Supervisor integration: pool modes on a real campaign
# ---------------------------------------------------------------------------


def _small_config(**kw) -> CampaignConfig:
    defaults = dict(hosts=2, vms=6, budget=1, seed=7)
    defaults.update(kw)
    return CampaignConfig(**defaults)


class TestPoolModes:
    def test_pool_mode_is_validated(self):
        with pytest.raises(ChaosError):
            CampaignSupervisor(_run, pool="threads")
        assert POOL_MODES == ("persistent", "spawn")

    def test_persistent_and_spawn_digests_match(self):
        persistent = FleetCampaign(
            _small_config(workers=2), pool="persistent"
        ).run()
        spawn = FleetCampaign(_small_config(workers=2), pool="spawn").run()
        serial = FleetCampaign(_small_config(workers=1)).run()
        assert persistent.digest() == spawn.digest() == serial.digest()

    def test_worker_death_under_pool_keeps_digest(self):
        # A seed whose chaos plan includes worker deaths: the pool must
        # respawn + requeue and still merge bit-identically with the
        # serial path (which simulates the same deaths in-process).
        from repro.chaos import ChaosKind, ChaosPlan

        seed = next(
            s
            for s in range(64)
            if any(
                spec.kind is ChaosKind.WORKER_DEATH
                for spec in ChaosPlan.generate(s, 2, events=4, arrivals=6).specs
            )
        )
        cfg_parallel = _small_config(workers=2, chaos_seed=seed)
        cfg_serial = _small_config(workers=1, chaos_seed=seed)
        parallel = FleetCampaign(cfg_parallel, pool="persistent").run()
        serial = FleetCampaign(cfg_serial).run()
        assert parallel.digest() == serial.digest()
        assert parallel.supervision.get("worker_deaths", 0) >= 1, (
            "the chaos plan's worker death must actually have fired"
        )
