"""Tests for concurrent multi-VM runs and interference attribution."""

import pytest

from repro.core import SilozConfig, SilozHypervisor
from repro.errors import WorkloadError
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.units import KiB, MiB
from repro.workloads.multi import run_concurrent


def siloz_two_socket(policy="pack"):
    machine = Machine.medium(sockets=2)
    return SilozHypervisor(
        machine, SilozConfig.scaled_for(machine.geom), placement_policy=policy
    )


class TestRunConcurrent:
    @pytest.fixture(scope="class")
    def env(self):
        hv = SilozHypervisor.boot(Machine.medium(sockets=1))
        a = hv.create_vm(VmSpec(name="a", memory_bytes=16 * MiB))
        b = hv.create_vm(VmSpec(name="b", memory_bytes=16 * MiB))
        return hv, a, b

    def test_combined_counts(self, env):
        hv, a, b = env
        result = run_concurrent(hv, [(a, "redis-b"), (b, "mysql")], accesses=2000)
        assert result.combined.accesses == 4000
        assert set(result.combined.per_tag) == {0, 1}

    def test_per_vm_latency_attribution(self, env):
        hv, a, b = env
        result = run_concurrent(hv, [(a, "redis-b"), (b, "mysql")], accesses=2000)
        assert result.latency_of("a") > 0
        assert result.latency_of("b") > 0
        with pytest.raises(WorkloadError):
            result.latency_of("nope")

    def test_empty_plans_rejected(self, env):
        hv, _, _ = env
        with pytest.raises(WorkloadError):
            run_concurrent(hv, [])

    def test_co_location_slows_the_victim(self, env):
        """A bandwidth-hungry neighbour raises the victim's latency —
        the §2.2 interference that shared banks/channels imply."""
        hv, a, b = env
        alone = run_concurrent(hv, [(a, "redis-b")], accesses=3000)
        shared = run_concurrent(
            hv, [(a, "redis-b"), (b, "mlc-reads")], accesses=3000
        )
        assert shared.latency_of("a") > alone.latency_of("a")


class TestPlacementInterference:
    def test_spread_reduces_contention(self):
        """'spread' puts the noisy neighbour on the other socket: the
        victim's latency under load improves vs 'pack'."""
        results = {}
        for policy in ("pack", "spread"):
            hv = siloz_two_socket(policy)
            victim = hv.create_vm(VmSpec(name="victim", memory_bytes=16 * MiB))
            noisy = hv.create_vm(VmSpec(name="noisy", memory_bytes=16 * MiB))
            shared = run_concurrent(
                hv, [(victim, "redis-b"), (noisy, "mlc-reads")], accesses=3000
            )
            results[policy] = shared.latency_of("victim")
        assert results["spread"] < results["pack"]

    def test_siloz_interference_equals_baseline(self):
        """Subarray groups keep full bank sharing (§4.1): Siloz tenants
        contend exactly as much as baseline tenants — Siloz is about
        *security* isolation, not performance isolation."""
        lat = {}
        for label, hv in (
            ("baseline", BaselineHypervisor(Machine.medium(sockets=1))),
            ("siloz", SilozHypervisor.boot(Machine.medium(sockets=1))),
        ):
            victim = hv.create_vm(VmSpec(name="victim", memory_bytes=16 * MiB))
            noisy = hv.create_vm(VmSpec(name="noisy", memory_bytes=16 * MiB))
            shared = run_concurrent(
                hv, [(victim, "redis-b"), (noisy, "mlc-reads")], accesses=3000
            )
            lat[label] = shared.latency_of("victim")
        assert lat["siloz"] == pytest.approx(lat["baseline"], rel=0.10)
