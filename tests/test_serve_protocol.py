"""Wire-protocol tests: encode/decode round-trips, typed faults,
version/op validation, and malformed-frame handling."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.fleet.admission import AdmissionDecision, RejectReason
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
    ServeFault,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
    fault_from_decision,
    ok_response,
    request_id_of,
    validate_request,
)


class TestRequestCodec:
    """Request encode/decode round-trips and malformed frames."""

    def test_round_trip(self):
        req = Request(op="place_vm", params={"name": "a", "memory_bytes": 42}, id=7)
        wire = encode_request(req)
        assert wire.endswith(b"\n")
        assert decode_request(wire) == req

    def test_defaults(self):
        req = decode_request(b'{"op": "health"}')
        assert req.id == 0
        assert req.v == PROTOCOL_VERSION
        assert req.params == {}

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b"[1,2,3]",
            b'{"params": {}}',  # missing op
            b'{"op": ""}',  # empty op
            b'{"op": "health", "params": 3}',  # params not an object
            b'{"op": "health", "id": "x"}',  # non-int id
            b'{"op": "health", "id": true}',  # bool is not an int here
            b"\xff\xfe",  # not UTF-8
        ],
    )
    def test_malformed_raises(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_request_id_of_best_effort(self):
        assert request_id_of(b'{"op": "x", "id": 9}') == 9
        assert request_id_of(b"garbage") == 0


class TestResponseCodec:
    """Response encode/decode, both success and typed-fault halves."""

    def test_ok_round_trip(self):
        resp = ok_response(3, host=1, attempts=2)
        back = decode_response(encode_response(resp))
        assert back.ok and back.id == 3
        assert back.result == {"host": 1, "attempts": 2}

    def test_error_round_trip_preserves_extras(self):
        fault = ServeFault(
            code=ErrorCode.CAPACITY,
            reason="retries-exhausted",
            detail="no groups",
            extra={"requested_groups": 4, "available_groups": 1},
        )
        back = decode_response(encode_response(error_response(9, fault)))
        assert not back.ok and back.id == 9
        assert back.error is not None
        assert back.error.code is ErrorCode.CAPACITY
        assert back.error.reason == "retries-exhausted"
        assert back.error.extra["requested_groups"] == 4
        assert back.error.extra["available_groups"] == 1

    def test_error_payload_never_carries_traceback(self):
        fault = ServeFault(
            code=ErrorCode.INTERNAL, reason="ValueError", detail="boom"
        )
        doc = json.loads(encode_response(error_response(1, fault)))
        assert "Traceback" not in json.dumps(doc)
        assert doc["error"] == {
            "code": "internal",
            "reason": "ValueError",
            "detail": "boom",
        }

    @pytest.mark.parametrize(
        "line",
        [
            b'{"id": 1}',  # missing ok
            b'{"id": 1, "ok": false}',  # failed without error object
            b'{"id": 1, "ok": false, "error": {"code": "nope"}}',
            b'{"id": 1, "ok": true, "result": 5}',
        ],
    )
    def test_malformed_raises(self, line):
        with pytest.raises(ProtocolError):
            decode_response(line)


class TestValidation:
    """Server-side version/op validation produces typed faults."""

    def test_known_ops_pass(self):
        for op in OPS:
            assert validate_request(Request(op=op)) is None

    def test_unknown_op(self):
        fault = validate_request(Request(op="explode"))
        assert fault is not None and fault.code is ErrorCode.UNKNOWN_OP
        assert fault.reason == "explode"

    def test_wrong_version(self):
        fault = validate_request(Request(op="health", v=99))
        assert fault is not None
        assert fault.code is ErrorCode.UNSUPPORTED_VERSION
        assert fault.extra["supported"] == PROTOCOL_VERSION


class TestFaultFromDecision:
    """RejectReason -> typed wire fault mapping."""

    def test_queue_full_maps_to_busy(self):
        decision = AdmissionDecision(
            vm="a", admitted=False, reason=RejectReason.QUEUE_FULL
        )
        fault = fault_from_decision(decision)
        assert fault.code is ErrorCode.BUSY
        assert fault.reason == "queue-full"

    def test_retries_exhausted_maps_to_capacity_with_shortfall(self):
        decision = AdmissionDecision(
            vm="big",
            admitted=False,
            reason=RejectReason.RETRIES_EXHAUSTED,
            attempts=3,
            requested_groups=6,
            available_groups=2,
        )
        fault = fault_from_decision(decision)
        assert fault.code is ErrorCode.CAPACITY
        assert fault.reason == "retries-exhausted"
        assert fault.extra == {
            "attempts": 3,
            "requested_groups": 6,
            "available_groups": 2,
        }

    def test_invalid_spec_maps_to_invalid(self):
        decision = AdmissionDecision(
            vm="bad", admitted=False, reason=RejectReason.INVALID_SPEC
        )
        assert fault_from_decision(decision).code is ErrorCode.INVALID

    def test_admitted_decision_rejected(self):
        decision = AdmissionDecision(vm="ok", admitted=True, host_id=0)
        with pytest.raises(ServeError):
            fault_from_decision(decision)
