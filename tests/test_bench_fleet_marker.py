"""The fleet bench's single-core "skipped" marker path, unit-tested.

``benchmarks/bench_fleet.py`` declines to record a scaling speedup on a
1-CPU runner — it writes a loud ``skipped`` marker that
``check_trajectory.py --key`` passes through ungated.  That branch only
ever executed on single-core machines, so it is pinned here with
``os.cpu_count`` monkeypatched both ways and the campaign stubbed out
(this is a test of the *recording* logic, not the fleet)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "bench_fleet.py"
)


class _FakeReport:
    """Constant-digest stand-in for a merged FleetReport."""

    hosts_failed = 0

    @staticmethod
    def digest() -> str:
        return "f" * 64


@pytest.fixture
def bench(tmp_path, monkeypatch):
    """A fresh bench_fleet module, stubbed and redirected into tmp."""
    spec = importlib.util.spec_from_file_location("bench_fleet_under_test", BENCH_PATH)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    # Serial takes 1s, N workers take 1/N s: a clean N-x scaling stub.
    monkeypatch.setattr(
        mod, "_campaign", lambda workers: (1.0 / workers, _FakeReport())
    )
    monkeypatch.setattr(mod, "BENCH_JSON", tmp_path / "BENCH_fleet.json")
    yield mod
    sys.modules.pop("bench_fleet_under_test", None)


def _recorded(mod) -> dict:
    return json.loads(mod.BENCH_JSON.read_text())["fleet_campaign"]


def test_single_core_writes_skip_marker_not_speedup(bench, monkeypatch):
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    bench.test_fleet_scaling()
    payload = _recorded(bench)
    assert payload["skipped"] == "single-core runner (1 cpu)"
    assert "speedup" not in payload, (
        "a 1-core runner must not record a speedup: it would poison the "
        "trajectory baseline for real runners"
    )
    assert payload["target_enforced"] is False
    assert payload["identical_results"] is True


def test_multi_core_records_speedup_and_no_marker(bench, monkeypatch):
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 8)
    bench.test_fleet_scaling()
    payload = _recorded(bench)
    assert "skipped" not in payload
    assert payload["speedup"] == pytest.approx(4.0)  # stub: N-x scaling
    assert payload["target_enforced"] is True
    assert payload["cpu_count"] == 8


def test_multi_core_below_worker_count_is_not_enforced(bench, monkeypatch):
    # 2 CPUs: enough to measure (> 1) but below the 4-worker target, so
    # the speedup is recorded yet the >=2x assertion must not fire.
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 2)
    bench.test_fleet_scaling()
    payload = _recorded(bench)
    assert payload["speedup"] == pytest.approx(4.0)
    assert payload["target_enforced"] is False


def test_skip_marker_passes_trajectory_gate(bench, monkeypatch, tmp_path, capsys):
    monkeypatch.setattr(bench.os, "cpu_count", lambda: 1)
    bench.test_fleet_scaling()

    check_path = BENCH_PATH.parent / "check_trajectory.py"
    spec = importlib.util.spec_from_file_location("check_trajectory_under_test", check_path)
    check = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check)
    prev = tmp_path / "prev.json"
    prev.write_text("{}")
    code = check.main(
        [str(prev), str(bench.BENCH_JSON), "--key", "fleet_campaign"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "SKIPPED" in out and "not gated" in out
    sys.modules.pop("check_trajectory_under_test", None)
