"""Integration tests for the baseline hypervisor and VM lifecycle."""

import pytest

from repro.errors import HvError, OutOfMemoryError
from repro.hv import (
    BaselineHypervisor,
    Machine,
    MemoryRegionKind,
    VmSpec,
)
from repro.hv.memory_types import MemoryRegion, default_layout
from repro.hv.vm import VmState
from repro.units import KiB, MiB, PAGE_4K

BACKING = 64 * KiB  # page-granular backing for the small machine


def make_hv(**machine_kwargs):
    machine = Machine.small(**machine_kwargs)
    return BaselineHypervisor(machine, backing_page_bytes=BACKING)


def spec(name="vm0", mem=1 * MiB, **kwargs):
    return VmSpec(name=name, memory_bytes=mem, **kwargs)


class TestMemoryTypes:
    def test_mediation_classification(self):
        assert MemoryRegionKind.RAM.unmediated
        assert MemoryRegionKind.ROM.unmediated
        assert MemoryRegionKind.MMIO_DIRECT.unmediated
        assert not MemoryRegionKind.MMIO_EMULATED.unmediated
        assert not MemoryRegionKind.VIRTIO.unmediated

    def test_default_layout_shape(self):
        regions = default_layout(1 * MiB, rom_bytes=16 * KiB, mmio_bytes=16 * KiB)
        assert [r.name for r in regions] == ["ram", "rom", "mmio", "virtio"]
        assert regions[0].size == 1 * MiB
        assert regions[1].gpa == 1 * MiB

    def test_region_contains(self):
        r = MemoryRegion("x", 0x1000, 0x1000, MemoryRegionKind.RAM)
        assert 0x1000 in r and 0x1fff in r and 0x2000 not in r

    def test_region_validation(self):
        with pytest.raises(HvError):
            MemoryRegion("x", 0, 0, MemoryRegionKind.RAM)
        with pytest.raises(HvError):
            MemoryRegion("x", -1, 10, MemoryRegionKind.RAM)


class TestVmSpec:
    def test_rejects_bad_memory(self):
        with pytest.raises(HvError):
            VmSpec(name="x", memory_bytes=0)

    def test_rejects_bad_vcpus(self):
        with pytest.raises(HvError):
            VmSpec(name="x", memory_bytes=1 * MiB, vcpus=0)


class TestBaselineTopology:
    def test_one_node_per_socket(self):
        hv = make_hv(sockets=1)
        assert len(hv.topology) == 1
        node = hv.topology.node(0)
        assert node.cpus  # host nodes own cores
        assert node.total_bytes == hv.machine.geom.socket_bytes


class TestVmLifecycle:
    def setup_method(self):
        self.hv = make_hv()

    def test_create_vm_basics(self):
        vm = self.hv.create_vm(spec())
        assert vm.state is VmState.RUNNING
        assert vm.unmediated_bytes >= 1 * MiB
        assert vm.ept.mapped_bytes > 0

    def test_duplicate_name_rejected(self):
        self.hv.create_vm(spec())
        with pytest.raises(HvError):
            self.hv.create_vm(spec())

    def test_unaligned_memory_rejected(self):
        with pytest.raises(HvError):
            self.hv.create_vm(spec(mem=BACKING + PAGE_4K))

    def test_guest_read_write(self):
        vm = self.hv.create_vm(spec())
        vm.write(0x5000, b"tenant data")
        assert vm.read(0x5000, 11) == b"tenant data"

    def test_guest_data_lands_at_translated_hpa(self):
        vm = self.hv.create_vm(spec())
        vm.write(0x5000, b"x")
        hpa = vm.translate(0x5000)
        assert self.hv.machine.dram.read(hpa, 1) == b"x"

    def test_vms_have_disjoint_backing(self):
        a = self.hv.create_vm(spec("a"))
        b = self.hv.create_vm(spec("b"))
        for ra in a.backing:
            for rb in b.backing:
                assert not ra.overlaps(rb)

    def test_mediated_access_counts_exits(self):
        vm = self.hv.create_vm(spec())
        mmio = next(r for r in vm.regions if r.name == "mmio")
        vm.read(mmio.gpa, 4)
        assert vm.vm_exits == 1

    def test_ram_access_no_exit(self):
        vm = self.hv.create_vm(spec())
        vm.read(0, 4)
        assert vm.vm_exits == 0

    def test_hammer_requires_unmediated(self):
        vm = self.hv.create_vm(spec())
        mmio = next(r for r in vm.regions if r.name == "mmio")
        with pytest.raises(HvError):
            vm.hammer(mmio.gpa, 10)

    def test_hammer_ram_allowed(self):
        vm = self.hv.create_vm(spec())
        vm.hammer(0x0, 10)  # no flips expected at this intensity

    def test_destroy_returns_memory(self):
        free_before = sum(n.free_bytes for n in self.hv.topology.nodes)
        self.hv.create_vm(spec())
        self.hv.destroy_vm("vm0")
        free_after = sum(n.free_bytes for n in self.hv.topology.nodes)
        assert free_after == free_before

    def test_destroy_twice_rejected(self):
        self.hv.create_vm(spec())
        self.hv.destroy_vm("vm0")
        with pytest.raises(HvError):
            self.hv.destroy_vm("vm0")

    def test_shutdown_vm_rejects_access(self):
        vm = self.hv.create_vm(spec())
        self.hv.destroy_vm("vm0")
        with pytest.raises(HvError):
            vm.read(0, 4)

    def test_release_reservation_requires_shutdown(self):
        self.hv.create_vm(spec())
        with pytest.raises(HvError):
            self.hv.release_reservation("vm0")
        self.hv.destroy_vm("vm0")
        self.hv.release_reservation("vm0")
        assert "vm0" not in self.hv.vms

    def test_oom_rolls_back(self):
        cap = self.hv.machine.geom.socket_bytes
        with pytest.raises(OutOfMemoryError):
            self.hv.create_vm(spec(mem=2 * cap))
        # Allocator must be whole again.
        vm = self.hv.create_vm(spec(mem=1 * MiB))
        assert vm.unmediated_bytes >= 1 * MiB

    def test_groups_of_vm_nonempty(self):
        vm = self.hv.create_vm(spec())
        assert self.hv.groups_of_vm(vm)

    def test_vm_lookup(self):
        self.hv.create_vm(spec())
        assert self.hv.vm("vm0").name == "vm0"
        with pytest.raises(HvError):
            self.hv.vm("nope")


class TestBaselineCoLocation:
    """The vulnerability: baseline VMs share subarray groups."""

    def test_adjacent_vms_share_groups(self):
        hv = make_hv()
        # Two small VMs: the baseline allocates them back to back inside
        # the same subarray group(s).
        a = hv.create_vm(spec("a", mem=256 * KiB))
        b = hv.create_vm(spec("b", mem=256 * KiB))
        shared = hv.groups_of_vm(a) & hv.groups_of_vm(b)
        assert shared  # co-located: inter-VM hammering is possible
