"""Unit/integration tests for the simulated DRAM module."""

import pytest

from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.errors import DramError, UncorrectableError
from repro.units import CACHE_LINE, MS

GEOM = DRAMGeometry.small()


def make_dram(**kwargs):
    kwargs.setdefault("profile", DisturbanceProfile.test_scale(threshold_mean=32.0))
    kwargs.setdefault("trr_config", None)  # most tests isolate disturbance
    return SimulatedDram(GEOM, **kwargs)


class TestDataPath:
    def setup_method(self):
        self.dram = make_dram()

    def test_read_back_written_data(self):
        self.dram.write(0x1000, b"hello world")
        assert self.dram.read(0x1000, 11) == b"hello world"

    def test_unwritten_memory_reads_zero(self):
        assert self.dram.read(0x2000, 16) == bytes(16)

    def test_cross_line_write(self):
        data = bytes(range(200))
        self.dram.write(CACHE_LINE - 10, data)
        assert self.dram.read(CACHE_LINE - 10, 200) == data

    def test_write_counts_activations(self):
        before = self.dram.counters.activations
        self.dram.write(0, bytes(CACHE_LINE * 3))
        assert self.dram.counters.activations == before + 3

    def test_read_rejects_zero_length(self):
        with pytest.raises(DramError):
            self.dram.read(0, 0)

    def test_clock_advances_per_act(self):
        t0 = self.dram.clock
        self.dram.activate(0, 0, 0)
        assert self.dram.clock == pytest.approx(t0 + self.dram.act_seconds)


class TestHammeringThroughModule:
    def setup_method(self):
        self.dram = make_dram(seed=5)

    def hammer_row(self, row, count, bank=0):
        for _ in range(count):
            self.dram.activate(0, bank, row)

    def test_hammer_produces_flips(self):
        self.hammer_row(3, 500)
        assert self.dram.flips_log

    def test_flips_corrupt_read_data(self):
        # Write a pattern into the victim row's addresses, hammer, and
        # observe corruption with ECC off.
        self.hammer_row(3, 500)
        victims = {f.row for f in self.dram.flips_log}
        assert victims
        row = victims.pop()
        assert self.dram.flip_bits_at(0, 0, row)

    def test_rewrite_clears_flips(self):
        self.hammer_row(3, 500)
        flip = self.dram.flips_log[0]
        # Find the HPA for the flipped byte and rewrite the whole line.
        from repro.dram.media import MediaAddress

        media = MediaAddress.from_socket_bank(
            GEOM, flip.socket, flip.bank, flip.row, (flip.bit // 8 // 64) * 64
        )
        hpa = self.dram.mapping.encode(media)
        self.dram.write(hpa, bytes(CACHE_LINE))
        remaining = {
            b
            for b in self.dram.flip_bits_at(flip.socket, flip.bank, flip.row)
            if media.col * 8 <= b < (media.col + CACHE_LINE) * 8
        }
        assert remaining == set()

    def test_flips_by_group_accounting(self):
        self.hammer_row(3, 500)  # subarray 0 -> group 0
        by_group = self.dram.flips_by_group()
        assert set(by_group) == {(0, 0)}

    def test_flips_outside_groups(self):
        self.hammer_row(3, 500)
        assert self.dram.flips_outside_groups({(0, 0)}) == []
        assert self.dram.flips_outside_groups({(0, 1)})

    def test_refresh_window_resets_pressure(self):
        # Hammer below threshold, let 64 ms pass, hammer again below
        # threshold: no flips because pressure reset in between.
        self.hammer_row(3, 20)
        self.dram.advance_time(70 * MS)
        self.hammer_row(3, 20)
        assert self.dram.counters.refresh_windows >= 1
        assert self.dram.flips_log == []


class TestTrrIntegration:
    def test_trr_protects_uniform_hammer(self):
        from repro.dram.trr import TrrConfig

        protected = SimulatedDram(
            GEOM,
            profile=DisturbanceProfile.test_scale(threshold_mean=40.0),
            trr_config=TrrConfig(slots=4, sampled_acts_after_ref=2, sample_prob=0.05),
            trr_ref_every=16,
            seed=9,
        )
        unprotected = make_dram(seed=9, profile=DisturbanceProfile.test_scale(threshold_mean=40.0))
        for _ in range(600):
            protected.activate(0, 0, 3)
            unprotected.activate(0, 0, 3)
        assert len(protected.flips_log) < len(unprotected.flips_log)


class TestEccIntegration:
    def setup_method(self):
        self.dram = make_dram(seed=11)

    def _force_flip(self, bits, row=2):
        """Inject flips directly (test hook) into bank 0 row 2."""
        for bit in bits:
            self.dram._toggle_bit(0, 0, row, bit)

    def _hpa_of(self, row, col=0):
        from repro.dram.media import MediaAddress

        media = MediaAddress.from_socket_bank(GEOM, 0, 0, row, col)
        return self.dram.mapping.encode(media)

    def test_single_bit_corrected_on_read(self):
        self.dram.write(self._hpa_of(2), b"\x00" * CACHE_LINE)
        self._force_flip({5})
        data = self.dram.read(self._hpa_of(2), CACHE_LINE)
        assert data == b"\x00" * CACHE_LINE
        assert self.dram.ecc.stats.corrected == 1

    def test_double_bit_raises_machine_check(self):
        self._force_flip({5, 6})
        with pytest.raises(UncorrectableError):
            self.dram.read(self._hpa_of(2), CACHE_LINE)

    def test_ecc_off_returns_raw_corruption(self):
        self.dram.write(self._hpa_of(2), b"\x00" * CACHE_LINE)
        self._force_flip({0})
        data = self.dram.read(self._hpa_of(2), CACHE_LINE, ecc=False)
        assert data[0] == 1

    def test_patrol_scrub_heals_correctable(self):
        self._force_flip({5, 200})
        events = self.dram.patrol_scrub()
        assert len(events) == 2
        assert self.dram.flip_bits_at(0, 0, 2) == set()

    def test_patrol_scrub_reports_uncorrectable(self):
        from repro.dram.ecc import EccOutcome

        self._force_flip({5, 6})
        events = self.dram.patrol_scrub()
        assert events[0].outcome is EccOutcome.UNCORRECTABLE
        assert self.dram.flip_bits_at(0, 0, 2) == {5, 6}


class TestRowRepairs:
    """§6: repairs relocate cells; inter-subarray repairs break isolation
    until the affected pages are offlined."""

    def test_intra_subarray_repair_keeps_containment(self):
        dram = make_dram(seed=13)
        dram.add_repair(0, 0, defective_row=3, spare_row=6)
        for _ in range(500):
            dram.activate(0, 0, 3)  # physically activates row 6
        assert dram.flips_log
        assert all(GEOM.subarray_of_row(f.row) == 0 for f in dram.flips_log)

    def test_inter_subarray_repair_breaks_containment(self):
        dram = make_dram(seed=13)
        # Row 3's cells now live at internal row 12 (subarray 1):
        dram.add_repair(0, 0, defective_row=3, spare_row=12)
        for _ in range(800):
            dram.activate(0, 0, 3)
        # Hammering media row 3 disturbs internal rows 10-14, whose data
        # belongs to media rows in subarray 1: containment is broken.
        assert any(GEOM.subarray_of_row(f.row) == 1 for f in dram.flips_log)

    def test_spare_neighbors_map_back_to_defective_row(self):
        dram = make_dram(seed=13)
        dram.add_repair(0, 0, defective_row=3, spare_row=12)
        # Hammering media row 11 (internal 11) disturbs internal 12,
        # whose data is media row 3's.
        for _ in range(800):
            dram.activate(0, 0, 11)
        assert any(f.row == 3 for f in dram.flips_log)

    def test_abandoned_cells_absorb_flips(self):
        dram = make_dram(seed=13)
        dram.add_repair(0, 0, defective_row=12, spare_row=14)
        # Internal row 12's cells are disconnected; flips there vanish.
        for _ in range(800):
            dram.activate(0, 0, 11)
        assert all(f.row != 12 for f in dram.flips_log)

    def test_duplicate_repair_rejected(self):
        dram = make_dram()
        dram.add_repair(0, 0, 3, 6)
        with pytest.raises(DramError):
            dram.add_repair(0, 0, 3, 7)


class TestMisc:
    def test_mapping_geometry_must_match(self):
        from repro.dram.mapping import SkylakeMapping

        other = DRAMGeometry.small(sockets=2)
        with pytest.raises(DramError):
            SimulatedDram(GEOM, SkylakeMapping.for_small_geometry(other))

    def test_advance_time_rejects_negative(self):
        with pytest.raises(DramError):
            make_dram().advance_time(-1.0)

    def test_paper_scale_module_is_cheap_when_idle(self):
        dram = SimulatedDram(DRAMGeometry.paper_default())
        dram.write(0, b"x")
        assert dram.read(0, 1) == b"x"
