"""Tests for §8.1 (sub-NUMA clustering) and §8.2 (DDR5/HBM2) geometry
variants."""

import pytest

from repro.core import SilozConfig, SilozHypervisor
from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.transforms import TransformConfig, subarray_isolation_preserved
from repro.errors import GeometryError
from repro.hv.machine import Machine
from repro.units import GiB, MiB


class TestSubNumaClustering:
    """§8.1: SNC halves group sizes for finer-grained provisioning."""

    def test_snc2_halves_group_size(self):
        base = DRAMGeometry.paper_default()
        snc = base.with_sub_numa_clustering(2)
        assert snc.subarray_group_bytes == base.subarray_group_bytes // 2
        assert snc.subarray_group_bytes == 768 * MiB

    def test_snc2_preserves_capacity(self):
        base = DRAMGeometry.paper_default()
        snc = base.with_sub_numa_clustering(2)
        assert snc.total_bytes == base.total_bytes
        assert snc.sockets == 4

    def test_snc3_on_six_channels(self):
        snc = DRAMGeometry.paper_default().with_sub_numa_clustering(3)
        assert snc.subarray_group_bytes == 512 * MiB

    def test_invalid_cluster_count_rejected(self):
        with pytest.raises(GeometryError):
            DRAMGeometry.paper_default().with_sub_numa_clustering(4)
        with pytest.raises(GeometryError):
            DRAMGeometry.paper_default().with_sub_numa_clustering(0)

    def test_group_size_scales_linearly_with_banks_touched(self):
        """§8.1: 'the size linearly decreases with the number of banks
        touched per page'."""
        base = DRAMGeometry.paper_default()
        for clusters in (1, 2, 3, 6):
            geom = (
                base
                if clusters == 1
                else base.with_sub_numa_clustering(clusters)
            )
            assert (
                geom.subarray_group_bytes * clusters == base.subarray_group_bytes
            )

    def test_snc_machine_boots_siloz(self):
        """End to end: Siloz on an SNC-2 small machine provisions twice
        as many (half-size) guest nodes per physical socket."""
        base = Machine.small(sockets=1)
        snc_geom = base.geom.with_sub_numa_clustering(2)
        mapping = SkylakeMapping.for_small_geometry(snc_geom)
        from repro.dram.module import SimulatedDram

        machine = Machine(
            geom=snc_geom,
            mapping=mapping,
            dram=SimulatedDram(snc_geom, mapping),
            cores_per_socket=2,
        )
        hv = SilozHypervisor.boot(machine)
        from repro.mm.numa import NodeKind

        guests = hv.topology.nodes_of_kind(NodeKind.GUEST_RESERVED)
        assert guests
        assert guests[0].total_bytes == base.geom.subarray_group_bytes // 2


class TestDdr5:
    """§8.2: more banks -> bigger groups; no mirroring/inversion."""

    def setup_method(self):
        self.geom = DRAMGeometry.ddr5_server()

    def test_bank_count_doubles(self):
        assert self.geom.banks_per_socket == 384

    def test_group_size_grows(self):
        # 384 banks * 1024 rows * 8 KiB = 3 GiB.
        assert self.geom.subarray_group_bytes == 3 * GiB

    def test_coarser_groups_offset_by_snc(self):
        """§8.1+§8.2 together: SNC-2 brings DDR5 groups back to 1.5 GiB."""
        snc = self.geom.with_sub_numa_clustering(2)
        assert snc.subarray_group_bytes == 1536 * MiB

    def test_ddr5_needs_no_artificial_groups(self):
        """§8.2: DDR5 undoes mirroring/inversion per device, so even
        non-power-of-2 subarray sizes keep isolation."""
        assert subarray_isolation_preserved(768, TransformConfig(ddr5=True))
        assert not subarray_isolation_preserved(768, TransformConfig(ddr5=False))

    def test_paper_config_fits_ddr5(self):
        cfg = SilozConfig.paper_default()
        cfg.validate_against(self.geom)
        assert cfg.reserved_fraction(self.geom) < 0.001


class TestHbm2:
    def setup_method(self):
        self.geom = DRAMGeometry.hbm2_stack()

    def test_many_banks(self):
        assert self.geom.banks_per_socket == 128

    def test_group_algebra_holds(self):
        expected = (
            self.geom.banks_per_socket
            * self.geom.rows_per_subarray
            * self.geom.row_bytes
        )
        assert self.geom.subarray_group_bytes == expected

    def test_mapping_constructs(self):
        mapping = SkylakeMapping(self.geom)
        assert mapping.regions_per_socket >= 1
        hpa = self.geom.row_group_bytes * 3 + 64
        assert mapping.encode(mapping.decode(hpa)) == hpa
