"""Tests for the guest OS layer: GVA->GPA->HPA, processes, and the §9
intra-VM trade-off."""

import pytest

from repro.core import SilozHypervisor, audit_hypervisor
from repro.errors import EptError, EptViolation, HvError, OutOfMemoryError
from repro.guest import GuestOS, GuestPageTable
from repro.hv import Machine, VmSpec
from repro.units import KiB, MiB, PAGE_4K


@pytest.fixture
def hv():
    return SilozHypervisor.boot(Machine.small(seed=51))


@pytest.fixture
def vm(hv):
    return hv.create_vm(VmSpec(name="guest", memory_bytes=2 * MiB))


@pytest.fixture
def gos(vm):
    return GuestOS(vm)


class TestFrameAllocator:
    def test_frames_above_kernel_reserved(self, gos):
        frame = gos.alloc_frame()
        assert frame >= 64 * KiB
        assert frame % PAGE_4K == 0

    def test_frames_distinct(self, gos):
        frames = {gos.alloc_frame() for _ in range(16)}
        assert len(frames) == 16

    def test_free_and_reuse(self, gos):
        frame = gos.alloc_frame()
        gos.free_frame(frame)
        assert gos.alloc_frame() == frame

    def test_exhaustion(self, gos):
        with pytest.raises(OutOfMemoryError):
            for _ in range(10_000):
                gos.alloc_frame()

    def test_bad_free_rejected(self, gos):
        with pytest.raises(HvError):
            gos.free_frame(0)  # kernel-reserved
        with pytest.raises(HvError):
            gos.free_frame(123)  # unaligned


class TestGuestPageTable:
    def test_map_translate(self, gos, vm):
        pt = GuestPageTable(vm, gos.alloc_frame)
        frame = gos.alloc_frame()
        pt.map(0x400000, frame, PAGE_4K)
        assert pt.translate(0x400000) == frame
        assert pt.translate(0x400123) == frame + 0x123

    def test_unmapped_faults(self, gos, vm):
        pt = GuestPageTable(vm, gos.alloc_frame)
        with pytest.raises(EptViolation):
            pt.translate(0x400000)

    def test_double_map_rejected(self, gos, vm):
        pt = GuestPageTable(vm, gos.alloc_frame)
        frame = gos.alloc_frame()
        pt.map(0x400000, frame, PAGE_4K)
        with pytest.raises(EptError):
            pt.map(0x400000, frame, PAGE_4K)

    def test_unaligned_rejected(self, gos, vm):
        pt = GuestPageTable(vm, gos.alloc_frame)
        with pytest.raises(EptError):
            pt.map(0x400001, 0x10000, PAGE_4K)

    def test_tables_live_in_guest_ram(self, gos, vm):
        pt = GuestPageTable(vm, gos.alloc_frame)
        pt.map(0x400000, gos.alloc_frame(), PAGE_4K)
        for frame in pt.table_frames:
            # Each table frame is within the RAM region and EPT-mapped.
            assert vm.region_at(frame).name == "ram"
            vm.translate(frame)

    def test_full_translation_chain(self, gos, vm):
        """§2.1: GVA -> GPA -> HPA, each step through real tables."""
        pt = GuestPageTable(vm, gos.alloc_frame)
        frame = gos.alloc_frame()
        pt.map(0x400000, frame, PAGE_4K)
        hpa = pt.translate_to_hpa(0x400000)
        assert hpa == vm.translate(frame)
        assert vm.owns_hpa(hpa)


class TestProcesses:
    def test_spawn_and_rw(self, gos):
        p = gos.spawn("worker")
        p.write(0x400000, b"process data")
        assert p.read(0x400000, 12) == b"process data"

    def test_processes_have_disjoint_frames(self, gos):
        a = gos.spawn("a")
        b = gos.spawn("b")
        assert not set(a.frames) & set(b.frames)

    def test_same_gva_different_processes_different_data(self, gos):
        a = gos.spawn("a")
        b = gos.spawn("b")
        a.write(0x400000, b"AAAA")
        b.write(0x400000, b"BBBB")
        assert a.read(0x400000, 4) == b"AAAA"
        assert b.read(0x400000, 4) == b"BBBB"

    def test_duplicate_name_rejected(self, gos):
        gos.spawn("a")
        with pytest.raises(HvError):
            gos.spawn("a")

    def test_kill_releases_frames(self, gos):
        free_before = gos.free_bytes
        gos.spawn("a")
        gos.kill("a")
        assert gos.free_bytes == free_before
        with pytest.raises(HvError):
            gos.kill("a")

    def test_heap_pages_param(self, gos):
        p = gos.spawn("big", heap_pages=16)
        assert len(p.frames) == 16
        p.write(p.heap_top - PAGE_4K, b"top page")


class TestIntraVmTradeoff:
    """§9: Siloz is inter-VM protection; intra-VM co-location remains
    (and can even increase).  Demonstrated: a guest process's hammering
    flips bits in a sibling process, while the other VM stays clean."""

    def test_process_hammering_can_hit_sibling(self, hv, vm):
        gos = GuestOS(vm)
        victim_proc = gos.spawn("victim", heap_pages=32)
        attacker_proc = gos.spawn("attacker", heap_pages=32)
        other_vm = hv.create_vm(VmSpec(name="other", memory_bytes=2 * MiB))

        victim_proc.write(0x400000, b"\x77" * PAGE_4K)
        # Hammer every heap page the attacker owns, hard.
        flips = []
        for i in range(len(attacker_proc.frames)):
            flips.extend(
                attacker_proc.hammer(0x400000 + i * PAGE_4K, activations=1200)
            )
        assert flips, "intra-VM hammering should flip bits somewhere"

        geom = hv.machine.geom
        victim_rows = {
            hv.machine.mapping.decode(victim_proc.hpa_of(0x400000 + i * PAGE_4K)).row
            for i in range(len(victim_proc.frames))
        }
        flipped_rows = {f.row for f in hv.machine.dram.flips_log}
        # The flips stayed inside the VM's groups (inter-VM holds) —
        # except flips absorbed by offlined guard rows: the EPT walks
        # this test performs activate EPT rows heavily, and their
        # disturbance lands in guards by design (§5.4).
        groups = {g for _, g in vm.reserved_groups}
        from repro.dram.media import MediaAddress

        for f in hv.machine.dram.flips_log:
            if f.row // geom.rows_per_subarray in groups:
                continue
            media = MediaAddress.from_socket_bank(
                geom, f.socket, f.bank, f.row, (f.bit // 8 // 64) * 64
            )
            assert hv.offline.is_offline(hv.machine.mapping.encode(media))
        # ...and the sibling process's rows are within reach: either
        # already hit, or adjacent to hammered rows (co-located).
        assert flipped_rows & victim_rows or any(
            abs(fr - vr) <= 2 for fr in flipped_rows for vr in victim_rows
        )
        # The other VM is untouched.
        from repro.core.policy import flips_in_vm

        assert flips_in_vm(hv, other_vm) == []
        assert audit_hypervisor(hv) == []
