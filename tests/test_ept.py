"""Unit tests for the EPT subsystem (entries, walks, integrity)."""

import pytest

from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.ept import EptEntry, ExtendedPageTable, SecureEptChecker, ept_page_count
from repro.errors import (
    EptError,
    EptIntegrityError,
    EptViolation,
    UncorrectableError,
)
from repro.units import GiB, PAGE_2M, PAGE_4K

# A geometry big enough for 2 MiB mappings: 32 MiB per socket.
GEOM = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)


@pytest.fixture
def dram():
    return SimulatedDram(GEOM, trr_config=None)


@pytest.fixture
def ept(dram):
    return make_ept(dram)


def make_ept(dram, base=0, **kwargs):
    """EPT whose table pages come from a bump allocator at *base*."""
    next_page = iter(range(base, base + 4 * 2**20, PAGE_4K))

    def alloc():
        return next(next_page)

    return ExtendedPageTable(dram, alloc, **kwargs)


class TestEptEntry:
    def test_pack_unpack_roundtrip(self):
        entry = EptEntry.make(0x1234000, large=True)
        assert EptEntry.unpack(entry.pack()) == entry

    def test_flags(self):
        entry = EptEntry.make(0x1000, writable=False)
        assert entry.readable and not entry.writable and entry.executable
        assert not entry.large

    def test_empty_not_present(self):
        assert not EptEntry.empty().present

    def test_unaligned_target_rejected(self):
        with pytest.raises(EptError):
            EptEntry.make(0x1234)

    def test_oversize_target_rejected(self):
        with pytest.raises(EptError):
            EptEntry.make(1 << 52)

    def test_unpack_wrong_length_rejected(self):
        with pytest.raises(EptError):
            EptEntry.unpack(b"\x00" * 7)

    def test_repr_flags(self):
        assert "rwx" in repr(EptEntry.make(0x1000))


class TestEptPageCount:
    def test_2m_backed_160gib_vm(self):
        """§5.4: the paper's 160 GiB VM with 2 MiB pages needs ~160 PD
        pages + a handful above — far less than one 1 GiB bank row."""
        pages = ept_page_count(160 * GiB)
        assert 160 <= pages <= 165

    def test_last_level_maps_1gib(self):
        # 512 entries x 2 MiB = 1 GiB per last-level page.
        assert ept_page_count(GiB) - ept_page_count(1) in (0, 1)

    def test_4k_backing_is_512x_more(self):
        big = ept_page_count(10 * GiB, page_size=PAGE_4K)
        small = ept_page_count(10 * GiB, page_size=PAGE_2M)
        assert big > 400 * small

    def test_all_epts_fit_one_row_group(self):
        """§5.4: one 8 KiB row holds two EPT pages; one row group per
        socket (192 rows) holds 384 EPT pages — enough for a socket of
        160 GiB-class VMs."""
        geom = DRAMGeometry.paper_default()
        pages_per_row_group = (geom.row_group_bytes // PAGE_4K)
        socket_vm_bytes = 160 * GiB
        assert ept_page_count(socket_vm_bytes) < pages_per_row_group

    def test_rejects_bad_args(self):
        with pytest.raises(EptError):
            ept_page_count(0)
        with pytest.raises(EptError):
            ept_page_count(GiB, page_size=12345)


class TestMappingAndTranslation:
    def test_4k_map_translate(self, ept):
        ept.map(gpa=0x0, hpa=0x80000, size=PAGE_4K)
        assert ept.translate(0x0) == 0x80000
        assert ept.translate(0x123) == 0x80123

    def test_2m_map_translate(self, ept):
        ept.map(gpa=0x0, hpa=PAGE_2M, size=PAGE_2M)
        assert ept.translate(0x0) == PAGE_2M
        assert ept.translate(0x150000) == PAGE_2M + 0x150000

    def test_mixed_alignment_uses_4k(self, ept):
        ept.map(gpa=0x0, hpa=0x3000, size=PAGE_4K * 4)
        assert ept.translate(PAGE_4K * 3) == 0x3000 + PAGE_4K * 3

    def test_unmapped_gpa_exits(self, ept):
        with pytest.raises(EptViolation):
            ept.translate(0x5000)

    def test_out_of_space_gpa(self, ept):
        with pytest.raises(EptViolation):
            ept.translate(1 << 48)

    def test_double_map_rejected(self, ept):
        ept.map(0x0, 0x80000, PAGE_4K)
        with pytest.raises(EptError):
            ept.map(0x0, 0x90000, PAGE_4K)

    def test_unaligned_map_rejected(self, ept):
        with pytest.raises(EptError):
            ept.map(0x10, 0x80000, PAGE_4K)

    def test_unmap_then_exit(self, ept):
        ept.map(0x0, 0x80000, PAGE_4K)
        ept.unmap(0x0, PAGE_4K)
        with pytest.raises(EptViolation):
            ept.translate(0x0)

    def test_unmap_unmapped_rejected(self, ept):
        with pytest.raises(EptViolation):
            ept.unmap(0x0, PAGE_4K)

    def test_mapped_bytes_accounting(self, ept):
        ept.map(0x0, PAGE_2M, PAGE_2M)
        assert ept.mapped_bytes == PAGE_2M
        ept.unmap(0x0, PAGE_2M)
        assert ept.mapped_bytes == 0

    def test_table_pages_tracked(self, ept):
        before = len(ept.table_pages)
        ept.map(0x0, PAGE_2M, PAGE_2M)  # needs PML4 -> PDPT -> PD
        assert len(ept.table_pages) == before + 2

    def test_tables_live_in_dram(self, ept, dram):
        ept.map(0x0, 0x80000, PAGE_4K)
        # The root table's first entry must be non-zero in DRAM itself.
        raw = dram.read(ept.root, 8)
        assert raw != bytes(8)

    def test_many_mappings(self, ept):
        for i in range(64):
            ept.map(i * PAGE_4K, 0x100000 + i * PAGE_4K, PAGE_4K)
        for i in range(64):
            assert ept.translate(i * PAGE_4K) == 0x100000 + i * PAGE_4K


class TestBitFlipConsequences:
    """The §5.4 threat model, reproduced mechanically."""

    def _flip_leaf_bits(self, dram, ept, gpa, bits):
        addr = ept.leaf_entry_addr(gpa)
        media = dram.mapping.decode(addr)
        socket, bank = media.socket, media.socket_bank_index(GEOM)
        for bit in bits:
            dram._toggle_bit(socket, bank, media.row, media.col * 8 + bit)

    def test_single_bit_flip_corrected_by_ecc(self, dram, ept):
        ept.map(0x0, 0x80000, PAGE_4K)
        self._flip_leaf_bits(dram, ept, 0x0, [13])
        assert ept.translate(0x0) == 0x80000  # ECC healed the read
        assert dram.ecc.stats.corrected >= 1

    def test_double_bit_flip_machine_checks(self, dram, ept):
        ept.map(0x0, 0x80000, PAGE_4K)
        self._flip_leaf_bits(dram, ept, 0x0, [13, 14])
        with pytest.raises(UncorrectableError):
            ept.translate(0x0)

    def test_triple_bit_flip_silently_redirects(self, dram, ept):
        """>= 3 flips in a word beat SEC-DED: the walk *succeeds* and
        returns an attacker-controlled frame — the escape Siloz must
        prevent."""
        ept.map(0x0, 0x80000, PAGE_4K)
        self._flip_leaf_bits(dram, ept, 0x0, [13, 14, 15])
        hpa = ept.translate(0x0)
        assert hpa != 0x80000  # mapping changed, no fault raised

    def test_ecc_off_single_flip_redirects(self, dram):
        ept = make_ept(dram, ecc_reads=False)
        ept.map(0x0, 0x80000, PAGE_4K)
        self._flip_leaf_bits(dram, ept, 0x0, [13])
        assert ept.translate(0x0) != 0x80000


class TestSecureEpt:
    """TDX/SNP-style detect-on-use (§5.4 hardware-based protection)."""

    def test_clean_walk_passes(self, dram):
        ept = make_ept(dram, checker=SecureEptChecker())
        ept.map(0x0, 0x80000, PAGE_4K)
        assert ept.translate(0x0) == 0x80000
        assert ept.checker.failures == 0

    def test_corrupted_entry_detected_on_use(self, dram):
        ept = make_ept(dram, checker=SecureEptChecker(), ecc_reads=False)
        ept.map(0x0, 0x80000, PAGE_4K)
        addr = ept.leaf_entry_addr(0x0)
        media = dram.mapping.decode(addr)
        dram._toggle_bit(
            media.socket, media.socket_bank_index(GEOM), media.row, media.col * 8 + 13
        )
        with pytest.raises(EptIntegrityError):
            ept.translate(0x0)
        assert ept.checker.failures == 1

    def test_triple_flip_also_detected(self, dram):
        """The case ECC misses, secure EPT catches."""
        ept = make_ept(dram, checker=SecureEptChecker())
        ept.map(0x0, 0x80000, PAGE_4K)
        addr = ept.leaf_entry_addr(0x0)
        media = dram.mapping.decode(addr)
        for bit in (13, 14, 15):
            dram._toggle_bit(
                media.socket,
                media.socket_bank_index(GEOM),
                media.row,
                media.col * 8 + bit,
            )
        with pytest.raises(EptIntegrityError):
            ept.translate(0x0)

    def test_legitimate_remap_re_records(self, dram):
        ept = make_ept(dram, checker=SecureEptChecker())
        ept.map(0x0, 0x80000, PAGE_4K)
        ept.unmap(0x0, PAGE_4K)
        ept.map(0x0, 0x90000, PAGE_4K)
        assert ept.translate(0x0) == 0x90000

    def test_checker_standalone(self):
        checker = SecureEptChecker()
        checker.record(0x1000, b"\x01" * 8)
        checker.verify(0x1000, b"\x01" * 8)
        with pytest.raises(EptIntegrityError):
            checker.verify(0x1000, b"\x02" * 8)
        checker.forget(0x1000)
        checker.verify(0x1000, b"\x03" * 8)  # no longer covered
        assert not checker.covers(0x1000)
