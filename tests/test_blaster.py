"""Tests for BLASTER-style blast-radius measurement."""

import pytest

from repro.attack.blaster import BlastProfile, measure_blast_radius
from repro.core import SilozHypervisor
from repro.dram.disturbance import DisturbanceProfile
from repro.dram.geometry import DRAMGeometry
from repro.dram.module import SimulatedDram
from repro.errors import AttackError
from repro.hv import Machine

GEOM = DRAMGeometry.small(rows_per_bank=512, rows_per_subarray=64)


def make_dram(weights=(1.0, 0.2), seed=5):
    return SimulatedDram(
        GEOM,
        profile=DisturbanceProfile(
            name="blaster",
            threshold_mean=800.0,
            distance_weights=weights,
        ),
        trr_config=None,
        seed=seed,
    )


class TestMeasurement:
    def test_finds_the_true_radius(self):
        profile = measure_blast_radius(make_dram())
        assert profile.max_distance == 2
        assert profile.radius() == 2

    def test_radius_1_dimm(self):
        profile = measure_blast_radius(make_dram(weights=(1.0,)))
        assert profile.radius() == 1

    def test_half_double_dimm(self):
        """A Half-Double-prone module (strong distance-2 spill)."""
        profile = measure_blast_radius(make_dram(weights=(1.0, 0.6, 0.2)))
        assert profile.radius() == 3

    def test_distance_histogram_decreasing(self):
        profile = measure_blast_radius(make_dram())
        assert profile.flips_by_distance[1] > profile.flips_by_distance[2]

    def test_partial_coverage_radius_smaller(self):
        profile = measure_blast_radius(make_dram())
        assert profile.radius(coverage=0.5) <= profile.radius()

    def test_no_flips_raises(self):
        quiet = SimulatedDram(
            GEOM,
            profile=DisturbanceProfile.test_scale(threshold_mean=1e9),
            trr_config=None,
        )
        profile = measure_blast_radius(quiet, activations=100)
        with pytest.raises(AttackError):
            profile.radius()

    def test_validation(self):
        with pytest.raises(AttackError):
            measure_blast_radius(make_dram(), aggressor_rows=[])
        with pytest.raises(AttackError):
            BlastProfile(flips_by_distance={1: 5}).radius(coverage=0.0)


class TestBootIntegration:
    def test_boot_with_measured_radius(self):
        machine = Machine.small(seed=7)
        hv = SilozHypervisor.boot(machine, measure_blast_radius=True)
        # The simulated DIMM has blast radius 2 (default weights).
        assert hv.config.blast_radius == 2
        assert machine.dram.flips_log == []  # probe ran on scratch DRAM

    def test_boot_with_both_calibrations(self):
        machine = Machine.small(seed=7)
        hv = SilozHypervisor.boot(
            machine, infer_subarray_size=True, measure_blast_radius=True
        )
        assert hv.managed_geom.rows_per_subarray == machine.geom.rows_per_subarray
        assert hv.config.blast_radius == 2
