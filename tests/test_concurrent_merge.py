"""Latency accounting in ``run_concurrent`` when streams have gaps.

``run_concurrent`` merges per-VM access streams by absolute arrival
time and rebuilds the inter-access gaps for the merged order.  These
tests pin the accounting properties that merge must preserve: per-tag
attribution, determinism, and sane behaviour when one stream is far
sparser (larger CPU gaps) than the other — the case where naive gap
handling (reusing per-stream gaps, or letting a reordering produce a
negative gap) corrupts the timeline.
"""

import pytest

from repro.core import SilozHypervisor
from repro.errors import WorkloadError
from repro.hv import Machine, VmSpec
from repro.units import MiB
from repro.workloads.multi import run_concurrent


@pytest.fixture(scope="module")
def env():
    hv = SilozHypervisor.boot(Machine.medium(sockets=1))
    dense = hv.create_vm(VmSpec(name="dense", memory_bytes=16 * MiB))
    sparse = hv.create_vm(VmSpec(name="sparse", memory_bytes=16 * MiB))
    return hv, dense, sparse


class TestGappedStreams:
    """'mlc-reads' issues back-to-back; 'memcached' thinks between
    accesses — merging them exercises the gap-rebuild path."""

    def test_every_access_is_attributed(self, env):
        hv, dense, sparse = env
        result = run_concurrent(
            hv, [(dense, "mlc-reads"), (sparse, "memcached")], accesses=1500
        )
        assert result.combined.accesses == 3000
        per_tag = result.combined.per_tag
        assert set(per_tag) == {0, 1}
        assert sum(count for count, _ in per_tag.values()) == 3000
        # Neither stream's latency sum leaked into the other's bucket.
        for count, total_ns in per_tag.values():
            assert count == 1500
            assert total_ns > 0

    def test_latency_lookup_by_vm_name(self, env):
        hv, dense, sparse = env
        result = run_concurrent(
            hv, [(dense, "mlc-reads"), (sparse, "memcached")], accesses=1000
        )
        assert result.latency_of("dense") > 0
        assert result.latency_of("sparse") > 0
        with pytest.raises(WorkloadError):
            result.latency_of("absent")

    def test_merge_is_deterministic(self, env):
        hv, dense, sparse = env
        runs = [
            run_concurrent(
                hv, [(dense, "mlc-reads"), (sparse, "memcached")], accesses=1000
            )
            for _ in range(2)
        ]
        assert runs[0].combined == runs[1].combined
        assert runs[0].vm_names == runs[1].vm_names

    def test_merged_timeline_spans_the_slowest_stream(self, env):
        """Rebuilt gaps must preserve the absolute timeline: the merged
        run cannot finish before the sparse stream's last arrival, so
        its issue time dominates each solo run's."""
        hv, dense, sparse = env
        solo_sparse = run_concurrent(hv, [(sparse, "memcached")], accesses=1000)
        merged = run_concurrent(
            hv, [(dense, "mlc-reads"), (sparse, "memcached")], accesses=1000
        )
        assert merged.combined.total_time_ns >= solo_sparse.combined.total_time_ns

    def test_gapped_stream_keeps_its_latency_profile(self, env):
        """A sparse stream sharing the machine with a dense hammerer
        still resolves each access: its average latency stays within the
        contention envelope (positive, and not orders of magnitude off
        its solo latency)."""
        hv, dense, sparse = env
        solo = run_concurrent(hv, [(sparse, "memcached")], accesses=1000)
        shared = run_concurrent(
            hv, [(dense, "mlc-reads"), (sparse, "memcached")], accesses=1000
        )
        assert shared.latency_of("sparse") >= solo.latency_of("sparse") * 0.5
        assert shared.latency_of("sparse") <= solo.latency_of("sparse") * 100


class TestDegenerateMerges:
    def test_single_stream_merge_matches_tagging(self, env):
        hv, dense, _ = env
        result = run_concurrent(hv, [(dense, "mlc-reads")], accesses=500)
        assert result.combined.accesses == 500
        assert set(result.combined.per_tag) == {0}
        assert result.latency_of("dense") == pytest.approx(
            result.combined.avg_latency_ns
        )

    def test_three_way_merge(self, env):
        hv, dense, sparse = env
        third = hv.create_vm(VmSpec(name="third", memory_bytes=16 * MiB))
        try:
            result = run_concurrent(
                hv,
                [(dense, "mlc-reads"), (sparse, "memcached"), (third, "mysql")],
                accesses=600,
            )
            assert set(result.combined.per_tag) == {0, 1, 2}
            for name in ("dense", "sparse", "third"):
                assert result.latency_of(name) > 0
        finally:
            hv.destroy_vm("third")
            hv.release_reservation("third")
