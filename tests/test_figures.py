"""Tests for ASCII figure rendering and JSON round-tripping."""

import json

import pytest

from repro.errors import ReproError
from repro.eval.experiments import PerfComparison
from repro.eval.figures import (
    _bar,
    comparison_from_json,
    comparison_to_json,
    render_bars,
)


@pytest.fixture
def comparison():
    comp = PerfComparison(metric="time")
    for trial, (base, siloz) in enumerate([(1.00, 1.01), (1.02, 1.00), (0.99, 1.02)]):
        comp.add("redis-a", "baseline", base)
        comp.add("redis-a", "siloz", siloz)
        comp.add("terasort", "baseline", base * 2)
        comp.add("terasort", "siloz", siloz * 2 * 0.98)
    return comp


class TestBar:
    def test_zero_is_centre_line(self):
        assert _bar(0.0, 2.5, 40) == " " * 20 + "|" + " " * 20

    def test_positive_goes_right(self):
        bar = _bar(1.25, 2.5, 40)
        left, right = bar.split("|")
        assert "#" not in left and right.startswith("##")

    def test_negative_goes_left(self):
        bar = _bar(-1.25, 2.5, 40)
        left, right = bar.split("|")
        assert left.endswith("##") and "#" not in right

    def test_clamped_at_full_scale(self):
        bar = _bar(100.0, 2.5, 40)
        assert bar.count("#") == 20

    def test_scale_validated(self):
        with pytest.raises(ReproError):
            _bar(1.0, 0.0, 40)


class TestRenderBars:
    def test_contains_all_workloads(self, comparison):
        text = render_bars(comparison, title="Fig test")
        assert "Fig test" in text
        assert "redis-a [siloz]" in text and "terasort [siloz]" in text
        assert "%" in text and "±" in text

    def test_requires_non_baseline_system(self):
        comp = PerfComparison(metric="time")
        comp.add("w", "baseline", 1.0)
        with pytest.raises(ReproError):
            render_bars(comp)


class TestJsonRoundTrip:
    def test_roundtrip_preserves_trials(self, comparison):
        text = comparison_to_json(comparison)
        back = comparison_from_json(text)
        assert back.metric == comparison.metric
        for workload in comparison.workloads():
            for system in comparison.systems():
                assert back.trials(workload, system) == comparison.trials(
                    workload, system
                )

    def test_json_has_derived_stats(self, comparison):
        payload = json.loads(comparison_to_json(comparison))
        assert "geomean_ratio" in payload
        assert "siloz" in payload["geomean_ratio"]
        over = payload["workloads"]["redis-a"]["overhead_pct"]["siloz"]
        assert "mean" in over and "ci95" in over

    def test_roundtrip_overheads_match(self, comparison):
        back = comparison_from_json(comparison_to_json(comparison))
        assert back.overhead_percent("redis-a", "siloz") == pytest.approx(
            comparison.overhead_percent("redis-a", "siloz")
        )
