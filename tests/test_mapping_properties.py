"""Property-based tests for the Skylake-like decode (seeded stdlib random).

Three properties the engine fast path leans on:

1. decode/encode are mutually inverse bijections over sampled HPA and
   MediaAddress ranges, at test, medium, and paper scale;
2. 2 MiB pages never straddle subarray groups (§4.2's key observation,
   and the reason Siloz can provision VMs at 2 MiB granularity);
3. the memoized decoders (``decode_cached``, ``decode_flat``,
   ``decode_batch``) agree exactly with the uncached reference decode.

Sampling is driven by ``random.Random(seed)`` so any failure reproduces
from the printed seed alone.
"""

from __future__ import annotations

import random

import pytest

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.dram.media import MediaAddress
from repro.errors import MappingError
from repro.units import MiB

SEED = 20260806
SAMPLES = 400


def _mappings():
    small = DRAMGeometry.small()
    medium = DRAMGeometry.medium()
    paper = DRAMGeometry.paper_default()
    return [
        pytest.param(SkylakeMapping.for_small_geometry(small), id="small"),
        pytest.param(SkylakeMapping(medium), id="medium"),
        pytest.param(SkylakeMapping(paper), id="paper"),
    ]


def _sample_hpas(mapping, rng, n=SAMPLES):
    total = mapping.geom.total_bytes
    # Mix uniform samples with boundary-adjacent ones (chunk, region,
    # and socket edges are where the permutation logic can go wrong).
    hpas = [rng.randrange(total) for _ in range(n)]
    for boundary in (mapping.chunk_bytes, mapping.region_bytes, mapping.geom.socket_bytes):
        for k in range(1, min(total // boundary, 8) + 1):
            edge = k * boundary
            hpas.extend(h for h in (edge - 1, edge) if 0 <= h < total)
    return hpas


class TestRoundTrip:
    @pytest.mark.parametrize("mapping", _mappings())
    def test_decode_encode_identity(self, mapping):
        rng = random.Random(SEED)
        for hpa in _sample_hpas(mapping, rng):
            media = mapping.decode(hpa)
            assert mapping.encode(media) == hpa, f"seed={SEED} hpa={hpa:#x}"

    @pytest.mark.parametrize("mapping", _mappings())
    def test_encode_decode_identity(self, mapping):
        g = mapping.geom
        rng = random.Random(SEED + 1)
        for _ in range(SAMPLES):
            media = MediaAddress.from_socket_bank(
                g,
                rng.randrange(g.sockets),
                rng.randrange(g.banks_per_socket),
                rng.randrange(g.rows_per_bank),
                rng.randrange(g.row_bytes),
            )
            assert mapping.decode(mapping.encode(media)) == media, (
                f"seed={SEED + 1} media={media}"
            )

    @pytest.mark.parametrize("mapping", _mappings())
    def test_decode_injective_on_lines(self, mapping):
        # Distinct sampled cache lines must land on distinct media lines
        # (encode∘decode = id already gives injectivity; this checks the
        # media-side images don't collide either).
        rng = random.Random(SEED + 2)
        total_lines = mapping.geom.total_bytes // 64
        lines = {rng.randrange(total_lines) * 64 for _ in range(SAMPLES)}
        images = {
            (m.socket, m.channel, m.dimm, m.rank, m.bank, m.row, m.col)
            for m in map(mapping.decode, lines)
        }
        assert len(images) == len(lines)


class TestPageIsolation:
    @pytest.mark.parametrize("mapping", _mappings())
    def test_2mib_pages_never_straddle_groups(self, mapping):
        g = mapping.geom
        # At small scale a "2 MiB page" is the proportionally scaled
        # provisioning unit: one chunk (the contiguity quantum).
        page = 2 * MiB if g.socket_bytes >= 64 * MiB else mapping.chunk_bytes
        rng = random.Random(SEED + 3)
        pages = g.total_bytes // page
        for _ in range(min(SAMPLES, pages)):
            start = rng.randrange(pages) * page
            groups = mapping.groups_touched_by_range(start, page)
            assert len(groups) == 1, (
                f"seed={SEED + 3}: page at {start:#x} straddles {groups}"
            )

    def test_straddling_is_possible_at_larger_sizes(self):
        # Sanity for the property above: the invariant is about 2 MiB
        # specifically — big enough ranges do cross groups.
        mapping = SkylakeMapping.for_small_geometry(DRAMGeometry.small())
        g = mapping.geom
        span = g.rows_per_subarray * g.row_group_bytes * 2
        assert len(mapping.groups_touched_by_range(0, span)) > 1


class TestDecodeMemoization:
    @pytest.mark.parametrize("mapping", _mappings())
    def test_cached_equals_uncached(self, mapping):
        rng = random.Random(SEED + 4)
        hpas = _sample_hpas(mapping, rng)
        hpas += hpas[: len(hpas) // 2]  # re-queries must hit, not drift
        for hpa in hpas:
            ref = mapping.decode(hpa)
            assert mapping.decode_cached(hpa) == ref, f"seed={SEED + 4} hpa={hpa:#x}"
            flat = mapping.decode_flat(hpa)
            assert flat == (
                ref.socket,
                ref.socket_bank_index(mapping.geom),
                ref.channel,
                ref.row,
            ), f"seed={SEED + 4} hpa={hpa:#x}"

    @pytest.mark.parametrize("mapping", _mappings())
    def test_decode_batch_equals_scalar_decode(self, mapping):
        rng = random.Random(SEED + 5)
        hpas = [rng.randrange(mapping.geom.total_bytes) for _ in range(200)]
        assert mapping.decode_batch(hpas) == [mapping.decode(h) for h in hpas]

    def test_cache_info_reports_hits(self):
        mapping = SkylakeMapping.for_small_geometry(DRAMGeometry.small())
        mapping.decode_cached(0)
        mapping.decode_cached(0)
        info = mapping.decode_cache_info()
        assert info["decode"].hits >= 1

    def test_cached_decoders_still_validate(self):
        mapping = SkylakeMapping.for_small_geometry(DRAMGeometry.small())
        bad = mapping.geom.total_bytes
        with pytest.raises(MappingError):
            mapping.decode_cached(bad)
        with pytest.raises(MappingError):
            mapping.decode_flat(bad)

    def test_two_instances_do_not_share_cache(self):
        g1 = DRAMGeometry.small()
        g2 = DRAMGeometry.small(rows_per_bank=128)
        m1 = SkylakeMapping.for_small_geometry(g1)
        m2 = SkylakeMapping.for_small_geometry(g2)
        hpa = g1.total_bytes - 64
        assert m1.decode_cached(hpa) == m1.decode(hpa)
        assert m2.decode_cached(hpa) == m2.decode(hpa)
        # Each instance owns its own LRU: one miss each, no cross-talk.
        assert m1.decode_cache_info()["decode"].currsize == 1
        assert m2.decode_cache_info()["decode"].currsize == 1
