"""Tests for the DRAMA timing side-channel study (§8.4)."""

import pytest

from repro.attack.sidechannel import ProbeResult, drama_probe
from repro.errors import AttackError
from repro.memctrl.timings import DDR4Timings


class TestDramaProbe:
    def test_shared_bank_leaks(self):
        """Row-buffer conflicts reveal victim activity — the channel
        Siloz does not (and does not claim to) close."""
        result = drama_probe(shared_bank=True)
        assert result.leak_detected
        assert result.active_latency_ns > result.idle_latency_ns

    def test_bank_isolation_closes_the_channel(self):
        """§8.4: bank-level isolation domains would close it."""
        result = drama_probe(shared_bank=False)
        assert not result.leak_detected
        assert result.active_latency_ns == pytest.approx(
            result.idle_latency_ns, rel=0.05
        )

    def test_idle_probe_is_all_hits(self):
        result = drama_probe(shared_bank=True)
        t = DDR4Timings.ddr4_2933()
        # Slight slack: the warm-up miss's tRAS residue delays probe 1.
        assert result.idle_latency_ns == pytest.approx(t.hit_latency, rel=0.05)

    def test_active_probe_pays_conflicts(self):
        result = drama_probe(shared_bank=True)
        t = DDR4Timings.ddr4_2933()
        assert result.active_latency_ns == pytest.approx(t.miss_latency, rel=0.05)

    def test_subarray_group_choice_is_irrelevant(self):
        """The leak is identical whether the victim row is 2 rows away
        or a whole subarray group away: the row buffer doesn't care."""
        near = drama_probe(attacker_row=100, victim_row=102)
        far = drama_probe(attacker_row=100, victim_row=200_000 // 8)
        assert near.active_latency_ns == pytest.approx(far.active_latency_ns)

    def test_validation(self):
        with pytest.raises(AttackError):
            drama_probe(probes=0)
        with pytest.raises(AttackError):
            drama_probe(attacker_row=5, victim_row=5)

    def test_str_verdicts(self):
        assert "LEAK" in str(drama_probe(shared_bank=True))
        assert "no leak" in str(drama_probe(shared_bank=False))

    def test_result_threshold_sane(self):
        result = drama_probe()
        t = DDR4Timings.ddr4_2933()
        assert 0 < result.threshold_ns < t.miss_latency
