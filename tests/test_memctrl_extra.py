"""Tests for the FR-FCFS scheduler and bank-profile statistics."""

import pytest

from repro.dram.geometry import DRAMGeometry
from repro.dram.mapping import SkylakeMapping
from repro.errors import MemCtrlError
from repro.memctrl import MemoryAccess, MemoryController
from repro.memctrl.frfcfs import FrFcfsController
from repro.memctrl.stats import profile_trace
from repro.units import CACHE_LINE

GEOM = DRAMGeometry.small(sockets=1)
MAPPING = SkylakeMapping.for_small_geometry(GEOM)


def conflict_trace(n=400):
    """Two interleaved row streams to one bank: in-order thrashes the
    row buffer; FR-FCFS can batch them."""
    stride = GEOM.row_group_bytes
    return [MemoryAccess((i % 2) * stride) for i in range(n)]


def seq_trace(n=400):
    return [MemoryAccess(i * CACHE_LINE) for i in range(n)]


class TestFrFcfs:
    def test_recovers_row_locality(self):
        in_order = MemoryController(MAPPING).run_trace(conflict_trace())
        fr = FrFcfsController(MAPPING, window=16).run_trace(conflict_trace())
        assert fr.hit_rate > in_order.hit_rate
        assert fr.total_time_ns < in_order.total_time_ns

    def test_window_one_equals_in_order_hits(self):
        fr = FrFcfsController(MAPPING, window=1).run_trace(conflict_trace())
        base = MemoryController(MAPPING).run_trace(conflict_trace())
        assert fr.row_hits == base.row_hits

    def test_same_totals_as_in_order(self):
        trace = seq_trace()
        fr = FrFcfsController(MAPPING).run_trace(trace)
        base = MemoryController(MAPPING).run_trace(trace)
        assert fr.accesses == base.accesses
        assert fr.bytes_transferred == base.bytes_transferred

    def test_empty_trace_rejected(self):
        with pytest.raises(MemCtrlError):
            FrFcfsController(MAPPING).run_trace([])

    def test_bad_window_rejected(self):
        with pytest.raises(MemCtrlError):
            FrFcfsController(MAPPING, window=0)

    def test_subarray_independence_still_holds(self):
        """§7.4's invariant survives the smarter scheduler."""
        fr = FrFcfsController(MAPPING)
        low = fr.run_trace(seq_trace())
        high = fr.run_trace(
            [
                MemoryAccess(a.hpa + GEOM.subarray_group_bytes)
                for a in seq_trace()
            ]
        )
        assert low.total_time_ns == pytest.approx(high.total_time_ns)


class TestPagePolicy:
    def test_streams_prefer_open_page(self):
        open_mc = MemoryController(MAPPING, page_policy="open")
        closed_mc = MemoryController(MAPPING, page_policy="closed")
        trace = seq_trace(800)
        assert (
            open_mc.run_trace(trace).total_time_ns
            < closed_mc.run_trace(trace).total_time_ns
        )

    def test_conflict_traffic_prefers_closed_page(self):
        """Closed-page skips the precharge on guaranteed conflicts."""
        open_mc = MemoryController(MAPPING, page_policy="open")
        closed_mc = MemoryController(MAPPING, page_policy="closed")
        trace = conflict_trace(400)
        assert (
            closed_mc.run_trace(trace).avg_latency_ns
            < open_mc.run_trace(trace).avg_latency_ns
        )

    def test_closed_page_never_hits(self):
        mc = MemoryController(MAPPING, page_policy="closed")
        assert mc.run_trace(seq_trace(400)).row_hits == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(MemCtrlError):
            MemoryController(MAPPING, page_policy="adaptive")


class TestBankProfile:
    def test_sequential_covers_all_banks_evenly(self):
        profile = profile_trace(MAPPING, seq_trace(GEOM.banks_per_socket * 8))
        assert profile.banks_touched == GEOM.banks_per_socket
        assert profile.imbalance == pytest.approx(1.0)
        assert profile.coverage(GEOM) == 1.0

    def test_single_line_touches_one_bank(self):
        profile = profile_trace(MAPPING, [MemoryAccess(0)] * 10)
        assert profile.banks_touched == 1
        (activity,) = profile.per_bank.values()
        assert activity.accesses == 10
        assert activity.row_reuse == 10.0

    def test_group_confined_trace_same_coverage_as_unconfined(self):
        """The §4.1 punchline, statically: a subarray-group-confined
        trace touches exactly as many banks as an unconfined one."""
        unconfined = profile_trace(MAPPING, seq_trace(512))
        group_base = GEOM.subarray_group_bytes  # group 1
        confined = profile_trace(
            MAPPING, [MemoryAccess(group_base + i * CACHE_LINE) for i in range(512)]
        )
        assert confined.banks_touched == unconfined.banks_touched
        assert confined.imbalance == pytest.approx(unconfined.imbalance)

    def test_empty_trace_rejected(self):
        with pytest.raises(MemCtrlError):
            profile_trace(MAPPING, [])
