"""Unit tests for workload traces, suites, and the perf runner."""

import pytest

from repro.errors import ReproError, WorkloadError
from repro.eval import (
    baseline_system,
    perf_experiment,
    render_figure,
    render_table,
    siloz_system,
)
from repro.eval.stats import (
    confidence_interval_95,
    geometric_mean,
    mean,
    normalized_overhead_percent,
    stdev,
)
from repro.hv import BaselineHypervisor, Machine, VmSpec
from repro.memctrl.controller import AccessKind
from repro.units import KiB, MiB
from repro.workloads import (
    EXEC_TIME_SUITES,
    THROUGHPUT_SUITES,
    GpaTranslator,
    TraceSpec,
    generate_trace,
    run_in_vm,
    suite,
    suite_names,
)


@pytest.fixture(scope="module")
def vm_env():
    hv = BaselineHypervisor(Machine.small(), backing_page_bytes=64 * KiB)
    vm = hv.create_vm(VmSpec(name="w", memory_bytes=2 * MiB))
    return hv, vm


class TestTraceSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceSpec(name="x", footprint_bytes=1)
        with pytest.raises(WorkloadError):
            TraceSpec(name="x", footprint_bytes=1024, read_ratio=1.5)
        with pytest.raises(WorkloadError):
            TraceSpec(name="x", footprint_bytes=1024, cpu_gap_ns=-1)


class TestSuites:
    def test_all_figure_suites_defined(self):
        for name in EXEC_TIME_SUITES + THROUGHPUT_SUITES:
            assert suite(name).name == name

    def test_exec_suites_match_fig4(self):
        assert EXEC_TIME_SUITES[:6] == (
            "redis-a",
            "redis-b",
            "redis-c",
            "redis-d",
            "redis-e",
            "redis-f",
        )
        assert "spec17" in EXEC_TIME_SUITES and "parsec" in EXEC_TIME_SUITES

    def test_throughput_suites_match_fig5(self):
        assert set(THROUGHPUT_SUITES) == {
            "memcached",
            "mysql",
            "mlc-reads",
            "mlc-3:1",
            "mlc-2:1",
            "mlc-1:1",
            "mlc-stream",
        }

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            suite("quake3")

    def test_footprint_override(self):
        assert suite("redis-a", footprint_bytes=1 * MiB).footprint_bytes == 1 * MiB

    def test_ycsb_characters(self):
        assert suite("redis-c").read_ratio == 1.0  # read-only
        assert suite("redis-a").read_ratio == 0.5  # update-heavy
        assert suite("redis-e").locality > suite("redis-a").locality  # scans

    def test_mlc_ratios(self):
        assert suite("mlc-reads").read_ratio == 1.0
        assert suite("mlc-1:1").read_ratio == 0.5

    def test_suite_names_nonempty(self):
        assert len(suite_names()) >= 16


class TestGpaTranslator:
    def test_matches_ept_walk(self, vm_env):
        """The fast path must agree with the honest EPT walk."""
        _, vm = vm_env
        translator = GpaTranslator(vm)
        for gpa in range(0, translator.limit, 97 * KiB):
            assert translator.translate(gpa) == vm.ept.translate(gpa)

    def test_bounds(self, vm_env):
        _, vm = vm_env
        translator = GpaTranslator(vm)
        with pytest.raises(WorkloadError):
            translator.translate(translator.limit)
        with pytest.raises(WorkloadError):
            translator.translate(-1)

    def test_fingerprint_depends_on_layout(self, vm_env):
        hv, vm = vm_env
        vm2 = hv.create_vm(VmSpec(name="w2", memory_bytes=2 * MiB))
        assert GpaTranslator(vm).fingerprint != GpaTranslator(vm2).fingerprint


class TestGenerateTrace:
    def _trace(self, vm_env, spec, n=2000, seed=0):
        _, vm = vm_env
        return list(
            generate_trace(spec, GpaTranslator(vm), accesses=n, seed=seed)
        )

    def test_deterministic_per_seed(self, vm_env):
        spec = suite("redis-a", footprint_bytes=1 * MiB)
        a = self._trace(vm_env, spec, seed=3)
        b = self._trace(vm_env, spec, seed=3)
        assert [x.hpa for x in a] == [x.hpa for x in b]

    def test_seeds_differ(self, vm_env):
        spec = suite("redis-a", footprint_bytes=1 * MiB)
        a = self._trace(vm_env, spec, seed=1)
        b = self._trace(vm_env, spec, seed=2)
        assert [x.hpa for x in a] != [x.hpa for x in b]

    def test_read_ratio_respected(self, vm_env):
        spec = suite("mlc-1:1", footprint_bytes=1 * MiB)
        trace = self._trace(vm_env, spec, n=4000)
        reads = sum(1 for a in trace if a.kind is AccessKind.READ)
        assert 0.45 < reads / len(trace) < 0.55

    def test_read_only_suite(self, vm_env):
        spec = suite("redis-c", footprint_bytes=1 * MiB)
        trace = self._trace(vm_env, spec)
        assert all(a.kind is AccessKind.READ for a in trace)

    def test_streaming_suite_is_sequential(self, vm_env):
        spec = suite("mlc-reads", footprint_bytes=1 * MiB)
        trace = self._trace(vm_env, spec)
        seq = sum(
            1
            for prev, cur in zip(trace, trace[1:])
            if 0 <= cur.hpa - prev.hpa <= 4096
        )
        assert seq / len(trace) > 0.8

    def test_addresses_within_vm(self, vm_env):
        _, vm = vm_env
        spec = suite("mysql", footprint_bytes=1 * MiB)
        for access in self._trace(vm_env, spec):
            assert vm.owns_hpa(access.hpa)

    def test_rejects_zero_accesses(self, vm_env):
        _, vm = vm_env
        with pytest.raises(WorkloadError):
            list(
                generate_trace(
                    suite("mysql", footprint_bytes=1 * MiB),
                    GpaTranslator(vm),
                    accesses=0,
                )
            )


class TestStats:
    def test_mean_and_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stdev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
        assert stdev([5.0]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_confidence_interval(self):
        m, ci = confidence_interval_95([10.0, 12.0, 11.0, 13.0, 9.0])
        assert m == pytest.approx(11.0)
        assert ci > 0

    def test_single_value_ci(self):
        assert confidence_interval_95([5.0]) == (5.0, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            mean([])

    def test_normalized_overhead(self):
        assert normalized_overhead_percent(1.05, 1.0) == pytest.approx(5.0)
        assert normalized_overhead_percent(0.95, 1.0) == pytest.approx(-5.0)
        with pytest.raises(ReproError):
            normalized_overhead_percent(1.0, 0.0)


class TestRunInVm:
    def test_basic_run(self, vm_env):
        hv, vm = vm_env
        result = run_in_vm(hv, vm, "redis-a", accesses=2000)
        assert result.execution_seconds > 0
        assert result.bandwidth_gib_s > 0
        assert result.workload == "redis-a"

    def test_trials_vary(self, vm_env):
        hv, vm = vm_env
        a = run_in_vm(hv, vm, "redis-a", accesses=2000, trial=0)
        b = run_in_vm(hv, vm, "redis-a", accesses=2000, trial=1)
        assert a.execution_seconds != b.execution_seconds

    def test_memory_bound_slower_than_compute_bound(self, vm_env):
        hv, vm = vm_env
        fast = run_in_vm(hv, vm, "mlc-reads", accesses=4000)
        slow = run_in_vm(hv, vm, "spec17", accesses=4000)
        # spec17 has large CPU gaps: longer wall clock, lower bandwidth.
        assert slow.execution_seconds > fast.execution_seconds
        assert slow.bandwidth_gib_s < fast.bandwidth_gib_s


class TestPerfExperimentIntegration:
    @pytest.fixture(scope="class")
    def comparison(self):
        systems = [baseline_system(seed=2), siloz_system(seed=2)]
        return perf_experiment(
            systems, ["redis-b", "mlc-stream"], trials=3, accesses=4000
        )

    def test_shape(self, comparison):
        assert comparison.workloads() == ["redis-b", "mlc-stream"]
        assert set(comparison.systems()) == {"baseline", "siloz"}
        assert len(comparison.trials("redis-b", "siloz")) == 3

    def test_siloz_overhead_small(self, comparison):
        """The headline claim at test scale: overhead within noise."""
        for workload in comparison.workloads():
            mean_pct, _ = comparison.overhead_percent(workload, "siloz")
            assert abs(mean_pct) < 5.0
        assert abs(comparison.geomean_ratio("siloz") - 1.0) < 0.03

    def test_render_figure(self, comparison):
        text = render_figure(comparison, title="Fig test")
        assert "Fig test" in text
        assert "geomean" in text
        assert "redis-b" in text

    def test_render_table(self):
        out = render_table(["a", "b"], [[1, 2], [30, 40]], title="T")
        assert "T" in out and "30" in out

    def test_unknown_cell_rejected(self, comparison):
        with pytest.raises(ReproError):
            comparison.trials("nope", "siloz")
