"""Unit tests for repro.dram.media."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.geometry import DRAMGeometry
from repro.dram.media import MediaAddress
from repro.errors import AddressError

GEOM = DRAMGeometry.small(sockets=2)


class TestValidation:
    def test_valid_address_passes(self):
        addr = MediaAddress(0, 0, 0, 0, 0, 0, 0)
        assert addr.validate(GEOM) is addr

    @pytest.mark.parametrize(
        "field,value",
        [
            ("socket", 2),
            ("channel", 2),
            ("dimm", 1),
            ("rank", 1),
            ("bank", 4),
            ("row", 64),
            ("col", 8192),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        kwargs = dict(socket=0, channel=0, dimm=0, rank=0, bank=0, row=0, col=0)
        kwargs[field] = value
        with pytest.raises(AddressError):
            MediaAddress(**kwargs).validate(GEOM)

    def test_negative_rejected(self):
        with pytest.raises(AddressError):
            MediaAddress(0, 0, 0, 0, 0, -1, 0).validate(GEOM)


class TestBankIndexCodec:
    def test_first_and_last(self):
        first = MediaAddress(0, 0, 0, 0, 0, 0, 0)
        assert first.socket_bank_index(GEOM) == 0
        last = MediaAddress(
            0,
            GEOM.channels_per_socket - 1,
            GEOM.dimms_per_channel - 1,
            GEOM.ranks_per_dimm - 1,
            GEOM.banks_per_rank - 1,
            0,
            0,
        )
        assert last.socket_bank_index(GEOM) == GEOM.banks_per_socket - 1

    def test_global_index_offsets_by_socket(self):
        addr = MediaAddress(1, 0, 0, 0, 0, 0, 0)
        assert addr.global_bank_index(GEOM) == GEOM.banks_per_socket

    @given(
        socket=st.integers(0, 1),
        bank=st.integers(0, GEOM.banks_per_socket - 1),
        row=st.integers(0, GEOM.rows_per_bank - 1),
    )
    def test_roundtrip(self, socket, bank, row):
        addr = MediaAddress.from_socket_bank(GEOM, socket, bank, row)
        assert addr.socket_bank_index(GEOM) == bank
        assert addr.socket == socket
        assert addr.row == row

    def test_from_socket_bank_rejects_bad_index(self):
        with pytest.raises(AddressError):
            MediaAddress.from_socket_bank(GEOM, 0, GEOM.banks_per_socket, 0)

    def test_paper_geometry_bank_count(self):
        geom = DRAMGeometry.paper_default()
        seen = set()
        for ch in range(geom.channels_per_socket):
            for rank in range(geom.ranks_per_dimm):
                for bank in range(geom.banks_per_rank):
                    addr = MediaAddress(0, ch, 0, rank, bank, 0, 0)
                    seen.add(addr.socket_bank_index(geom))
        assert seen == set(range(192))


class TestHelpers:
    def test_same_bank(self):
        a = MediaAddress(0, 1, 0, 0, 2, 5, 0)
        assert a.same_bank(a.with_row(9))
        assert not a.same_bank(MediaAddress(0, 1, 0, 0, 3, 5, 0))

    def test_with_row_keeps_col_unless_given(self):
        a = MediaAddress(0, 0, 0, 0, 0, 1, 128)
        assert a.with_row(2).col == 128
        assert a.with_row(2, col=0).col == 0

    def test_subarray(self):
        a = MediaAddress(0, 0, 0, 0, 0, 9, 0)
        assert a.subarray(GEOM) == 1

    def test_bank_key(self):
        a = MediaAddress(1, 0, 0, 0, 3, 0, 0)
        assert a.bank_key(GEOM) == (1, 3)

    def test_str_is_compact(self):
        assert str(MediaAddress(0, 1, 0, 0, 2, 5, 64)) == "s0.c1.d0.r0.b2.row5+0x40"

    def test_ordering_is_total(self):
        a = MediaAddress(0, 0, 0, 0, 0, 0, 0)
        b = MediaAddress(0, 0, 0, 0, 0, 1, 0)
        assert a < b
